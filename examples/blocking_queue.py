"""Condition synchronization: a producer/consumer bounded queue.

MiniJ supports java.lang.Object-style ``wait``/``notify``/``notifyAll``.
This example contrasts a correctly synchronized bounded queue with a
buggy variant whose ``size``/``clear`` skip the monitor, showing:

1. handoffs complete under adversarial schedules and the HB detectors
   stay silent on the correct queue,
2. Narada synthesizes racy tests for the buggy variant and the backend
   confirms harmful races,
3. a consumer with no producer is reported as a deadlock, not a hang.

Run:  python examples/blocking_queue.py
"""

from repro.detect import FastTrackDetector
from repro.lang import load
from repro.narada import Narada
from repro.runtime import Execution, RandomScheduler, RoundRobinScheduler, VM

QUEUES = """
class BoundedQueue {
  IntArray items;
  int count;
  int capacity;
  BoundedQueue(int capacity) {
    this.items = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
  }
  synchronized void put(int v) {
    while (this.count == this.capacity) { this.wait(); }
    this.items.set(this.count, v);
    this.count = this.count + 1;
    this.notifyAll();
  }
  synchronized int take() {
    while (this.count == 0) { this.wait(); }
    this.count = this.count - 1;
    int v = this.items.get(this.count);
    this.notifyAll();
    return v;
  }
  synchronized int size() { return this.count; }
}

/* Same queue, but the observers skip the monitor. */
class LeakyBoundedQueue {
  IntArray items;
  int count;
  int capacity;
  LeakyBoundedQueue(int capacity) {
    this.items = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
  }
  synchronized void put(int v) {
    while (this.count == this.capacity) { this.wait(); }
    this.items.set(this.count, v);
    this.count = this.count + 1;
    this.notifyAll();
  }
  synchronized int take() {
    while (this.count == 0) { this.wait(); }
    this.count = this.count - 1;
    int v = this.items.get(this.count);
    this.notifyAll();
    return v;
  }
  int size() { return this.count; }
  void clear() { this.count = 0; }
}

test SeedSafe {
  BoundedQueue q = new BoundedQueue(2);
  q.put(1);
  int n = q.size();
  int v = q.take();
}

test SeedLeaky {
  LeakyBoundedQueue q = new LeakyBoundedQueue(2);
  q.put(1);
  int n = q.size();
  int v = q.take();
  q.clear();
}
"""


def demo_correct_queue(table) -> None:
    print("1. Correct BoundedQueue under 10 adversarial schedules:")
    for seed in range(10):
        vm = VM(table)
        _, env = vm.run_test("SeedSafe")
        queue = env["q"]
        detector = FastTrackDetector()
        execution = Execution(vm, listeners=(detector,))
        taker = execution.spawn(
            lambda ctx: vm.interp.call_method(ctx, queue, "take", [])
        )
        execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "put", [seed]))
        result = execution.run(RandomScheduler(seed))
        assert result.completed and execution.thread(taker).result == seed
        assert len(detector.races) == 0
    print("   all handoffs delivered, zero races reported.\n")


def demo_buggy_queue(table) -> None:
    print("2. LeakyBoundedQueue (unsynchronized size/clear):")
    narada = Narada(table)
    report = narada.synthesize_for_class("LeakyBoundedQueue")
    detection = narada.detect(report, random_runs=5)
    print(
        f"   {report.pair_count} racing pairs -> {report.test_count} tests; "
        f"{detection.detected} races detected, {detection.harmful} harmful.\n"
    )


def demo_deadlock(table) -> None:
    print("3. Consumer with no producer:")
    vm = VM(table)
    _, env = vm.run_test("SeedSafe")
    queue = env["q"]
    execution = Execution(vm)
    execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "take", []))
    execution.spawn(lambda ctx: vm.interp.call_method(ctx, queue, "take", []))
    result = execution.run(RoundRobinScheduler(), max_steps=5_000)
    verdict = "deadlock detected" if result.deadlocked else (
        "timed out" if result.timed_out else "completed?!"
    )
    print(f"   empty queue, two takers -> {verdict} "
          f"(blocked threads: {sorted(result.blocked)}).")


def main() -> None:
    table = load(QUEUES)
    demo_correct_queue(table)
    demo_buggy_queue(table)
    demo_deadlock(table)


if __name__ == "__main__":
    main()
