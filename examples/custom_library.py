"""Bring your own library: synthesize racy tests for new MiniJ code.

This example shows the workflow a downstream user follows: write (or
port) a library class in MiniJ, provide a sequential seed test that
invokes each method once, and let Narada do the rest.  The library here
is a small observer registry with a subtle bug — ``notifyAll`` iterates
the listener array while ``register`` may grow it without the lock
``notifyAll`` assumes.

Run:  python examples/custom_library.py
"""

from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.runtime import VM
from repro.synth import materialize

LIBRARY = """
class Listener {
  int notified;
  void onEvent(int payload) { this.notified = this.notified + 1; }
}

class Registry {
  RefArray listeners;
  int count;
  Registry() {
    this.listeners = new RefArray(8);
    this.count = 0;
  }
  /* Registration takes the monitor... */
  synchronized bool register(Listener l) {
    if (this.count >= this.listeners.length) { return false; }
    this.listeners.set(this.count, l);
    this.count = this.count + 1;
    return true;
  }
  synchronized bool unregister(Listener l) {
    int i = 0;
    while (i < this.count) {
      if (this.listeners.get(i) == l) {
        this.count = this.count - 1;
        this.listeners.set(i, this.listeners.get(this.count));
        this.listeners.set(this.count, null);
        return true;
      }
      i = i + 1;
    }
    return false;
  }
  /* ...but notification does not (the bug). */
  void notifyAll(int payload) {
    int i = 0;
    while (i < this.count) {
      Listener l = this.listeners.get(i);
      if (l != null) { l.onEvent(payload); }
      i = i + 1;
    }
  }
  synchronized int size() { return this.count; }
}

test SeedRegistry {
  Registry r = new Registry();
  Listener a = new Listener();
  Listener b = new Listener();
  r.register(a);
  r.register(b);
  r.notifyAll(42);
  int n = r.size();
  r.unregister(a);
}
"""


def main() -> None:
    narada = Narada(LIBRARY)
    report = narada.synthesize_for_class("Registry")
    print(
        f"Registry: {report.pair_count} racing pairs, "
        f"{report.test_count} synthesized tests"
    )
    for pair in report.pairs:
        print("  pair:", pair.describe())
    print()

    fuzzer = RaceFuzzer(narada.table, random_runs=6)
    racy_tests = 0
    for test in report.tests:
        fuzz = fuzzer.fuzz(test)
        if fuzz.detected:
            racy_tests += 1
            print(f"--- {test.name} "
                  f"({len(fuzz.detected)} races, "
                  f"{len(fuzz.harmful())} harmful) ---")
            print(materialize(test, VM(narada.table)).render())
            for record in fuzz.detected:
                print("   ", record.describe(fuzz.constant_sites))
            print()
    print(f"{racy_tests}/{report.test_count} tests exposed at least one race.")


if __name__ == "__main__":
    main()
