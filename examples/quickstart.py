"""Quickstart: reproduce the paper's motivating example end to end.

Runs the whole Narada pipeline on C1 (hazelcast's
SynchronizedWriteBehindQueue, §2 of the paper): execute the sequential
seed test, analyze its trace, generate racy pairs, derive contexts,
synthesize multithreaded tests, and hand them to the RaceFuzzer-style
detector backend.  Prints the synthesized Figure-3 test and the races it
exposes.

Run:  python examples/quickstart.py
"""

from repro.fuzz import RaceFuzzer
from repro.narada import Narada
from repro.runtime import VM
from repro.subjects import get_subject
from repro.synth import materialize


def main() -> None:
    subject = get_subject("C1")
    print(f"Subject: {subject.key} — {subject.benchmark} {subject.version} "
          f"({subject.class_name})")
    print(subject.description)
    print()

    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    print(
        f"Analysis: {report.pair_count} racing pairs -> "
        f"{report.test_count} synthesized tests "
        f"in {report.seconds:.2f}s"
    )
    print()

    # Find the Figure-3 test: two factory-made wrappers around one
    # shared coalesced queue.
    figure3 = next(
        t
        for t in report.tests
        if t.plan.shared_slot is not None
        and t.plan.shared_slot.class_name == "CoalescedWriteBehindQueue"
        and t.plan.full_context
    )
    print("A synthesized racy test (compare with Figure 3 of the paper):")
    print(materialize(figure3, VM(narada.table)).render())
    print()

    fuzzer = RaceFuzzer(narada.table, random_runs=6)
    fuzz = fuzzer.fuzz(figure3)
    print(fuzz.describe())
    print()
    print(
        f"=> {len(fuzz.detected)} race(s), {len(fuzz.reproduced)} reproduced, "
        f"{len(fuzz.harmful())} harmful."
    )


if __name__ == "__main__":
    main()
