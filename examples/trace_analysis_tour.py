"""A guided tour of the sequential-trace analysis (§3.1-3.2).

Re-creates the paper's worked example (Fig. 8 / Table 1 / §3.1.1):
executes ``a.foo(y)`` sequentially, prints the recorded trace, and then
shows the analyzer's ``A`` (writeable/unprotected projection) and ``D``
(access summaries) — which match the values derived in the paper:

    A : {4 -> (false,false), 5 -> (false,true), 6 -> (true,false)}
    D : {4 -> {⊥ ↢ Ithis.x}, 5 -> {Ithis.x.o ↢ ⊥}, 6 -> {Ithis.y ↢ I1}}

Run:  python examples/trace_analysis_tour.py
"""

from repro.analysis import analyze_traces
from repro.lang import load
from repro.runtime import VM
from repro.trace import Recorder, format_trace

FIG8 = """
class X { Opaque o; }
class Y { }
class A {
  X x;
  Y y;
  A() { this.x = new X(); }
  void foo(Y y) {
    synchronized (this) {
      A b = this;
      X t = b.x;
      t.o = rand();
      b.y = y;
    }
  }
}
test Seed {
  A a = new A();
  Y y = new Y();
  a.foo(y);
}
"""


def show(path) -> str:
    return str(path) if path is not None else "⊥"


def main() -> None:
    table = load(FIG8)
    vm = VM(table)
    recorder = Recorder("Seed")
    result, _ = vm.run_test("Seed", listeners=(recorder,))
    assert result.clean

    print("Sequential trace of the seed test (compare Fig. 8b):")
    print(format_trace(recorder.trace))
    print()

    analysis = analyze_traces([recorder.trace])
    foo = analysis.for_method("A", "foo")[0]

    print("Access projection A (label -> (writeable, unprotected)):")
    for label, bits in sorted(foo.access_projection.items()):
        print(f"  {label} -> {bits}")
    print()

    print("Access summaries D (label -> {lhs ↢ rhs}):")
    for label, entries in sorted(foo.summaries.items()):
        rendered = ", ".join(f"{show(l)} ↢ {show(r)}" for l, r in entries)
        print(f"  {label} -> {{{rendered}}}")
    print()

    print("Unprotected accesses usable for racy pairs:")
    for access in foo.unprotected_accesses():
        print(f"  {access.describe()}")
    print()
    print(
        "The write t.o := rand() is unprotected (the lock held is the\n"
        "receiver's, not t's) — the seed of the race the paper builds a\n"
        "context for in §3.3."
    )


if __name__ == "__main__":
    main()
