"""Compare the three dynamic race detectors on one execution.

Eraser's lockset invariant is schedule-insensitive (flags potential
races even when the observed schedule happened to serialize them), while
FastTrack and Djit+ are precise for the observed happens-before
relation.  This example constructs an execution that separates them: two
threads whose critical operations get serialized by the schedule but
share no lock — Eraser still flags, and so do the HB detectors here
because no synchronization edge orders the threads.  A third, properly
locked run shows all detectors stay silent.

Run:  python examples/detector_comparison.py
"""

from repro.detect import DjitDetector, EraserDetector, FastTrackDetector
from repro.lang import load
from repro.runtime import VM, Execution, FixedScheduler, RandomScheduler

SOURCE = """
class Account {
  int balance;
  void deposit(int amount) {
    int b = this.balance;
    this.balance = b + amount;
  }
  synchronized void safeDeposit(int amount) {
    int b = this.balance;
    this.balance = b + amount;
  }
  int read() { return this.balance; }
}
test Seed { Account a = new Account(); }
"""


def run(method: str, schedule_desc: str, scheduler) -> None:
    table = load(SOURCE)
    vm = VM(table)
    _, env = vm.run_test("Seed")
    account = env["a"]
    detectors = [EraserDetector(), FastTrackDetector(), DjitDetector()]
    execution = Execution(vm, listeners=tuple(detectors))
    for amount in (10, 32):
        execution.spawn(
            lambda ctx, amount=amount: vm.interp.call_method(
                ctx, account, method, [amount]
            )
        )
    execution.run(scheduler)
    balance = vm.heap.get(account.ref).fields["balance"]
    print(f"{method} under {schedule_desc}: final balance = {balance}")
    for detector in detectors:
        races = ", ".join(r.describe() for r in detector.races) or "none"
        print(f"  {detector.name:<10}: {len(detector.races)} race(s) — {races}")
    print()


def main() -> None:
    print("1. Unsynchronized deposits, fine-grained interleaving:")
    run("deposit", "alternating schedule", FixedScheduler([1, 2] * 50))

    print("2. Unsynchronized deposits, serialized schedule (the race is")
    print("   still *present*; no synchronization orders the threads):")
    run("deposit", "serialized schedule", FixedScheduler([1] * 50 + [2] * 50))

    print("3. Synchronized deposits (lock release/acquire edges order")
    print("   the threads; every detector is silent):")
    run("safeDeposit", "random schedule", RandomScheduler(7))


if __name__ == "__main__":
    main()
