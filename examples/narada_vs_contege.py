"""Directed synthesis vs random generation (the paper's §5 comparison).

Runs both tools on two subjects that separate them cleanly:

* C5 (hsqldb DoubleIntIndex) — fully unsynchronized; ConTeGe's random
  search eventually crashes it, but needs hundreds to thousands of
  tests.  Narada synthesizes a few hundred directed tests and exposes
  dozens of distinct races.
* C1 (hazelcast wrapper) — ConTeGe can never expose the bug: its random
  suffixes hammer a *single* wrapper, which serializes on its own
  monitor.  Narada constructs the two-wrappers-one-queue context and
  finds the races immediately.

Run:  python examples/narada_vs_contege.py
"""

import time

from repro.baseline import ConTeGe
from repro.narada import Narada
from repro.subjects import get_subject


def compare(key: str, contege_budget: int, narada_test_cap: int) -> None:
    subject = get_subject(key)
    table = subject.load()
    print(f"=== {key}: {subject.class_name} ===")

    start = time.perf_counter()
    contege = ConTeGe(table, subject.class_name, seed=1)
    random_result = contege.run(max_tests=contege_budget)
    print(
        f"ConTeGe : {random_result.tests_generated} random tests, "
        f"{random_result.violation_count} thread-safety violation(s) "
        f"in {time.perf_counter() - start:.1f}s"
    )

    start = time.perf_counter()
    narada = Narada(table)
    report = narada.synthesize_for_class(subject.class_name)
    # Cap the fuzzing work so the example stays quick.
    report.tests[:] = report.tests[:narada_test_cap]
    detection = narada.detect(report, random_runs=4)
    print(
        f"Narada  : {len(report.tests)} directed tests, "
        f"{detection.detected} distinct race(s) "
        f"({detection.harmful} harmful) "
        f"in {time.perf_counter() - start:.1f}s"
    )
    print()


def main() -> None:
    compare("C5", contege_budget=600, narada_test_cap=40)
    compare("C1", contege_budget=600, narada_test_cap=40)
    print(
        "Paper's finding reproduced: random generation needs orders of\n"
        "magnitude more tests and still misses the wrapper-class races\n"
        "entirely, because it never *shares* the inner queue between two\n"
        "differently-locked wrappers."
    )


if __name__ == "__main__":
    main()
