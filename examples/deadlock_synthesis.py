"""Deadlock-test synthesis: the sibling technique, same machinery.

The racy-test paper's authors previously applied the identical recipe to
deadlocks (OOPSLA 2014, the paper's reference [22]).  This example runs
our implementation of that pipeline on the classic bank-transfer bug:
``transferOut`` locks the receiver, then the partner account — so two
crossed transfers can deadlock, but only if the two accounts are
partnered with *each other*, which is exactly the context the deriver
synthesizes.

Run:  python examples/deadlock_synthesis.py
"""

from repro.deadlock import DeadlockPipeline
from repro.runtime import VM
from repro.synth import materialize

BANK = """
class Account {
  int balance;
  Account other;
  Account(int start) { this.balance = start; }
  void setPartner(Account partner) { this.other = partner; }
  synchronized void transferOut(int amount) {
    this.balance = this.balance - amount;
    this.other.deposit(amount);
  }
  synchronized void deposit(int amount) {
    this.balance = this.balance + amount;
  }
  synchronized int read() { return this.balance; }
}
test Seed {
  Account a = new Account(100);
  Account b = new Account(100);
  a.setPartner(b);
  b.setPartner(a);
  a.transferOut(10);
  b.deposit(5);
  int n = a.read();
}
"""


def main() -> None:
    pipeline = DeadlockPipeline(BANK)
    report = pipeline.synthesize()

    print("Lock-order edges found in the sequential seed run:")
    for summary in report.lock_summaries:
        for edge in summary.edges:
            print(f"  {summary.class_name}.{summary.method}: {edge.describe()}")
    print()

    print(f"{len(report.pairs)} opposite-order pair(s) -> "
          f"{len(report.tests)} synthesized test(s)\n")
    for test in report.tests:
        print(materialize(test, VM(pipeline.table)).render())
        print()

    for confirm in pipeline.confirm(report, random_runs=8):
        print(confirm.describe())
    print()
    print(
        "The synthesized context partners the two accounts with each\n"
        "other — the one heap shape under which the crossed transfers\n"
        "can deadlock — and the VM's deadlock detector confirms it."
    )


if __name__ == "__main__":
    main()
