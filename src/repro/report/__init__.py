"""Paper-style table and figure rendering for the evaluation."""

from repro.report.tables import (
    FIG14_BUCKETS,
    Fig14Row,
    figure14_distribution,
    format_contege_comparison,
    format_figure14,
    format_static_filter_table,
    format_table3,
    format_table4,
    format_table5,
)

__all__ = [
    "FIG14_BUCKETS",
    "Fig14Row",
    "figure14_distribution",
    "format_contege_comparison",
    "format_figure14",
    "format_static_filter_table",
    "format_table3",
    "format_table4",
    "format_table5",
]

from repro.report.export import (
    contege_dict,
    detection_dict,
    evaluation_dict,
    subject_dict,
    synthesis_dict,
    write_evaluation_json,
)

__all__ += [
    "contege_dict",
    "detection_dict",
    "evaluation_dict",
    "subject_dict",
    "synthesis_dict",
    "write_evaluation_json",
]
