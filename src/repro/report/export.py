"""Machine-readable export of the evaluation results.

Mirrors the rendered tables as plain dictionaries so downstream tooling
(plots, dashboards, regression tracking across runs) can consume the
reproduction without scraping text tables.
"""

from __future__ import annotations

import json
from typing import Any

from repro.baseline.contege import ConTeGeResult
from repro.narada.pipeline import DetectionReport, SynthesisReport
from repro.report.tables import FIG14_BUCKETS, figure14_distribution
from repro.subjects.base import SubjectInfo


def subject_dict(subject: SubjectInfo) -> dict[str, Any]:
    return {
        "key": subject.key,
        "benchmark": subject.benchmark,
        "version": subject.version,
        "class": subject.class_name,
        "paper": {
            "methods": subject.paper.methods,
            "loc": subject.paper.loc,
            "race_pairs": subject.paper.race_pairs,
            "tests": subject.paper.tests,
            "time_seconds": subject.paper.time_seconds,
            "races_detected": subject.paper.races_detected,
            "harmful": subject.paper.harmful,
            "benign": subject.paper.benign,
            "manual_tp": subject.paper.manual_tp,
            "manual_fp": subject.paper.manual_fp,
        },
    }


def synthesis_dict(report: SynthesisReport) -> dict[str, Any]:
    return {
        "class": report.class_name,
        "methods": report.method_count,
        "loc": report.loc,
        "pairs": report.pair_count,
        "tests": report.test_count,
        "seconds": report.seconds,
        "full_context_tests": len(report.full_context_tests()),
    }


def detection_dict(report: DetectionReport) -> dict[str, Any]:
    return {
        "class": report.class_name,
        "detected": report.detected,
        "reproduced": report.reproduced,
        "harmful": report.harmful,
        "benign": report.benign,
        "manual_tp": report.manual_tp,
        "manual_fp": report.manual_fp,
        "races_per_test": report.races_per_test(),
    }


def contege_dict(result: ConTeGeResult) -> dict[str, Any]:
    return {
        "class": result.class_name,
        "tests_generated": result.tests_generated,
        "executions": result.executions,
        "violations": result.violation_count,
        "fault_kinds": sorted({v.fault_kind for v in result.violations}),
        "seconds": result.seconds,
    }


def evaluation_dict(
    rows: list[tuple[SubjectInfo, SynthesisReport, DetectionReport]],
    contege: dict[str, ConTeGeResult] | None = None,
) -> dict[str, Any]:
    """The full evaluation as one JSON-serializable structure."""
    fig14 = {
        row.class_key: row.percentages
        for row in figure14_distribution(
            [(subject, detection) for subject, _, detection in rows]
        )
    }
    out: dict[str, Any] = {
        "paper": "Synthesizing Racy Tests (PLDI 2015)",
        "fig14_buckets": list(FIG14_BUCKETS),
        "subjects": [],
    }
    for subject, synthesis, detection in rows:
        entry = subject_dict(subject)
        entry["measured"] = {
            "synthesis": synthesis_dict(synthesis),
            "detection": detection_dict(detection),
            "fig14": fig14[subject.key],
        }
        if contege and subject.key in contege:
            entry["measured"]["contege"] = contege_dict(contege[subject.key])
        out["subjects"].append(entry)
    out["totals"] = {
        "pairs": sum(s.pair_count for _, s, _ in rows),
        "tests": sum(s.test_count for _, s, _ in rows),
        "detected": sum(d.detected for _, _, d in rows),
        "reproduced": sum(d.reproduced for _, _, d in rows),
        "harmful": sum(d.harmful for _, _, d in rows),
        "benign": sum(d.benign for _, _, d in rows),
    }
    return out


def write_evaluation_json(path: str, data: dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
