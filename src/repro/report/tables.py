"""Table/figure formatting mirroring the paper's evaluation section.

Each function takes measured results and renders rows in the same shape
as the corresponding paper table, with the paper's own numbers alongside
for comparison.  The benchmark harness prints these.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.baseline.contege import ConTeGeResult
from repro.narada.pipeline import DetectionReport, SynthesisReport
from repro.subjects.base import SubjectInfo

#: Figure 14's histogram buckets for races-per-test.
FIG14_BUCKETS = ("0", "1", "2", "3-5", "5-10", ">10")


def _bucket(races: int) -> str:
    if races <= 2:
        return str(races)
    if races <= 5:
        return "3-5"
    if races <= 10:
        return "5-10"
    return ">10"


def format_table3(subjects: list[SubjectInfo]) -> str:
    """Table 3: benchmark information."""
    lines = [
        "Table 3: Benchmark Information",
        f"{'Key':<5}{'Benchmark':<12}{'Version':<10}Class name",
        "-" * 60,
    ]
    for subject in subjects:
        lines.append(
            f"{subject.key:<5}{subject.benchmark:<12}{subject.version:<10}"
            f"{subject.class_name}"
        )
    return "\n".join(lines)


def format_table4(
    rows: list[tuple[SubjectInfo, SynthesisReport]],
) -> str:
    """Table 4: synthesized test count and synthesis time."""
    lines = [
        "Table 4: Synthesized test count and synthesis time",
        f"{'Class':<6}{'Methods':>8}{'LoC':>6}{'Pairs':>7}{'Tests':>7}"
        f"{'Time(s)':>9}   paper: pairs/tests/time",
        "-" * 76,
    ]
    total_pairs = total_tests = 0
    total_time = 0.0
    for subject, report in rows:
        total_pairs += report.pair_count
        total_tests += report.test_count
        total_time += report.seconds
        paper = subject.paper
        lines.append(
            f"{subject.key:<6}{report.method_count:>8}{report.loc:>6}"
            f"{report.pair_count:>7}{report.test_count:>7}"
            f"{report.seconds:>9.2f}   "
            f"{paper.race_pairs}/{paper.tests}/{paper.time_seconds}"
        )
    lines.append("-" * 76)
    lines.append(
        f"{'Total':<6}{'':>8}{'':>6}{total_pairs:>7}{total_tests:>7}"
        f"{total_time:>9.2f}   466/101/201.3"
    )
    return "\n".join(lines)


def format_table5(
    rows: list[tuple[SubjectInfo, DetectionReport]],
) -> str:
    """Table 5: detector results on the synthesized tests."""
    lines = [
        "Table 5: Analysis of synthesized tests by the RaceFuzzer analogue",
        f"{'Class':<6}{'Detected':>9}{'Reprod.':>8}{'Harmful':>8}{'Benign':>7}"
        f"{'TP':>4}{'FP':>4}   paper: det/harm/ben/tp/fp",
        "-" * 78,
    ]
    totals = Counter()
    for subject, report in rows:
        totals["detected"] += report.detected
        totals["reproduced"] += report.reproduced
        totals["harmful"] += report.harmful
        totals["benign"] += report.benign
        totals["tp"] += report.manual_tp
        totals["fp"] += report.manual_fp
        paper = subject.paper
        paper_tp = paper.manual_tp if paper.manual_tp is not None else "-"
        paper_fp = paper.manual_fp if paper.manual_fp is not None else "-"
        lines.append(
            f"{subject.key:<6}{report.detected:>9}{report.reproduced:>8}"
            f"{report.harmful:>8}{report.benign:>7}"
            f"{report.manual_tp:>4}{report.manual_fp:>4}   "
            f"{paper.races_detected}/{paper.harmful}/{paper.benign}"
            f"/{paper_tp}/{paper_fp}"
        )
    lines.append("-" * 78)
    lines.append(
        f"{'Total':<6}{totals['detected']:>9}{totals['reproduced']:>8}"
        f"{totals['harmful']:>8}{totals['benign']:>7}"
        f"{totals['tp']:>4}{totals['fp']:>4}   307/187/72/44/4"
    )
    return "\n".join(lines)


def format_static_filter_table(
    rows: list[tuple[str, SynthesisReport, DetectionReport | None]],
) -> str:
    """Staged-pipeline funnel: generated -> pruned -> ranked -> fuzzed.

    One row per subject plus a totals row; the by-reason breakdown
    (consistent-lock / thread-local / read-read) is aggregated under the
    table.  ``Fuzzed`` is the test-level consequence of pruning — tests
    whose covered pairs all discharged get a zero budget — and is only
    known when a :class:`DetectionReport` accompanies the synthesis.
    """
    from repro.static.filter import filter_stats

    lines = [
        "Static lockset pre-filter: candidate funnel",
        f"{'Class':<8}{'Pairs':>7}{'Pruned':>8}{'Ranked':>8}"
        f"{'Tests':>7}{'Fuzzed':>8}{'Skipped':>9}",
        "-" * 55,
    ]
    totals = Counter()
    reasons: Counter = Counter()
    deadlock_watch = 0
    for label, synthesis, detection in rows:
        stats = filter_stats(synthesis.verdicts)
        reasons.update(stats.by_reason)
        deadlock_watch += stats.deadlock_watch
        tests = synthesis.test_count
        skipped = detection.pruned_tests if detection is not None else 0
        fuzzed = tests - skipped
        totals.update(
            pairs=stats.generated, pruned=stats.pruned, ranked=stats.ranked,
            tests=tests, fuzzed=fuzzed, skipped=skipped,
        )
        lines.append(
            f"{label:<8}{stats.generated:>7}{stats.pruned:>8}"
            f"{stats.ranked:>8}{tests:>7}{fuzzed:>8}{skipped:>9}"
        )
    lines.append("-" * 55)
    lines.append(
        f"{'Total':<8}{totals['pairs']:>7}{totals['pruned']:>8}"
        f"{totals['ranked']:>8}{totals['tests']:>7}{totals['fuzzed']:>8}"
        f"{totals['skipped']:>9}"
    )
    fraction = (
        totals["pruned"] / totals["pairs"] if totals["pairs"] else 0.0
    )
    breakdown = ", ".join(
        f"{reason}={count}" for reason, count in sorted(reasons.items())
    ) or "none"
    lines.append(
        f"pruned {fraction:.1%} of pairs (by reason: {breakdown}; "
        f"{deadlock_watch} deadlock-watch pair(s) kept at reduced budget)"
    )
    return "\n".join(lines)


@dataclass
class Fig14Row:
    """Per-class distribution of tests over race-count buckets (%)"""

    class_key: str
    percentages: dict[str, float]


def figure14_distribution(
    rows: list[tuple[SubjectInfo, DetectionReport]],
) -> list[Fig14Row]:
    out = []
    for subject, report in rows:
        counts = Counter(_bucket(n) for n in report.races_per_test())
        total = sum(counts.values()) or 1
        out.append(
            Fig14Row(
                class_key=subject.key,
                percentages={
                    bucket: 100.0 * counts.get(bucket, 0) / total
                    for bucket in FIG14_BUCKETS
                },
            )
        )
    return out


def format_figure14(rows: list[tuple[SubjectInfo, DetectionReport]]) -> str:
    """Figure 14: distribution of tests w.r.t. number of detected races."""
    dist = figure14_distribution(rows)
    lines = [
        "Figure 14: Distribution of tests w.r.t. the number of detected races",
        f"{'Class':<6}" + "".join(f"{bucket:>8}" for bucket in FIG14_BUCKETS),
        "-" * 60,
    ]
    for row in dist:
        lines.append(
            f"{row.class_key:<6}"
            + "".join(f"{row.percentages[bucket]:>7.0f}%" for bucket in FIG14_BUCKETS)
        )
    return "\n".join(lines)


def format_contege_comparison(
    rows: list[tuple[SubjectInfo, ConTeGeResult, DetectionReport | None]],
) -> str:
    """§5 comparison: ConTeGe random search vs Narada's directed tests."""
    lines = [
        "ConTeGe comparison (§5): random generation vs directed synthesis",
        f"{'Class':<6}{'ConTeGe tests':>14}{'violations':>12}"
        f"{'Narada tests':>14}{'races':>7}   paper (ConTeGe)",
        "-" * 78,
    ]
    for subject, contege, narada in rows:
        narada_tests = len(narada.fuzz_reports) if narada else 0
        narada_races = narada.detected if narada else 0
        paper_note = {
            "C5": "2 violations / 2.9K tests",
            "C6": "1 violation / 105 tests",
        }.get(subject.key, "none / 1K-70K tests")
        lines.append(
            f"{subject.key:<6}{contege.tests_generated:>14}"
            f"{contege.violation_count:>12}{narada_tests:>14}"
            f"{narada_races:>7}   {paper_note}"
        )
    return "\n".join(lines)
