"""Command-line interface: ``python -m repro <command>``.

Commands mirror the pipeline stages so the tool is usable without
writing Python:

* ``subjects``                      — list the nine paper subjects
* ``analyze  (--subject K | FILE)`` — print method summaries (A/D view)
* ``pairs    (--subject K | FILE)`` — print racy pairs
* ``synth    (--subject K | FILE)`` — synthesize tests; print one/all
* ``fuzz     (--subject K | FILE)`` — synthesize + fuzz; print races
* ``chess    (--subject K | FILE)`` — bounded systematic exploration
* ``emit     (--subject K | FILE)`` — standalone racy tests (``fork {}``)
* ``run      FILE``                 — execute a MiniJ file's tests with
  detectors attached (nonzero exit when races/crashes are found)
* ``run      --subjects C1,C8``     — fault-tolerant pipeline run over
  built-in subjects: survives worker crashes/hangs, prints the fault
  ledger, exits 0 with partial results
* ``deadlock (--subject K | FILE)`` — the OOPSLA'14 sibling pipeline
* ``contege  (--subject K | FILE)`` — run the random baseline
* ``tables``                        — regenerate the evaluation tables
* ``corpus generate``               — emit seeded synthetic subjects with
  known-answer race oracles (``--out`` writes ``.minij`` +
  ``.oracle.json`` pairs)
* ``corpus run``                    — pipeline the generated corpus and
  score recall/precision against the oracles (nonzero exit on any lost
  race or failed subject)
* ``serve``                         — warm-pool pipeline daemon on a
  unix/TCP socket; drains gracefully on SIGTERM/SIGINT
* ``client``                        — talk to a running daemon
  (``ping``/``stats``/``detect``/``synthesize``/``corpus``/``shutdown``)

``FILE`` is a MiniJ source file containing the library classes and its
sequential seed tests.

Pipeline-running commands share three orchestration flags: ``--jobs N``
fans the per-subject pipeline and the per-test fuzz loop out over a
process pool (results are bit-identical to ``--jobs 1``), ``--no-cache``
disables the persistent content-addressed artifact cache, and
``--cache-dir`` points the cache somewhere other than
``$REPRO_CACHE_DIR`` / ``~/.cache/repro-narada``.  With a pool,
``--batch-ms`` tunes how much unit compute each worker round-trip
carries (0 disables batching); batch boundaries never change results.

They also share the fault-tolerance flags: ``--unit-timeout`` arms a
per-unit wall-clock watchdog, ``--max-retries``/``--retry-backoff``
bound the retry loop, ``--resume`` skips units journaled as completed by
an interrupted run, and ``--fault-inject crash:0.3,hang:0.1`` is the
test-only deterministic fault hook.  None of these change cache keys or
results — a retried run is bit-identical to a clean one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.baseline import ConTeGe
from repro.fuzz import explore_test
from repro.lang import ClassTable, load
from repro.narada import (
    ArtifactCache,
    Narada,
    PipelineConfig,
    PipelineOrchestrator,
    SubjectSpec,
    subject_specs,
)
from repro.runtime import VM
from repro.subjects import all_subjects, get_subject
from repro.synth import materialize


def _load_target(args) -> tuple[ClassTable, str, str]:
    """Resolve --subject/FILE into (class table, target class, source)."""
    if args.subject:
        subject = get_subject(args.subject)
        return subject.load(), subject.class_name, subject.source
    if not args.file:
        raise SystemExit("error: provide --subject C1..C9 or a MiniJ file")
    with open(args.file) as handle:
        source = handle.read()
    table = load(source)
    target = args.target_class
    if target is None:
        candidates = table.class_names()
        if len(candidates) != 1:
            raise SystemExit(
                f"error: --class needed, file defines {', '.join(candidates)}"
            )
        target = candidates[0]
    return table, target, source


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    """Orchestration flags shared by every pipeline-running command."""
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; 1 runs inline with no pool (default)",
    )
    parser.add_argument(
        "--batch-ms", type=float, default=None, metavar="MS",
        help="target work per worker dispatch; batches of small units "
             "are auto-sized to amortize IPC under this much compute "
             "(default: 75; 0 disables batching; results identical)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every stage instead of using the artifact cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache root (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-narada)",
    )
    parser.add_argument(
        "--trace-stats", action="store_true",
        help="print packed-trace statistics: per-stage event counts, "
             "packed bytes, detector events/sec, compression ratio, "
             "block-skipping counters, fuzz memo hit rate",
    )
    parser.add_argument(
        "--no-static-filter", action="store_true",
        help="disable the static lockset pre-filter: every candidate "
             "pair gets the full fuzz budget (pre-filter-era behavior)",
    )
    parser.add_argument(
        "--static-stats", action="store_true",
        help="print the candidate funnel: pairs generated / statically "
             "pruned (by reason) / ranked / tests fuzzed vs skipped",
    )
    parser.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock watchdog deadline (default: none)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per failed/hung unit before recording a failure "
             "(default: 2)",
    )
    parser.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base retry backoff; attempt n waits backoff*2^(n-1) "
             "(default: 0.05)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip units journaled as completed by a previous "
             "(interrupted) run of the same subjects + config",
    )
    parser.add_argument(
        "--run-dir", metavar="DIR",
        help="resume-journal directory (default: <cache root>/runs)",
    )
    parser.add_argument(
        "--fault-inject", metavar="SPEC",
        help="test-only deterministic fault injection, e.g. "
             "crash:0.3,hang:0.1,corrupt:0.05",
    )


def _add_target_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", nargs="?", help="MiniJ source file")
    parser.add_argument(
        "--subject", choices=[s.key for s in all_subjects()],
        help="use a built-in paper subject instead of a file",
    )
    parser.add_argument(
        "--class", dest="target_class", help="class under analysis"
    )
    parser.add_argument("--json", action="store_true", help="JSON output")
    _add_pipeline_args(parser)


def _cache_from(args) -> ArtifactCache | None:
    if getattr(args, "no_cache", False):
        return None
    return ArtifactCache(
        args.cache_dir,
        max_bytes=getattr(args, "cache_max_bytes", None),
    )


def _pipeline_config(args, **config) -> PipelineConfig:
    extra = {}
    if getattr(args, "batch_ms", None) is not None:
        extra["batch_ms"] = args.batch_ms
    return PipelineConfig(
        unit_timeout=args.unit_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        fault_inject=args.fault_inject,
        static_filter=not getattr(args, "no_static_filter", False),
        **extra,
        **config,
    )


def _orchestrator(args, **config) -> PipelineOrchestrator:
    try:
        return PipelineOrchestrator(
            jobs=args.jobs,
            cache=_cache_from(args),
            config=_pipeline_config(args, **config),
            resume=args.resume,
            run_dir=args.run_dir,
        )
    except ValueError as error:  # e.g. --resume with --no-cache
        raise SystemExit(f"error: {error}")


def _print_fault_summary(orch: PipelineOrchestrator, always=False) -> None:
    """Print the fault ledger when anything noteworthy happened."""
    ledger = orch.fault_ledger
    noteworthy = (
        not ledger.ok()
        or ledger.retries
        or ledger.timeouts
        or ledger.pool_respawns
        or ledger.quarantined
        or ledger.resumed
    )
    if always or noteworthy:
        print()
        print(ledger.describe())


def _synthesize(args, target: str, source: str):
    """Run (or replay from cache) the synthesis pipeline for a target."""
    spec = SubjectSpec(name=target, source=source, target_class=target)
    with _orchestrator(args) as orch:
        return orch.synthesize(spec)


def cmd_subjects(args) -> int:
    rows = []
    for subject in all_subjects():
        rows.append(
            {
                "key": subject.key,
                "benchmark": subject.benchmark,
                "version": subject.version,
                "class": subject.class_name,
                "description": subject.description,
            }
        )
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        for row in rows:
            print(f"{row['key']}: {row['class']} "
                  f"({row['benchmark']} {row['version']})")
            print(f"    {row['description']}")
    return 0


def cmd_analyze(args) -> int:
    from repro.narada.cache import stage_key, table_digest
    from repro.narada.serial import decode_analysis, encode_analysis

    table, target, source = _load_target(args)
    narada = Narada(source)
    cache = _cache_from(args)
    if cache is not None:
        key = stage_key(table_digest(narada.table), "analysis", {"vm_seed": 0})
        cached = cache.get("analysis", key)
        if cached is not None:
            narada.use_analysis(decode_analysis(cached))
    analysis = narada.analysis()
    if cache is not None and cached is None:
        cache.put("analysis", key, encode_analysis(analysis))
    summaries = analysis.for_class(target)
    if args.json:
        print(json.dumps([_summary_json(s) for s in summaries], indent=2))
        return 0
    for summary in summaries:
        print(summary.describe())
        print()
    if args.trace_stats:
        _trace_stats(source)
    return 0


def cmd_pairs(args) -> int:
    table, target, source = _load_target(args)
    report = _synthesize(args, target, source)
    verdicts = report.verdicts if len(report.verdicts) == len(report.pairs) else []
    if args.json:
        print(
            json.dumps(
                [
                    _pair_json(p, verdicts[i] if verdicts else None)
                    for i, p in enumerate(report.pairs)
                ],
                indent=2,
            )
        )
        return 0
    for i, pair in enumerate(report.pairs):
        line = pair.describe()
        if verdicts:
            v = verdicts[i]
            if v.pruned:
                line += f"  [pruned: {v.reason}]"
            else:
                line += f"  [rank {v.score}]"
                if v.deadlock_risk:
                    line += " [deadlock watch]"
        print(line)
    summary = f"\n{report.pair_count} racing pair(s)"
    if verdicts:
        summary += f", {report.pruned_pair_count} statically pruned"
    print(summary)
    if args.static_stats:
        _static_stats([(target, report, None)])
    if args.trace_stats:
        _trace_stats(source)
    return 0


def cmd_synth(args) -> int:
    table, target, source = _load_target(args)
    report = _synthesize(args, target, source)
    tests = report.tests if args.all else report.tests[: args.show]
    if args.json:
        print(
            json.dumps(
                {
                    "class": target,
                    "pairs": report.pair_count,
                    "tests": report.test_count,
                    "seconds": report.seconds,
                    "rendered": [
                        materialize(t, VM(table)).render() for t in tests
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{report.pair_count} pairs -> {report.test_count} tests "
        f"in {report.seconds:.2f}s\n"
    )
    for test in tests:
        print(f"--- {test.name} ({len(test.covered_pairs)} pair(s)) ---")
        print(materialize(test, VM(table)).render())
        print()
    if args.trace_stats:
        _trace_stats(source)
    return 0


def cmd_fuzz(args) -> int:
    table, target, source = _load_target(args)
    spec = SubjectSpec(name=target, source=source, target_class=target)
    with _orchestrator(
        args, random_runs=args.runs, directed=not args.no_directed
    ) as orch:
        outcome = orch.run([spec])[0]
    report, detection = outcome.synthesis, outcome.detection
    if report is None or detection is None:
        print(f"{target}: pipeline FAILED")
        print(orch.fault_ledger.describe())
        return 1
    if args.json:
        print(json.dumps(_detection_json(target, report, detection), indent=2))
        return 0
    print(
        f"{target}: {detection.detected} race(s) detected, "
        f"{detection.reproduced} reproduced "
        f"({detection.harmful} harmful, {detection.benign} benign), "
        f"manual TP/FP {detection.manual_tp}/{detection.manual_fp}"
    )
    if report.pruned_pair_count or detection.pruned_tests:
        print(
            f"static pre-filter: {report.pruned_pair_count}/"
            f"{report.pair_count} pair(s) pruned, "
            f"{detection.pruned_tests} test(s) skipped"
        )
    if args.static_stats:
        _static_stats([(target, report, detection)])
    if outcome.detection_partial:
        print("(partial: some fuzz units failed; see the fault ledger)")
    for fuzz in detection.fuzz_reports:
        if fuzz.detected:
            print()
            print(fuzz.describe())
    _print_fault_summary(orch)
    if args.trace_stats:
        _trace_stats(source, [detection])
    return int(detection.detected == 0)


def cmd_chess(args) -> int:
    table, target, source = _load_target(args)
    report = _synthesize(args, target, source)
    tests = report.tests[: args.tests]
    total_races = 0
    for test in tests:
        result = explore_test(
            table, test, preemption_bound=args.bound,
            max_schedules=args.max_schedules,
        )
        total_races += result.race_count
        status = "exhausted" if result.exhausted else "capped"
        print(
            f"{test.name}: {result.schedules_run} schedule(s) [{status}], "
            f"{result.race_count} race(s)"
        )
        for key, schedule in result.race_schedules.items():
            print(f"    {key[0]}.{key[1]} sites={key[2]} "
                  f"certificate={schedule}")
    if args.trace_stats:
        _trace_stats(source)
    return int(total_races == 0)


def cmd_emit(args) -> int:
    from repro.synth.emit import emit_standalone_program

    table, target, source = _load_target(args)
    report = _synthesize(args, target, source)
    tests = report.tests if args.all else report.tests[: args.count]
    emitted = emit_standalone_program(table, tests)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(emitted)
        print(f"wrote {len(tests)} standalone test(s) to {args.output}")
    else:
        print(emitted)
    if args.trace_stats:
        _trace_stats(source)
    return 0


def _run_subjects_pipeline(args) -> int:
    """``repro run --subjects``: the fault-tolerant pipeline mode.

    Exits 0 as long as the orchestrator survived — failed units are
    reported in the fault ledger, not via the exit code, because partial
    results are the whole point of the fault-tolerance layer.
    """
    keys = [k.strip() for k in args.subjects.split(",") if k.strip()]
    if keys == ["all"]:
        subjects = all_subjects()
    else:
        try:
            subjects = [get_subject(k) for k in keys]
        except KeyError as error:
            raise SystemExit(f"error: unknown subject {error.args[0]!r}")
    with _orchestrator(args, random_runs=args.runs) as orch:
        outcomes = orch.run(subject_specs(subjects))
        for outcome in outcomes:
            if outcome.synthesis is None:
                print(f"{outcome.spec.name}: synthesis FAILED")
                continue
            line = f"{outcome.spec.name}: {outcome.synthesis.test_count} test(s)"
            detection = outcome.detection
            if detection is not None:
                line += (
                    f", {detection.detected} race(s) detected, "
                    f"{detection.reproduced} reproduced"
                )
                if outcome.detection_partial:
                    line += " [partial]"
            print(line)
        if args.static_stats:
            _static_stats(
                [
                    (o.spec.name, o.synthesis, o.detection)
                    for o in outcomes
                    if o.synthesis is not None
                ]
            )
        _print_fault_summary(orch, always=True)
        if args.trace_stats:
            detections = [
                o.detection for o in outcomes if o.detection is not None
            ]
            events = bytes_total = hits = misses = skipped = blocks = 0
            for detection in detections:
                for fuzz in detection.fuzz_reports:
                    events += fuzz.trace_events
                    bytes_total += fuzz.packed_bytes
                    hits += fuzz.memo_hits
                    misses += fuzz.memo_misses
                    skipped += fuzz.rows_skipped
                    blocks += fuzz.repeat_blocks
            runs = hits + misses
            rate = (hits / runs * 100) if runs else 0.0
            print(
                f"\n-- trace stats --\n"
                f"fuzz (all subjects): {events} events, {bytes_total} "
                f"packed bytes over {runs} run(s); memo {hits} hit(s) / "
                f"{misses} miss(es) ({rate:.1f}% hit rate); "
                f"{blocks} repeat block(s), {skipped} row(s) skipped"
            )
    return 0


def cmd_run(args) -> int:
    import time

    from repro.analysis.sweep import (
        SweepStats,
        UnknownPassError,
        interest_union,
        resolve_pass,
        run_sweep,
    )
    from repro.runtime import Execution, RandomScheduler
    from repro.trace.columnar import ColumnarRecorder
    from repro.trace.compressed import compress_trace

    if args.subjects:
        return _run_subjects_pipeline(args)
    if not args.file:
        raise SystemExit(
            "error: provide a MiniJ FILE or --subjects C1,C2,... (or all)"
        )
    with open(args.file) as handle:
        table = load(handle.read())
    names = [n.strip() for n in args.detectors.split(",") if n.strip()]
    try:
        pass_classes = [resolve_pass(n) for n in names]
    except UnknownPassError as error:
        raise SystemExit(f"error: {error}")
    interests = interest_union(pass_classes)
    test_names = (
        [args.test] if args.test else [t.name for t in table.program.tests]
    )
    trace_stats = getattr(args, "trace_stats", False)
    sweep_stats = SweepStats()
    total_rows = plan_rows = blocks = 0
    sweep_seconds = 0.0
    exit_code = 0
    for name in test_names:
        test = table.program.test_decl(name)
        if test is None:
            raise SystemExit(f"error: no test {name} in {args.file}")
        races = set()
        failures = 0
        for seed in range(args.runs):
            vm = VM(table)
            recorder = ColumnarRecorder.create(name, interests=interests)
            execution = Execution(vm, listeners=(recorder,))
            execution.spawn(
                lambda ctx, body=test.body.stmts: vm.interp.run_client_stmts(
                    body, ctx, {}
                )
            )
            result = execution.run(RandomScheduler(seed * 7919 + 3))
            if result.deadlocked or result.faults:
                failures += 1
            passes = [cls() for cls in pass_classes]
            trace = recorder.packed
            if trace_stats:
                trace = compress_trace(trace)
                cstats = trace.stats()
                total_rows += cstats.total_rows
                plan_rows += cstats.compressed_rows
                blocks += cstats.repeat_blocks
            started = time.perf_counter()
            run_sweep(passes, trace,
                      stats=sweep_stats if trace_stats else None)
            sweep_seconds += time.perf_counter() - started
            for sweep_pass in passes:
                race_set = getattr(sweep_pass, "races", None)
                if race_set is not None:
                    races |= race_set.static_keys()
        verdict = f"{len(races)} race(s)"
        if failures:
            verdict += f", {failures}/{args.runs} runs crashed or deadlocked"
        print(f"{name}: {verdict}")
        for key in sorted(races):
            print(f"    race on {key[0]}.{key[1]} between sites {key[2]}")
        if races or failures:
            exit_code = 1
    if trace_stats:
        ratio = (total_rows / plan_rows) if plan_rows else 1.0
        rate = (
            sweep_stats.rows_total / sweep_seconds
            if sweep_seconds > 0 else float("inf")
        )
        print(
            f"\n-- trace stats --\n"
            f"compression: {total_rows} rows -> {plan_rows} plan rows "
            f"({ratio:.1f}x), {blocks} repeat block(s)\n"
            f"compressed sweep ({'+'.join(names)}): {rate:,.0f} events/sec, "
            f"{sweep_stats.rows_skipped} row(s) skipped "
            f"({sweep_stats.blocks_summarized} block(s) summarized, "
            f"{sweep_stats.blocks_replayed} replayed)"
        )
    return exit_code


def cmd_deadlock(args) -> int:
    from repro.deadlock import DeadlockPipeline
    from repro.runtime import VM as _VM
    from repro.synth import materialize as _materialize

    table, target, _ = _load_target(args)
    pipeline = DeadlockPipeline(table)
    report = pipeline.synthesize(target_class=None if args.all_classes else target)
    print(
        f"{len(report.lock_summaries)} invocation(s) analyzed, "
        f"{len(report.pairs)} opposite-order pair(s), "
        f"{len(report.tests)} synthesized test(s)"
    )
    confirmed = 0
    for test, confirm in zip(report.tests, pipeline.confirm(report, args.runs)):
        print()
        print(_materialize(test, _VM(table)).render())
        print(confirm.describe())
        confirmed += int(confirm.confirmed)
    return int(report.tests != [] and confirmed == 0)


def cmd_contege(args) -> int:
    table, target, _ = _load_target(args)
    contege = ConTeGe(table, target, seed=args.seed)
    result = contege.run(max_tests=args.budget)
    print(
        f"{target}: {result.tests_generated} random tests, "
        f"{result.violation_count} violation(s) in {result.seconds:.1f}s"
    )
    for violation in result.violations:
        print(f"  {violation.fault_kind} (schedule seed "
              f"{violation.schedule_seed})")
        print("  " + violation.test.render().replace("\n", "\n  "))
    return 0


def cmd_tables(args) -> int:
    from repro.report import format_table3, format_table4, format_table5

    subjects = all_subjects()
    print(format_table3(subjects))
    print()
    with _orchestrator(args, random_runs=args.runs) as orch:
        outcomes = orch.run(subject_specs(subjects), detect=args.detect)
    rows = [
        (subject, outcome.synthesis)
        for subject, outcome in zip(subjects, outcomes)
        if outcome.synthesis is not None
    ]
    print(format_table4(rows))
    if args.detect:
        detections = [
            (subject, outcome.detection)
            for subject, outcome in zip(subjects, outcomes)
            if outcome.detection is not None
        ]
        print()
        print(format_table5(detections))
    if args.static_stats:
        _static_stats(
            [
                (subject.key, outcome.synthesis, outcome.detection)
                for subject, outcome in zip(subjects, outcomes)
                if outcome.synthesis is not None
            ]
        )
    _print_fault_summary(orch)
    if args.trace_stats and args.detect:
        # Aggregate the deterministic fuzz counters across subjects.
        events = bytes_total = hits = misses = 0
        skipped = blocks = 0
        for outcome in outcomes:
            if outcome.detection is None:
                continue
            for fuzz in outcome.detection.fuzz_reports:
                events += fuzz.trace_events
                bytes_total += fuzz.packed_bytes
                hits += fuzz.memo_hits
                misses += fuzz.memo_misses
                skipped += fuzz.rows_skipped
                blocks += fuzz.repeat_blocks
        runs = hits + misses
        rate = (hits / runs * 100) if runs else 0.0
        print(
            f"\n-- trace stats --\n"
            f"fuzz (all subjects): {events} events, {bytes_total} packed "
            f"bytes over {runs} run(s); memo {hits} hit(s) / {misses} "
            f"miss(es) ({rate:.1f}% hit rate); {blocks} repeat block(s), "
            f"{skipped} row(s) skipped"
        )
    return 0


# ----------------------------------------------------------------------
# Generated corpus commands.


def _corpus_config(args):
    from repro.corpus import CorpusConfig, template_names

    templates = template_names()
    if args.templates:
        templates = tuple(
            t.strip() for t in args.templates.split(",") if t.strip()
        )
    try:
        return CorpusConfig(
            seed=args.seed,
            count=args.count,
            templates=templates,
            min_templates=args.min_templates,
            max_templates=args.max_templates,
        ).validate()
    except ValueError as error:
        raise SystemExit(f"error: {error}")


def cmd_corpus_generate(args) -> int:
    from repro.corpus import generate_corpus

    subjects = generate_corpus(_corpus_config(args))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for subject in subjects:
            base = os.path.join(args.out, subject.key)
            with open(base + ".minij", "w") as handle:
                handle.write(subject.source)
            with open(base + ".oracle.json", "w") as handle:
                json.dump(subject.verdict.to_dict(), handle, indent=2)
                handle.write("\n")
        print(f"wrote {len(subjects)} subject(s) to {args.out}")
        return 0
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "key": s.key,
                        "class": s.class_name,
                        "templates": list(s.template_keys),
                        "oracle": s.verdict.to_dict(),
                        "source": s.source,
                    }
                    for s in subjects
                ],
                indent=2,
            )
        )
        return 0
    for subject in subjects:
        verdict = subject.verdict
        line = (
            f"{subject.key}: {subject.class_name} "
            f"[{', '.join(subject.template_keys)}] "
            f"{len(verdict.races)} oracle race(s) "
            f"({verdict.harmful_count()} harmful, "
            f"{verdict.benign_count()} benign)"
        )
        if verdict.deadlock_potential:
            line += ", deadlock potential"
        print(line)
    return 0


def cmd_corpus_run(args) -> int:
    from repro.corpus import run_corpus

    config = _corpus_config(args)
    with _orchestrator(args, random_runs=args.runs) as orch:
        result = run_corpus(config, orch, batch_size=args.batch_size)
        problems = result.problems()
        if args.json:
            print(
                json.dumps(
                    {
                        "subjects": result.subjects,
                        "recall": result.recall,
                        "precision": result.precision,
                        "pair_precision": result.pair_precision,
                        "pruned_pairs": result.pruned_pairs,
                        "pruned_fraction": result.pruned_fraction,
                        "pruned_oracle_races": result.pruned_oracle_races,
                        "oracle_races": result.oracle_races,
                        "detected_races": result.detected_races,
                        "missed_races": result.missed_races,
                        "deadlock_expected": result.deadlock_expected,
                        "deadlock_observed": result.deadlock_observed,
                        "failed_subjects": result.failed_subjects,
                        "problems": problems,
                        "digests": result.digests,
                    },
                    indent=2,
                )
            )
        else:
            print(result.summary())
            for problem in problems:
                print(f"  {problem}")
        _print_fault_summary(orch)
    return int(bool(problems))


# ----------------------------------------------------------------------
# Daemon commands: ``repro serve`` / ``repro client``.


def _daemon_endpoint(args) -> dict:
    """Resolve --socket/--tcp into daemon/client constructor kwargs."""
    from repro.narada.daemon import default_socket_path, parse_tcp

    if args.tcp:
        try:
            return {"tcp": parse_tcp(args.tcp)}
        except ValueError as error:
            raise SystemExit(f"error: {error}")
    return {"socket_path": args.socket or default_socket_path()}


def cmd_serve(args) -> int:
    """Run the warm-pool pipeline daemon until SIGTERM/SIGINT.

    The daemon owns one batched worker pool, the parsed-table and
    batch-cost caches, and the persistent artifact cache; requests from
    ``repro client`` (or any length-prefixed-JSON speaker) share all of
    them.  Signals drain gracefully: in-flight requests finish and
    answer before the process exits.
    """
    import signal as _signal

    from repro.narada.daemon import ReproDaemon

    daemon = ReproDaemon(
        jobs=args.jobs,
        cache=_cache_from(args),
        base_config=_pipeline_config(args),
        max_queue_depth=args.max_queue,
        default_deadline_s=args.deadline,
        recv_timeout_s=args.recv_timeout,
        memory_budget_mb=args.memory_budget_mb,
        **_daemon_endpoint(args),
    )
    daemon.bind()

    def _drain(signum, frame):
        print(f"\nrepro serve: draining on signal {signum}", flush=True)
        daemon.initiate_drain()

    for sig in (_signal.SIGTERM, _signal.SIGINT):
        _signal.signal(sig, _drain)
    print(
        f"repro serve: listening on {daemon.address} "
        f"(jobs={daemon.jobs}, pid={os.getpid()})",
        flush=True,
    )
    daemon.serve_forever()
    print(
        f"repro serve: drained after {daemon.stats.requests} request(s)",
        flush=True,
    )
    return 0


def _client_request(args) -> dict:
    """Build the request object for the chosen client subcommand."""
    request: dict = {"op": args.client_command}
    if args.client_command in ("detect", "synthesize"):
        if args.file:
            with open(args.file) as handle:
                request["source"] = handle.read()
            if args.target_class:
                request["target_class"] = args.target_class
        elif args.subjects:
            keys = [k.strip() for k in args.subjects.split(",") if k.strip()]
            request["subjects"] = "all" if keys == ["all"] else keys
        else:
            raise SystemExit("error: provide --subjects C1,C8 or a FILE")
        request["runs"] = args.runs
        if args.vm_seed is not None:
            request["vm_seed"] = args.vm_seed
    elif args.client_command == "corpus":
        request.update(
            seed=args.seed, count=args.count, runs=args.runs,
            batch_size=args.batch_size,
        )
        if args.templates:
            request["templates"] = [
                t.strip() for t in args.templates.split(",") if t.strip()
            ]
    if getattr(args, "deadline", None) is not None:
        request["deadline_s"] = args.deadline
    return request


def cmd_client(args) -> int:
    """Send one request to a running daemon and print the response."""
    from repro.narada.daemon import DaemonClient

    request = _client_request(args)
    client = DaemonClient(
        timeout=args.timeout, retries=args.connect_retries,
        **_daemon_endpoint(args),
    )
    try:
        with client:
            response = client.request(request)
    except (ConnectionError, OSError) as error:
        raise SystemExit(f"error: {error}")
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 1
    if not response.get("ok"):
        code = response.get("error_code")
        prefix = f"error from daemon [{code}]" if code else "error from daemon"
        print(f"{prefix}: {response.get('error')}")
        retry_after = response.get("retry_after_s")
        if retry_after is not None:
            print(f"retry after {retry_after}s")
        return 1
    op = response.get("op")
    if op == "ping":
        print(
            f"daemon pid={response['pid']} up {response['uptime_s']}s, "
            f"jobs={response['jobs']}, "
            f"{response['requests_served']} request(s) served"
        )
    elif op in ("detect", "synthesize"):
        for name, entry in sorted(response["subjects"].items()):
            line = f"{name}: {entry.get('tests', 0)} test(s)"
            if "detected" in entry:
                line += (
                    f", {entry['detected']} race(s) detected, "
                    f"{entry['reproduced']} reproduced"
                )
                if entry.get("partial"):
                    line += " [partial]"
            caches = [
                flag
                for flag in ("synthesis_cached", "detection_cached")
                if entry.get(flag)
            ]
            if caches:
                line += f" [{', '.join(c.split('_')[0] for c in caches)} cached]"
            print(line)
    elif op == "corpus":
        print(
            f"{response['subjects']} subject(s): "
            f"recall {response['recall']:.3f}, "
            f"precision {response['precision']:.3f}, "
            f"{response['missed_races']} lost race(s)"
        )
        for problem in response["problems"]:
            print(f"  {problem}")
    else:
        print(json.dumps(response, indent=2, sort_keys=True))
    print(
        f"[{response['request_id']} in {response['elapsed_s']}s]",
        file=sys.stderr,
    )
    if op == "corpus" and response["problems"]:
        return 1
    return 0


def cmd_cache_stats(args) -> int:
    """Report on-disk cache size, entry counts, and quarantine load."""
    cache = ArtifactCache(args.cache_dir)
    payload = {
        "root": str(cache.root),
        "entries": cache.entry_count(),
        "total_bytes": cache.total_bytes(),
        "quarantine_entries": cache.quarantine_count(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"cache root: {payload['root']}")
    print(
        f"{payload['entries']} entr{'y' if payload['entries'] == 1 else 'ies'}, "
        f"{payload['total_bytes']:,} bytes"
    )
    print(f"{payload['quarantine_entries']} quarantined entr"
          f"{'y' if payload['quarantine_entries'] == 1 else 'ies'}")
    return 0


def cmd_cache_evict(args) -> int:
    """Evict LRU entries down to a byte budget; GC the quarantine."""
    cache = ArtifactCache(
        args.cache_dir,
        quarantine_max_entries=args.quarantine_max_entries,
        quarantine_max_age_s=args.quarantine_max_age_s,
    )
    removed = cache.evict(args.max_bytes)
    dropped = cache.gc_quarantine()
    print(
        f"evicted {removed} entr{'y' if removed == 1 else 'ies'} "
        f"(now {cache.total_bytes():,} bytes <= {args.max_bytes:,}); "
        f"dropped {dropped} quarantined"
    )
    return 0


# ----------------------------------------------------------------------
# --static-stats / --trace-stats reporting.


def _static_stats(rows) -> None:
    """Print the candidate funnel table (``--static-stats``)."""
    from repro.report import format_static_filter_table

    print()
    print(format_static_filter_table(rows))


def _trace_stats(source: str, detections=None) -> None:
    """Print packed-trace statistics for one subject (``--trace-stats``).

    Seed-stage numbers come from re-recording the seed suite into
    columnar form (cheap — sequential runs); analysis throughput is
    measured by one fused, timed sweep of the engine's detector stack
    over each trace (fresh pass instances per trace), with the
    accumulated per-pass seconds printed as a time share so a
    throughput regression is attributable to a specific pass.
    Fuzz-stage numbers (events, bytes, memo hit rate) are aggregated
    from the deterministic counters each FuzzReport already carries, so
    they reflect the actual run whether it came from the pool, the
    cache, or inline execution.
    """
    import time

    from repro.analysis.sweep import SweepStats, run_sweep
    from repro.detect import EraserDetector, FastTrackDetector
    from repro.detect.djit import DjitDetector
    from repro.fuzz.probes import AdjacencyProbe
    from repro.trace.compressed import compress_trace

    narada = Narada(source)
    traces = narada.run_seed_suite()
    total_events = sum(len(t) for t in traces)
    total_bytes = sum(t.nbytes() for t in traces)
    counts: dict[str, int] = {}
    for trace in traces:
        for kind, count in trace.counts().items():
            counts[kind] = counts.get(kind, 0) + count
    print("\n-- trace stats --")
    print(
        f"seed suite: {len(traces)} trace(s), {total_events} events, "
        f"{total_bytes} packed bytes"
    )
    breakdown = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"  by kind: {breakdown}")
    stack = (FastTrackDetector, EraserDetector, DjitDetector, AdjacencyProbe)
    per_pass = [0.0] * len(stack)
    start = time.perf_counter()
    for trace in traces:
        timings: list[float] = []
        run_sweep([cls() for cls in stack], trace, timings=timings)
        for index, seconds in enumerate(timings):
            per_pass[index] += seconds
    total_seconds = time.perf_counter() - start
    rate = total_events / total_seconds if total_seconds > 0 else float("inf")
    print(
        f"  fused sweep ({'+'.join(cls.name for cls in stack)}): "
        f"{rate:,.0f} events/sec packed"
    )
    handler_seconds = sum(per_pass) or 1e-12
    shares = ", ".join(
        f"{cls.name}={seconds / handler_seconds * 100:.0f}%"
        for cls, seconds in zip(stack, per_pass)
    )
    print(f"  pass time share: {shares}")
    # Compressed view of the same suite: segment-plan size and the rows
    # the block-skipping sweep actually avoided decoding (trace/
    # compressed.py, DESIGN.md §13).
    compressed = [compress_trace(trace) for trace in traces]
    total_rows = sum(c.stats().total_rows for c in compressed)
    plan_rows = sum(c.stats().compressed_rows for c in compressed)
    blocks = sum(c.stats().repeat_blocks for c in compressed)
    ratio = (total_rows / plan_rows) if plan_rows else 1.0
    sweep_stats = SweepStats()
    start = time.perf_counter()
    for trace in compressed:
        run_sweep([cls() for cls in stack], trace, stats=sweep_stats)
    compressed_seconds = time.perf_counter() - start
    crate = (
        total_events / compressed_seconds
        if compressed_seconds > 0 else float("inf")
    )
    print(
        f"  compression: {total_rows} rows -> {plan_rows} plan rows "
        f"({ratio:.1f}x), {blocks} repeat block(s)"
    )
    print(
        f"  compressed sweep: {crate:,.0f} events/sec, "
        f"{sweep_stats.rows_skipped} row(s) skipped "
        f"({sweep_stats.blocks_summarized} block(s) summarized, "
        f"{sweep_stats.blocks_replayed} replayed)"
    )
    if not detections:
        return
    events = bytes_total = hits = misses = 0
    skipped = fuzz_blocks = 0
    for detection in detections:
        for fuzz in detection.fuzz_reports:
            events += fuzz.trace_events
            bytes_total += fuzz.packed_bytes
            hits += fuzz.memo_hits
            misses += fuzz.memo_misses
            skipped += fuzz.rows_skipped
            fuzz_blocks += fuzz.repeat_blocks
    runs = hits + misses
    rate = (hits / runs * 100) if runs else 0.0
    print(
        f"fuzz: {events} events, {bytes_total} packed bytes over "
        f"{runs} run(s); memo {hits} hit(s) / {misses} miss(es) "
        f"({rate:.1f}% hit rate); {fuzz_blocks} repeat block(s), "
        f"{skipped} row(s) skipped"
    )


# ----------------------------------------------------------------------
# JSON helpers.


def _summary_json(summary) -> dict:
    return {
        "class": summary.class_name,
        "method": summary.method,
        "test": summary.test_name,
        "ordinal": summary.ordinal,
        "accesses": [
            {
                "kind": a.kind,
                "field": f"{a.class_name}.{a.field_name}",
                "path": str(a.access_path) if a.access_path else None,
                "unprotected": a.unprotected,
                "writeable": a.writeable,
            }
            for a in summary.accesses
        ],
        "writeables": [
            {"lhs": str(w.lhs), "rhs": str(w.rhs), "via": w.via}
            for w in summary.writeables
        ],
    }


def _pair_json(pair, verdict=None) -> dict:
    data = {
        "field": f"{pair.field[0]}.{pair.field[1]}",
        "first": list(pair.first.method_id()),
        "second": list(pair.second.method_id()),
        "same_site": pair.same_site,
        "site_pairs": sorted(pair.site_pairs),
    }
    if verdict is not None:
        data["verdict"] = verdict.to_dict()
    return data


def _detection_json(target, report, detection) -> dict:
    return {
        "class": target,
        "pairs": report.pair_count,
        "pruned_pairs": report.pruned_pair_count,
        "tests": report.test_count,
        "pruned_tests": detection.pruned_tests,
        "detected": detection.detected,
        "reproduced": detection.reproduced,
        "harmful": detection.harmful,
        "benign": detection.benign,
        "manual_tp": detection.manual_tp,
        "manual_fp": detection.manual_fp,
        "races_per_test": detection.races_per_test(),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Narada (PLDI 2015 'Synthesizing Racy Tests') reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("subjects", help="list the paper subjects")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_subjects)

    p = sub.add_parser("analyze", help="print sequential-trace summaries")
    _add_target_args(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("pairs", help="print potential racy pairs")
    _add_target_args(p)
    p.set_defaults(func=cmd_pairs)

    p = sub.add_parser("synth", help="synthesize racy tests")
    _add_target_args(p)
    p.add_argument("--show", type=int, default=3, help="tests to render")
    p.add_argument("--all", action="store_true", help="render all tests")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("fuzz", help="synthesize + run the detector backend")
    _add_target_args(p)
    p.add_argument("--runs", type=int, default=6, help="random schedules/test")
    p.add_argument("--no-directed", action="store_true")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("chess", help="bounded systematic exploration")
    _add_target_args(p)
    p.add_argument("--bound", type=int, default=2, help="preemption bound")
    p.add_argument("--tests", type=int, default=3, help="tests to explore")
    p.add_argument("--max-schedules", type=int, default=2000)
    p.set_defaults(func=cmd_chess)

    p = sub.add_parser(
        "emit", help="emit synthesized tests as standalone MiniJ source"
    )
    _add_target_args(p)
    p.add_argument("--count", type=int, default=3, help="tests to emit")
    p.add_argument("--all", action="store_true")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.set_defaults(func=cmd_emit)

    p = sub.add_parser(
        "run",
        help="run a MiniJ file's tests under random schedules + detectors, "
        "or (--subjects) the fault-tolerant pipeline over paper subjects",
    )
    p.add_argument("file", nargs="?", help="MiniJ source file")
    p.add_argument("--test", help="run only this test")
    p.add_argument("--runs", type=int, default=6)
    p.add_argument(
        "--detectors",
        default="fasttrack,eraser",
        help="comma-separated analysis passes to sweep over each run "
        "(registered: see analysis/sweep.py)",
    )
    p.add_argument(
        "--subjects", metavar="KEYS",
        help="comma-separated subject keys (or 'all'): run the "
        "fault-tolerant pipeline instead of a MiniJ file",
    )
    _add_pipeline_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("deadlock", help="synthesize + confirm deadlock tests")
    _add_target_args(p)
    p.add_argument("--runs", type=int, default=6, help="random schedules/test")
    p.add_argument(
        "--all-classes", action="store_true",
        help="pair lock edges across every class, not just the target",
    )
    p.set_defaults(func=cmd_deadlock)

    p = sub.add_parser("contege", help="run the random baseline")
    _add_target_args(p)
    p.add_argument("--budget", type=int, default=500, help="max random tests")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_contege)

    p = sub.add_parser("tables", help="regenerate evaluation tables")
    p.add_argument("--detect", action="store_true", help="include Table 5")
    p.add_argument("--runs", type=int, default=4)
    _add_pipeline_args(p)
    p.set_defaults(func=cmd_tables)

    p = sub.add_parser(
        "corpus",
        help="generate and score the synthetic subject corpus",
    )
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)

    def _add_corpus_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--seed", type=int, default=0, help="corpus seed")
        sp.add_argument(
            "--count", type=int, default=200, metavar="N",
            help="subjects to generate (default: 200)",
        )
        sp.add_argument(
            "--templates", metavar="T1,T2",
            help="template pool (default: all; see repro.corpus.templates)",
        )
        sp.add_argument(
            "--min-templates", type=int, default=2, metavar="N",
            help="minimum templates per subject (default: 2)",
        )
        sp.add_argument(
            "--max-templates", type=int, default=4, metavar="N",
            help="maximum templates per subject (default: 4)",
        )
        sp.add_argument("--json", action="store_true", help="JSON output")

    g = corpus_sub.add_parser(
        "generate",
        help="emit generated subjects with known-answer oracles",
    )
    _add_corpus_args(g)
    g.add_argument(
        "--out", metavar="DIR",
        help="write <key>.minij + <key>.oracle.json files here",
    )
    g.set_defaults(func=cmd_corpus_generate)

    r = corpus_sub.add_parser(
        "run",
        help="pipeline the generated corpus; score recall/precision "
        "against the oracles",
    )
    _add_corpus_args(r)
    r.add_argument(
        "--runs", type=int, default=2, help="random schedules/test"
    )
    r.add_argument(
        "--batch-size", type=int, default=25, metavar="N",
        help="orchestrator wave size (bounds memory; results identical)",
    )
    _add_pipeline_args(r)
    r.set_defaults(func=cmd_corpus_run)

    def _add_endpoint_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--socket", metavar="PATH",
            help="unix socket path (default: $REPRO_DAEMON_SOCKET or "
                 "<cache root>/daemon.sock)",
        )
        sp.add_argument(
            "--tcp", metavar="HOST:PORT",
            help="serve/connect over TCP instead of a unix socket",
        )

    p = sub.add_parser(
        "serve",
        help="run the warm-pool pipeline daemon on a unix/TCP socket",
    )
    _add_endpoint_args(p)
    _add_pipeline_args(p)
    p.add_argument(
        "--max-queue", type=int, default=8, metavar="N",
        help="admission bound: pipeline requests active-or-queued beyond "
             "this are shed with a structured `busy` frame (default: 8)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline; queued requests past it get "
             "`deadline_exceeded`, running ones are cancelled at the "
             "next unit boundary (default: none)",
    )
    p.add_argument(
        "--recv-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-frame recv/send deadline once a frame has started; "
             "slow-loris connections are torn down past it (default: 30)",
    )
    p.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="RSS budget (daemon + workers); above it new work is shed "
             "with `overloaded` and the pool is recycled (default: none)",
    )
    p.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="artifact-cache byte budget; LRU entries are evicted past "
             "it (default: unbounded)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="send one request to a running `repro serve` daemon",
    )
    _add_endpoint_args(p)
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="socket timeout (default: block until the daemon answers)",
    )
    p.add_argument(
        "--connect-retries", type=int, default=10, metavar="N",
        help="connection attempts before giving up (default: 10, "
             "covering a daemon that is still binding)",
    )
    client_sub = p.add_subparsers(dest="client_command", required=True)

    def _add_json(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--json", action="store_true", help="raw JSON response"
        )

    cp = client_sub.add_parser("ping", help="daemon liveness + uptime")
    cs = client_sub.add_parser("stats", help="cache/pool/request counters")
    csd = client_sub.add_parser("shutdown", help="ask the daemon to drain")
    for leaf in (cp, cs, csd):
        _add_json(leaf)
        leaf.set_defaults(func=cmd_client)

    for op, title in (
        ("detect", "synthesis + detection for subjects or a MiniJ file"),
        ("synthesize", "synthesis only for subjects or a MiniJ file"),
    ):
        cd = client_sub.add_parser(op, help=title)
        cd.add_argument("file", nargs="?", help="MiniJ source file")
        cd.add_argument(
            "--subjects", metavar="KEYS",
            help="comma-separated built-in subject keys (or 'all')",
        )
        cd.add_argument(
            "--class", dest="target_class", help="class under analysis"
        )
        cd.add_argument(
            "--runs", type=int, default=6, help="random schedules/test"
        )
        cd.add_argument("--vm-seed", type=int, default=None)
        cd.add_argument(
            "--deadline", type=float, default=None, metavar="SECONDS",
            help="per-request deadline enforced by the daemon",
        )
        _add_json(cd)
        cd.set_defaults(func=cmd_client)

    cc = client_sub.add_parser(
        "corpus", help="generate + pipeline a corpus through the daemon"
    )
    cc.add_argument("--seed", type=int, default=0)
    cc.add_argument("--count", type=int, default=20, metavar="N")
    cc.add_argument("--runs", type=int, default=2)
    cc.add_argument("--templates", metavar="T1,T2")
    cc.add_argument("--batch-size", type=int, default=25, metavar="N")
    cc.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline enforced by the daemon",
    )
    _add_json(cc)
    cc.set_defaults(func=cmd_client)

    p = sub.add_parser(
        "cache",
        help="inspect and trim the persistent artifact cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    def _add_cache_dir(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--cache-dir", metavar="DIR",
            help="artifact cache root (default: $REPRO_CACHE_DIR or "
                 "~/.cache/repro-narada)",
        )

    chs = cache_sub.add_parser(
        "stats", help="entry count, byte total, quarantine load"
    )
    _add_cache_dir(chs)
    chs.add_argument("--json", action="store_true", help="JSON output")
    chs.set_defaults(func=cmd_cache_stats)

    che = cache_sub.add_parser(
        "evict", help="evict LRU entries to a byte budget; GC quarantine"
    )
    _add_cache_dir(che)
    che.add_argument(
        "--max-bytes", type=int, required=True, metavar="BYTES",
        help="target byte budget for live entries",
    )
    che.add_argument(
        "--quarantine-max-entries", type=int, default=512, metavar="N",
        help="quarantined entries to keep (default: 512)",
    )
    che.add_argument(
        "--quarantine-max-age-s", type=float, default=7 * 24 * 3600.0,
        metavar="SECONDS",
        help="max quarantined-entry age (default: 7 days)",
    )
    che.set_defaults(func=cmd_cache_evict)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro synth | head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
