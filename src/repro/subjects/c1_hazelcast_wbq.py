"""C1 — hazelcast 3.3.2 ``SynchronizedWriteBehindQueue``.

The paper's motivating example (§2, Figs. 2-5).  The wrapper is
advertised as thread safe, but its constructor assigns ``this`` as the
mutex instead of the wrapped queue.  Two wrappers around the same
``CoalescedWriteBehindQueue`` therefore guard the shared inner state
with *different* locks — every delegated operation is an unprotected
access to the inner queue's fields.

The synthesized Figure-3 test wraps one coalesced queue twice via the
``WriteBehindQueues`` factory and calls ``removeFirst`` from two
threads.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
interface WriteBehindQueue {
  void addFirst(DelayedEntry e);
  void addLast(DelayedEntry e);
  DelayedEntry removeFirst();
  DelayedEntry removeLast();
  DelayedEntry getFirst();
  bool offer(DelayedEntry e);
  DelayedEntry poll();
  DelayedEntry peek();
  bool contains(DelayedEntry e);
  void removeAll();
  void clear();
  int size();
  bool isEmpty();
}

class DelayedEntry {
  Opaque value;
  int delayTime;
  DelayedEntry() { this.delayTime = 0; }
}

/* Factory methods for write behind queues (WriteBehindQueues.java). */
class WriteBehindQueues {
  WriteBehindQueue createSafeWriteBehindQueue(WriteBehindQueue q) {
    return new SynchronizedWriteBehindQueue(q);
  }
  WriteBehindQueue createCoalescedWriteBehindQueue() {
    return new CoalescedWriteBehindQueue();
  }
}

/* Unsynchronized backing queue (CoalescedWriteBehindQueue.java). */
class CoalescedWriteBehindQueue implements WriteBehindQueue {
  RefArray items;
  int count;
  CoalescedWriteBehindQueue() {
    this.items = new RefArray(16);
    this.count = 0;
  }
  void addFirst(DelayedEntry e) {
    int i = this.count;
    while (i > 0) {
      this.items.set(i, this.items.get(i - 1));
      i = i - 1;
    }
    this.items.set(0, e);
    this.count = this.count + 1;
  }
  void addLast(DelayedEntry e) {
    this.items.set(this.count, e);
    this.count = this.count + 1;
  }
  DelayedEntry removeFirst() {
    if (this.count == 0) { return null; }
    DelayedEntry head = this.items.get(0);
    int i = 1;
    while (i < this.count) {
      this.items.set(i - 1, this.items.get(i));
      i = i + 1;
    }
    this.count = this.count - 1;
    this.items.set(this.count, null);
    return head;
  }
  DelayedEntry removeLast() {
    if (this.count == 0) { return null; }
    this.count = this.count - 1;
    DelayedEntry tail = this.items.get(this.count);
    this.items.set(this.count, null);
    return tail;
  }
  DelayedEntry getFirst() {
    if (this.count == 0) { return null; }
    return this.items.get(0);
  }
  bool offer(DelayedEntry e) {
    if (this.count >= this.items.length) { return false; }
    this.addLast(e);
    return true;
  }
  DelayedEntry poll() { return this.removeFirst(); }
  DelayedEntry peek() { return this.getFirst(); }
  bool contains(DelayedEntry e) {
    int i = 0;
    while (i < this.count) {
      if (this.items.get(i) == e) { return true; }
      i = i + 1;
    }
    return false;
  }
  void removeAll() {
    while (this.count > 0) { this.removeFirst(); }
  }
  void clear() {
    int i = 0;
    while (i < this.count) {
      this.items.set(i, null);
      i = i + 1;
    }
    this.count = 0;
  }
  int size() { return this.count; }
  bool isEmpty() { return this.count == 0; }
}

/* Thread safe write behind queue (SynchronizedWriteBehindQueue.java).
   BUG: the mutex is `this` instead of the wrapped queue (line 38 of
   the original), so two wrappers of one queue race on its state. */
class SynchronizedWriteBehindQueue implements WriteBehindQueue {
  WriteBehindQueue queue;
  Object mutex;
  SynchronizedWriteBehindQueue(WriteBehindQueue q) {
    this.queue = q;
    this.mutex = this;
  }
  void addFirst(DelayedEntry e) {
    synchronized (this.mutex) { this.queue.addFirst(e); }
  }
  void addLast(DelayedEntry e) {
    synchronized (this.mutex) { this.queue.addLast(e); }
  }
  DelayedEntry removeFirst() {
    synchronized (this.mutex) { return this.queue.removeFirst(); }
  }
  DelayedEntry removeLast() {
    synchronized (this.mutex) { return this.queue.removeLast(); }
  }
  DelayedEntry getFirst() {
    synchronized (this.mutex) { return this.queue.getFirst(); }
  }
  bool offer(DelayedEntry e) {
    synchronized (this.mutex) { return this.queue.offer(e); }
  }
  DelayedEntry poll() {
    synchronized (this.mutex) { return this.queue.poll(); }
  }
  DelayedEntry peek() {
    synchronized (this.mutex) { return this.queue.peek(); }
  }
  bool contains(DelayedEntry e) {
    synchronized (this.mutex) { return this.queue.contains(e); }
  }
  void removeAll() {
    synchronized (this.mutex) { this.queue.removeAll(); }
  }
  void clear() {
    synchronized (this.mutex) { this.queue.clear(); }
  }
  int size() {
    synchronized (this.mutex) { return this.queue.size(); }
  }
  bool isEmpty() {
    synchronized (this.mutex) { return this.queue.isEmpty(); }
  }
}

/* Seed suite: every SynchronizedWriteBehindQueue method exactly once
   (§5: "each method in the class is invoked exactly once"). */
test SeedC1 {
  WriteBehindQueues factory = new WriteBehindQueues();
  WriteBehindQueue cwbq = factory.createCoalescedWriteBehindQueue();
  WriteBehindQueue swbq = factory.createSafeWriteBehindQueue(cwbq);
  DelayedEntry e1 = new DelayedEntry();
  DelayedEntry e2 = new DelayedEntry();
  DelayedEntry first = swbq.getFirst();
  DelayedEntry peeked = swbq.peek();
  bool has = swbq.contains(e2);
  int n = swbq.size();
  bool empty = swbq.isEmpty();
  DelayedEntry r1 = swbq.removeFirst();
  DelayedEntry r2 = swbq.removeLast();
  DelayedEntry polled = swbq.poll();
  swbq.removeAll();
  swbq.clear();
  swbq.addFirst(e1);
  swbq.addLast(e2);
  bool offered = swbq.offer(new DelayedEntry());
}
"""

C1 = register(
    SubjectInfo(
        key="C1",
        benchmark="hazelcast",
        version="3.3.2",
        class_name="SynchronizedWriteBehindQueue",
        description=(
            "Write-behind queue wrapper whose mutex is the wrapper itself "
            "instead of the wrapped queue; wrappers sharing a backing queue "
            "race on all of its state."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=14,
            loc=104,
            race_pairs=65,
            tests=15,
            time_seconds=12.2,
            races_detected=76,
            harmful=58,
            benign=2,
            manual_tp=12,
            manual_fp=4,
        ),
    )
)
