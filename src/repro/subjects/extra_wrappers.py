"""The other openjdk synchronized wrappers (paper §5, footnote 5).

The paper analyzed ``SynchronizedCollection`` and notes: "We did not
list eight other classes in openjdk because the races were very similar
to the races in SynchronizedCollection."  This module implements three
of that family — ``SynchronizedList``, ``SynchronizedMap`` and
``SynchronizedSet`` — as *extension subjects*: they are not part of the
C1–C9 tables, but demonstrate that the pipeline generalizes across the
whole wrapper family without per-class tuning
(``tests/subjects/test_extra_wrappers.py``).

All three share the C2 defect: the factory can wrap one backing
container twice, and each wrapper guards it with its own monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ClassTable, load

SYNCHRONIZED_LIST = """
class ArrayList {
  RefArray elements;
  int count;
  ArrayList() { this.elements = new RefArray(16); this.count = 0; }
  void add(Object e) {
    if (this.count < this.elements.length) {
      this.elements.set(this.count, e);
      this.count = this.count + 1;
    }
  }
  Object get(int i) {
    if (i < 0 || i >= this.count) { return null; }
    return this.elements.get(i);
  }
  Object set(int i, Object e) {
    Object old = this.elements.get(i);
    this.elements.set(i, e);
    return old;
  }
  Object removeAt(int i) {
    Object old = this.elements.get(i);
    int j = i + 1;
    while (j < this.count) {
      this.elements.set(j - 1, this.elements.get(j));
      j = j + 1;
    }
    this.count = this.count - 1;
    this.elements.set(this.count, null);
    return old;
  }
  int size() { return this.count; }
  int indexOf(Object e) {
    int i = 0;
    while (i < this.count) {
      if (this.elements.get(i) == e) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
  void clear() { this.count = 0; }
}

class SynchronizedList {
  ArrayList list;
  Object mutex;
  SynchronizedList(ArrayList backing) {
    this.list = backing;
    this.mutex = this;
  }
  void add(Object e) { synchronized (this.mutex) { this.list.add(e); } }
  Object get(int i) { synchronized (this.mutex) { return this.list.get(i); } }
  Object set(int i, Object e) {
    synchronized (this.mutex) { return this.list.set(i, e); }
  }
  Object removeAt(int i) {
    synchronized (this.mutex) { return this.list.removeAt(i); }
  }
  int size() { synchronized (this.mutex) { return this.list.size(); } }
  int indexOf(Object e) {
    synchronized (this.mutex) { return this.list.indexOf(e); }
  }
  void clear() { synchronized (this.mutex) { this.list.clear(); } }
}

class ListFactory {
  SynchronizedList synchronizedList(ArrayList backing) {
    return new SynchronizedList(backing);
  }
}

test SeedList {
  ListFactory factory = new ListFactory();
  ArrayList backing = new ArrayList();
  SynchronizedList view = factory.synchronizedList(backing);
  Opaque a = rand();
  int n = view.size();
  int at = view.indexOf(a);
  Object g = view.get(0);
  view.clear();
  view.add(a);
  Object s = view.set(0, a);
  Object r = view.removeAt(0);
}
"""

SYNCHRONIZED_MAP = """
class HashMap {
  RefArray keys;
  RefArray values;
  int count;
  HashMap() {
    this.keys = new RefArray(16);
    this.values = new RefArray(16);
    this.count = 0;
  }
  Object put(Object key, Object value) {
    int i = this.indexOfKey(key);
    if (i >= 0) {
      Object old = this.values.get(i);
      this.values.set(i, value);
      return old;
    }
    if (this.count < this.keys.length) {
      this.keys.set(this.count, key);
      this.values.set(this.count, value);
      this.count = this.count + 1;
    }
    return null;
  }
  Object get(Object key) {
    int i = this.indexOfKey(key);
    if (i < 0) { return null; }
    return this.values.get(i);
  }
  Object removeKey(Object key) {
    int i = this.indexOfKey(key);
    if (i < 0) { return null; }
    Object old = this.values.get(i);
    this.count = this.count - 1;
    this.keys.set(i, this.keys.get(this.count));
    this.values.set(i, this.values.get(this.count));
    this.keys.set(this.count, null);
    this.values.set(this.count, null);
    return old;
  }
  bool containsKey(Object key) { return this.indexOfKey(key) >= 0; }
  int indexOfKey(Object key) {
    int i = 0;
    while (i < this.count) {
      if (this.keys.get(i) == key) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
  int size() { return this.count; }
  void clear() { this.count = 0; }
}

class SynchronizedMap {
  HashMap m;
  Object mutex;
  SynchronizedMap(HashMap backing) {
    this.m = backing;
    this.mutex = this;
  }
  Object put(Object k, Object v) {
    synchronized (this.mutex) { return this.m.put(k, v); }
  }
  Object get(Object k) { synchronized (this.mutex) { return this.m.get(k); } }
  Object removeKey(Object k) {
    synchronized (this.mutex) { return this.m.removeKey(k); }
  }
  bool containsKey(Object k) {
    synchronized (this.mutex) { return this.m.containsKey(k); }
  }
  int size() { synchronized (this.mutex) { return this.m.size(); } }
  void clear() { synchronized (this.mutex) { this.m.clear(); } }
}

class MapFactory {
  SynchronizedMap synchronizedMap(HashMap backing) {
    return new SynchronizedMap(backing);
  }
}

test SeedMap {
  MapFactory factory = new MapFactory();
  HashMap backing = new HashMap();
  SynchronizedMap view = factory.synchronizedMap(backing);
  Opaque k = rand();
  Opaque v = rand();
  int n = view.size();
  bool has = view.containsKey(k);
  Object g = view.get(k);
  view.clear();
  Object p = view.put(k, v);
  Object r = view.removeKey(k);
}
"""

SYNCHRONIZED_SET = """
class HashSet {
  RefArray elements;
  int count;
  HashSet() { this.elements = new RefArray(16); this.count = 0; }
  bool add(Object e) {
    if (this.contains(e)) { return false; }
    if (this.count >= this.elements.length) { return false; }
    this.elements.set(this.count, e);
    this.count = this.count + 1;
    return true;
  }
  bool remove(Object e) {
    int i = 0;
    while (i < this.count) {
      if (this.elements.get(i) == e) {
        this.count = this.count - 1;
        this.elements.set(i, this.elements.get(this.count));
        this.elements.set(this.count, null);
        return true;
      }
      i = i + 1;
    }
    return false;
  }
  bool contains(Object e) {
    int i = 0;
    while (i < this.count) {
      if (this.elements.get(i) == e) { return true; }
      i = i + 1;
    }
    return false;
  }
  int size() { return this.count; }
  void clear() { this.count = 0; }
}

class SynchronizedSet {
  HashSet s;
  Object mutex;
  SynchronizedSet(HashSet backing) {
    this.s = backing;
    this.mutex = this;
  }
  bool add(Object e) { synchronized (this.mutex) { return this.s.add(e); } }
  bool remove(Object e) {
    synchronized (this.mutex) { return this.s.remove(e); }
  }
  bool contains(Object e) {
    synchronized (this.mutex) { return this.s.contains(e); }
  }
  int size() { synchronized (this.mutex) { return this.s.size(); } }
  void clear() { synchronized (this.mutex) { this.s.clear(); } }
}

class SetFactory {
  SynchronizedSet synchronizedSet(HashSet backing) {
    return new SynchronizedSet(backing);
  }
}

test SeedSet {
  SetFactory factory = new SetFactory();
  HashSet backing = new HashSet();
  SynchronizedSet view = factory.synchronizedSet(backing);
  Opaque e = rand();
  int n = view.size();
  bool has = view.contains(e);
  view.clear();
  bool added = view.add(e);
  bool removed = view.remove(e);
}
"""


@dataclass(frozen=True)
class ExtraWrapper:
    """One extension subject from the openjdk wrapper family."""

    name: str
    class_name: str
    backing_class: str
    source: str

    def load(self) -> ClassTable:
        return load(self.source)


EXTRA_WRAPPERS = [
    ExtraWrapper(
        name="SynchronizedList",
        class_name="SynchronizedList",
        backing_class="ArrayList",
        source=SYNCHRONIZED_LIST,
    ),
    ExtraWrapper(
        name="SynchronizedMap",
        class_name="SynchronizedMap",
        backing_class="HashMap",
        source=SYNCHRONIZED_MAP,
    ),
    ExtraWrapper(
        name="SynchronizedSet",
        class_name="SynchronizedSet",
        backing_class="HashSet",
        source=SYNCHRONIZED_SET,
    ),
]
