"""C9 — GNU classpath 0.99 ``CharArrayReader``.

Nearly everything synchronizes on the reader's ``lock`` object — except
``close`` (which nulls the buffer) and ``ready`` (which reads position
state).  The paper reports exactly 2 racing pairs / 2 harmful races,
the smallest subject of the evaluation.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class CharArrayReader {
  IntArray buf;
  int pos;
  int markedPos;
  int count;
  Object lock;
  CharArrayReader(IntArray buf, int offset, int length) {
    this.buf = buf;
    this.pos = offset;
    this.markedPos = offset;
    this.count = offset + length;
    this.lock = this;
  }
  int read() {
    synchronized (this.lock) {
      if (this.pos >= this.count) { return 0 - 1; }
      int c = this.buf.get(this.pos);
      this.pos = this.pos + 1;
      return c;
    }
  }
  int readInto(IntArray target, int off, int len) {
    synchronized (this.lock) {
      int copied = 0;
      while (copied < len && this.pos < this.count) {
        target.set(off + copied, this.buf.get(this.pos));
        this.pos = this.pos + 1;
        copied = copied + 1;
      }
      return copied;
    }
  }
  int skip(int n) {
    synchronized (this.lock) {
      int remaining = this.count - this.pos;
      int skipped = n;
      if (skipped > remaining) { skipped = remaining; }
      this.pos = this.pos + skipped;
      return skipped;
    }
  }
  void mark(int readAheadLimit) {
    synchronized (this.lock) { this.markedPos = this.pos; }
  }
  void reset() {
    synchronized (this.lock) { this.pos = this.markedPos; }
  }
  bool markSupported() { return true; }
  /* NOT synchronized: races with read()'s position state. */
  bool ready() { return this.pos < this.count; }
  /* NOT synchronized in classpath: nulls the buffer under readers. */
  void close() {
    this.buf = null;
    this.pos = 0;
    this.count = 0;
  }
}

test SeedC9 {
  IntArray data = new IntArray(8);
  data.set(0, 104);
  data.set(1, 105);
  CharArrayReader r = new CharArrayReader(data, 0, 2);
  int c1 = r.read();
  IntArray sink = new IntArray(4);
  int copied = r.readInto(sink, 0, 1);
  int skipped = r.skip(1);
  r.mark(0);
  r.reset();
  bool ms = r.markSupported();
  bool rd = r.ready();
  r.close();
}
"""

C9 = register(
    SubjectInfo(
        key="C9",
        benchmark="classpath",
        version="0.99",
        class_name="CharArrayReader",
        description=(
            "Reader whose close() and ready() touch position state without "
            "the lock every read operation holds."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=8,
            loc=102,
            race_pairs=2,
            tests=2,
            time_seconds=1.9,
            races_detected=2,
            harmful=2,
            benign=0,
            manual_tp=0,
            manual_fp=0,
        ),
    )
)
