"""C2 — openjdk 1.7 ``Collections.SynchronizedCollection``.

Same defect family as C1: the synchronized wrapper guards the backing
collection with its own monitor (``mutex = this``), so two wrappers
created over one backing collection — a situation the public
``synchronizedCollection`` factory makes easy — do not exclude each
other.  The paper analyzed this class plus eight similar openjdk
wrapper classes whose races it reports as "very similar" (§5, fn. 5).
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
interface Collection {
  bool add(Object e);
  bool remove(Object e);
  bool contains(Object e);
  int size();
  bool isEmpty();
  void clear();
  Object get(int i);
  Object set(int i, Object e);
  int indexOf(Object e);
  Object first();
  Object last();
}

/* A plain, unsynchronized ArrayList-like collection. */
class ArrayCollection implements Collection {
  RefArray elements;
  int count;
  int modCount;
  ArrayCollection() {
    this.elements = new RefArray(16);
    this.count = 0;
    this.modCount = 0;
  }
  bool add(Object e) {
    if (this.count >= this.elements.length) { return false; }
    this.elements.set(this.count, e);
    this.count = this.count + 1;
    this.modCount = this.modCount + 1;
    return true;
  }
  bool remove(Object e) {
    int i = this.indexOf(e);
    if (i < 0) { return false; }
    int j = i + 1;
    while (j < this.count) {
      this.elements.set(j - 1, this.elements.get(j));
      j = j + 1;
    }
    this.count = this.count - 1;
    this.elements.set(this.count, null);
    this.modCount = this.modCount + 1;
    return true;
  }
  bool contains(Object e) { return this.indexOf(e) >= 0; }
  int size() { return this.count; }
  bool isEmpty() { return this.count == 0; }
  void clear() {
    int i = 0;
    while (i < this.count) {
      this.elements.set(i, null);
      i = i + 1;
    }
    this.count = 0;
    this.modCount = this.modCount + 1;
  }
  Object get(int i) {
    if (i < 0) { return null; }
    if (i >= this.count) { return null; }
    return this.elements.get(i);
  }
  Object set(int i, Object e) {
    Object old = this.elements.get(i);
    this.elements.set(i, e);
    this.modCount = this.modCount + 1;
    return old;
  }
  int indexOf(Object e) {
    int i = 0;
    while (i < this.count) {
      if (this.elements.get(i) == e) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
  Object first() { return this.get(0); }
  Object last() { return this.get(this.count - 1); }
}

/* java.util.Collections$SynchronizedCollection.  BUG: mutex = this, so
   wrappers sharing one backing collection use different locks. */
class SynchronizedCollection implements Collection {
  Collection c;
  Object mutex;
  SynchronizedCollection(Collection backing) {
    this.c = backing;
    this.mutex = this;
  }
  bool add(Object e) { synchronized (this.mutex) { return this.c.add(e); } }
  bool remove(Object e) { synchronized (this.mutex) { return this.c.remove(e); } }
  bool contains(Object e) {
    synchronized (this.mutex) { return this.c.contains(e); }
  }
  int size() { synchronized (this.mutex) { return this.c.size(); } }
  bool isEmpty() { synchronized (this.mutex) { return this.c.isEmpty(); } }
  void clear() { synchronized (this.mutex) { this.c.clear(); } }
  Object get(int i) { synchronized (this.mutex) { return this.c.get(i); } }
  Object set(int i, Object e) {
    synchronized (this.mutex) { return this.c.set(i, e); }
  }
  int indexOf(Object e) { synchronized (this.mutex) { return this.c.indexOf(e); } }
  Object first() { synchronized (this.mutex) { return this.c.first(); } }
  Object last() { synchronized (this.mutex) { return this.c.last(); } }
  bool addAll(Collection other) {
    synchronized (this.mutex) {
      int i = 0;
      int n = other.size();
      bool changed = false;
      while (i < n) {
        changed = this.c.add(other.get(i)) || changed;
        i = i + 1;
      }
      return changed;
    }
  }
  bool removeAll(Collection other) {
    synchronized (this.mutex) {
      int i = 0;
      int n = other.size();
      bool changed = false;
      while (i < n) {
        changed = this.c.remove(other.get(i)) || changed;
        i = i + 1;
      }
      return changed;
    }
  }
  bool containsAll(Collection other) {
    synchronized (this.mutex) {
      int i = 0;
      int n = other.size();
      while (i < n) {
        if (!this.c.contains(other.get(i))) { return false; }
        i = i + 1;
      }
      return true;
    }
  }
  RefArray toArray() {
    synchronized (this.mutex) {
      int n = this.c.size();
      RefArray out = new RefArray(n);
      int i = 0;
      while (i < n) {
        out.set(i, this.c.get(i));
        i = i + 1;
      }
      return out;
    }
  }
  Object poll() {
    synchronized (this.mutex) {
      Object head = this.c.first();
      if (head != null) { this.c.remove(head); }
      return head;
    }
  }
  bool offer(Object e) { synchronized (this.mutex) { return this.c.add(e); } }
  Object peek() { synchronized (this.mutex) { return this.c.first(); } }
  Collection backing() { return this.c; }
}

class Collections {
  Collection synchronizedCollection(Collection c) {
    return new SynchronizedCollection(c);
  }
}

test SeedC2 {
  Collections util = new Collections();
  Collection backing = new ArrayCollection();
  Collection view = util.synchronizedCollection(backing);
  Opaque a = rand();
  Opaque b = rand();
  bool e1 = view.isEmpty();
  int n0 = view.size();
  bool has = view.contains(a);
  int at = view.indexOf(a);
  Object f0 = view.first();
  Object l0 = view.last();
  Object g0 = view.get(0);
  Object pk = view.peek();
  Object pl = view.poll();
  view.clear();
  bool r1 = view.remove(a);
  bool a1 = view.add(a);
  bool o1 = view.offer(b);
  Object s1 = view.set(0, b);
  Collection other = new ArrayCollection();
  other.add(a);
  SynchronizedCollection sview = new SynchronizedCollection(backing);
  bool aa = sview.addAll(other);
  bool ca = sview.containsAll(other);
  bool ra = sview.removeAll(other);
  RefArray arr = sview.toArray();
  Collection back = sview.backing();
}
"""

C2 = register(
    SubjectInfo(
        key="C2",
        benchmark="openjdk",
        version="1.7",
        class_name="SynchronizedCollection",
        description=(
            "Collections.synchronizedCollection wrapper; two wrappers over "
            "one backing collection synchronize on different mutexes."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=19,
            loc=85,
            race_pairs=131,
            tests=40,
            time_seconds=13.5,
            races_detected=84,
            harmful=65,
            benign=1,
            manual_tp=18,
            manual_fp=0,
        ),
    )
)
