"""C7 — hedc ``PooledExecutorWithInvalidate``.

A small task-pool wrapper from the hedc web-crawler.  Task submission
and execution are guarded by the pool's monitor, but the *invalidate*
path — the method the class is named for — flips the ``invalid`` flag
and drains the queue without holding it.  The paper reports exactly 4
racing pairs and 4 harmful races here.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class Task {
  int id;
  bool done;
  Task next;
  Task(int id) {
    this.id = id;
    this.done = false;
  }
  void run() { this.done = true; }
}

class PooledExecutorWithInvalidate {
  Task head;
  int queued;
  int executed;
  bool invalid;
  int maximumPoolSize;
  PooledExecutorWithInvalidate(int maximumPoolSize) {
    this.maximumPoolSize = maximumPoolSize;
    this.queued = 0;
    this.executed = 0;
    this.invalid = false;
  }
  synchronized bool execute(Task t) {
    if (this.invalid) { return false; }
    if (this.queued >= this.maximumPoolSize) { return false; }
    t.next = this.head;
    this.head = t;
    this.queued = this.queued + 1;
    return true;
  }
  synchronized Task take() {
    Task t = this.head;
    if (t == null) { return null; }
    this.head = t.next;
    this.queued = this.queued - 1;
    return t;
  }
  synchronized void runOne() {
    Task t = this.take();
    if (t != null) {
      t.run();
      this.executed = this.executed + 1;
    }
  }
  synchronized int queuedCount() { return this.queued; }
  synchronized int executedCount() { return this.executed; }
  /* NOT synchronized: the defective invalidate path. */
  void invalidate() {
    this.invalid = true;
    this.head = null;
    this.queued = 0;
  }
  bool isInvalid() { return this.invalid; }
  int poolSize() { return this.maximumPoolSize; }
  void revalidate() { this.invalid = false; }
}

test SeedC7 {
  PooledExecutorWithInvalidate pool = new PooledExecutorWithInvalidate(4);
  Task t1 = new Task(1);
  Task t2 = new Task(2);
  bool ok1 = pool.execute(t1);
  bool ok2 = pool.execute(t2);
  Task taken = pool.take();
  pool.runOne();
  int q = pool.queuedCount();
  int e = pool.executedCount();
  bool inv = pool.isInvalid();
  int ps = pool.poolSize();
  pool.invalidate();
  pool.revalidate();
}
"""

C7 = register(
    SubjectInfo(
        key="C7",
        benchmark="hedc",
        version="NA",
        class_name="PooledExecutorWithInvalidate",
        description=(
            "Task pool whose invalidate() drains shared state without the "
            "monitor every other mutator holds."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=9,
            loc=191,
            race_pairs=4,
            tests=4,
            time_seconds=3.6,
            races_detected=4,
            harmful=4,
            benign=0,
            manual_tp=0,
            manual_fp=0,
        ),
    )
)
