"""The nine subject libraries of the paper's evaluation (Table 3)."""

from repro.subjects.base import (
    PaperNumbers,
    SubjectInfo,
    all_subjects,
    get_subject,
    register,
    unregister,
)

__all__ = [
    "PaperNumbers",
    "SubjectInfo",
    "all_subjects",
    "get_subject",
    "register",
    "unregister",
]
