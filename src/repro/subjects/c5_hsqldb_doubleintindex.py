"""C5 — hsqldb 2.3.2 ``DoubleIntIndex``.

A sorted pair-of-int-arrays index with *no synchronization at all*:
every access to ``keys``/``values``/``count``/``sorted`` is unprotected,
producing the largest racing-pair count of the paper's evaluation (136).
Because nothing is locked, receiver-shared tests race immediately; this
is also one of the two classes where ConTeGe's random search managed to
find violations (concurrent adds overrun the arrays and crash).
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class DoubleIntIndex {
  IntArray keys;
  IntArray values;
  int count;
  bool sorted;
  int capacity;
  DoubleIntIndex(int capacity) {
    this.keys = new IntArray(capacity);
    this.values = new IntArray(capacity);
    this.capacity = capacity;
    this.count = 0;
    this.sorted = true;
  }
  bool addUnsorted(int key, int value) {
    if (this.count == this.capacity) { return false; }
    if (this.sorted && this.count != 0) {
      if (key < this.keys.get(this.count - 1)) { this.sorted = false; }
    }
    this.keys.set(this.count, key);
    this.values.set(this.count, value);
    this.count = this.count + 1;
    return true;
  }
  bool addSorted(int key, int value) {
    if (this.count == this.capacity) { return false; }
    if (this.count != 0 && key < this.keys.get(this.count - 1)) { return false; }
    this.keys.set(this.count, key);
    this.values.set(this.count, value);
    this.count = this.count + 1;
    return true;
  }
  bool addUnique(int key, int value) {
    if (this.findFirstEqualKeyIndex(key) >= 0) { return false; }
    return this.addUnsorted(key, value);
  }
  int getKey(int i) { return this.keys.get(i); }
  int getValue(int i) { return this.values.get(i); }
  void setKey(int i, int key) {
    this.keys.set(i, key);
    this.sorted = false;
  }
  void setValue(int i, int value) { this.values.set(i, value); }
  int size() { return this.count; }
  void setSize(int newSize) { this.count = newSize; }
  int capacityOf() { return this.capacity; }
  bool isEmpty() { return this.count == 0; }
  bool isFull() { return this.count == this.capacity; }
  bool isSorted() { return this.sorted; }
  void clear() {
    this.count = 0;
    this.sorted = true;
  }
  void removeLast() {
    if (this.count > 0) { this.count = this.count - 1; }
  }
  void remove(int i) {
    int j = i + 1;
    while (j < this.count) {
      this.keys.set(j - 1, this.keys.get(j));
      this.values.set(j - 1, this.values.get(j));
      j = j + 1;
    }
    this.count = this.count - 1;
  }
  int findFirstEqualKeyIndex(int key) {
    this.fastQuickSort();
    int i = 0;
    while (i < this.count) {
      if (this.keys.get(i) == key) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
  int findFirstGreaterEqualKeyIndex(int key) {
    this.fastQuickSort();
    int i = 0;
    while (i < this.count) {
      if (this.keys.get(i) >= key) { return i; }
      i = i + 1;
    }
    return 0 - 1;
  }
  int lookup(int key) {
    int i = this.findFirstEqualKeyIndex(key);
    if (i < 0) { return 0 - 1; }
    return this.values.get(i);
  }
  int lookupFirstGreaterEqual(int key) {
    int i = this.findFirstGreaterEqualKeyIndex(key);
    if (i < 0) { return 0 - 1; }
    return this.values.get(i);
  }
  void fastQuickSort() {
    if (this.sorted) { return; }
    int n = this.count;
    int i = 0;
    while (i < n) {
      int j = i + 1;
      while (j < n) {
        if (this.keys.get(j) < this.keys.get(i)) { this.swap(i, j); }
        j = j + 1;
      }
      i = i + 1;
    }
    this.sorted = true;
  }
  void swap(int i, int j) {
    int tk = this.keys.get(i);
    int tv = this.values.get(i);
    this.keys.set(i, this.keys.get(j));
    this.values.set(i, this.values.get(j));
    this.keys.set(j, tk);
    this.values.set(j, tv);
  }
  int keyOfLast() {
    if (this.count == 0) { return 0 - 1; }
    return this.keys.get(this.count - 1);
  }
  int valueOfLast() {
    if (this.count == 0) { return 0 - 1; }
    return this.values.get(this.count - 1);
  }
  int sumKeys() {
    int total = 0;
    int i = 0;
    while (i < this.count) {
      total = total + this.keys.get(i);
      i = i + 1;
    }
    return total;
  }
  int sumValues() {
    int total = 0;
    int i = 0;
    while (i < this.count) {
      total = total + this.values.get(i);
      i = i + 1;
    }
    return total;
  }
  bool containsKey(int key) { return this.findFirstEqualKeyIndex(key) >= 0; }
  bool containsValue(int value) {
    int i = 0;
    while (i < this.count) {
      if (this.values.get(i) == value) { return true; }
      i = i + 1;
    }
    return false;
  }
  void copyTo(DoubleIntIndex target) {
    int i = 0;
    while (i < this.count) {
      target.addUnsorted(this.keys.get(i), this.values.get(i));
      i = i + 1;
    }
  }
  void removeRange(int start, int limit) {
    int span = limit - start;
    int j = limit;
    while (j < this.count) {
      this.keys.set(j - span, this.keys.get(j));
      this.values.set(j - span, this.values.get(j));
      j = j + 1;
    }
    this.count = this.count - span;
  }
  void incrementValue(int i) { this.values.set(i, this.values.get(i) + 1); }
  void markUnsorted() { this.sorted = false; }
  int firstKey() { return this.getKey(0); }
  int firstValue() { return this.getValue(0); }
}

test SeedC5 {
  DoubleIntIndex idx = new DoubleIntIndex(8);
  int n = idx.size();
  int cap = idx.capacityOf();
  bool empty = idx.isEmpty();
  bool full = idx.isFull();
  bool srt = idx.isSorted();
  int f1 = idx.findFirstEqualKeyIndex(5);
  int f2 = idx.findFirstGreaterEqualKeyIndex(4);
  int l1 = idx.lookup(5);
  int l2 = idx.lookupFirstGreaterEqual(4);
  idx.fastQuickSort();
  int kl = idx.keyOfLast();
  int vl = idx.valueOfLast();
  int sk = idx.sumKeys();
  int sv = idx.sumValues();
  bool ck = idx.containsKey(3);
  bool cv = idx.containsValue(30);
  DoubleIntIndex target = new DoubleIntIndex(8);
  idx.copyTo(target);
  int fk = idx.firstKey();
  int fv = idx.firstValue();
  idx.removeRange(0, 0);
  idx.removeLast();
  idx.setSize(0);
  idx.clear();
  idx.markUnsorted();
  bool a1 = idx.addUnsorted(5, 50);
  bool a2 = idx.addSorted(7, 70);
  bool a3 = idx.addUnique(3, 30);
  int k0 = idx.getKey(0);
  int v0 = idx.getValue(0);
  idx.setKey(1, 8);
  idx.setValue(1, 80);
  idx.swap(0, 1);
  idx.incrementValue(0);
  idx.remove(0);
}
"""

C5 = register(
    SubjectInfo(
        key="C5",
        benchmark="hsqldb",
        version="2.3.2",
        class_name="DoubleIntIndex",
        description=(
            "Fully unsynchronized int-pair index; every state access races, "
            "and concurrent adds can overrun the backing arrays (the crash "
            "ConTeGe's random search also finds)."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=32,
            loc=508,
            race_pairs=136,
            tests=8,
            time_seconds=7.4,
            races_detected=36,
            harmful=30,
            benign=6,
            manual_tp=None,
            manual_fp=None,
        ),
    )
)
