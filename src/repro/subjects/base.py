"""Subject registry: the nine analyzed classes of the paper's Table 3.

Each subject module re-implements, in MiniJ, the analyzed class of one
paper benchmark together with enough of its surrounding library for the
seed tests to be realistic — preserving the *defect pattern* the paper
found (wrong mutex object, missing synchronization, constant-reset
benign races, uncontrollable internal state), not the Java source text.

``paper`` carries the numbers the original evaluation reported so the
benchmark harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ClassTable, load


@dataclass(frozen=True)
class PaperNumbers:
    """The paper's reported values for one subject (Tables 3-5)."""

    methods: int
    loc: int
    race_pairs: int
    tests: int
    time_seconds: float
    races_detected: int
    harmful: int
    benign: int
    manual_tp: int | None = None
    manual_fp: int | None = None


@dataclass(frozen=True)
class SubjectInfo:
    """One subject: metadata plus its MiniJ source."""

    key: str
    benchmark: str
    version: str
    class_name: str
    description: str
    source: str
    paper: PaperNumbers

    def load(self) -> ClassTable:
        """Parse and resolve the subject's MiniJ program."""
        return load(self.source)


_REGISTRY: dict[str, SubjectInfo] = {}

#: Whether the built-in C1..C9 modules have been imported.  Tracked
#: separately from registry emptiness: dynamically registered subjects
#: (the generated corpus) may arrive *before* the first lookup, and
#: "the registry is non-empty" must not be mistaken for "the builtins
#: are loaded" — that was an import-order trap.
_BUILTINS_LOADED = False


def register(info: SubjectInfo) -> SubjectInfo:
    """Add a subject to the registry.

    Idempotent for identical re-registration (re-running a corpus
    generator with the same config is a no-op); a key collision with
    *different* content is still an error.
    """
    existing = _REGISTRY.get(info.key)
    if existing is not None:
        if existing == info:
            return existing
        raise ValueError(
            f"duplicate subject {info.key} with conflicting definitions"
        )
    _REGISTRY[info.key] = info
    return info


def unregister(key: str) -> None:
    """Remove a dynamically registered subject (test teardown hook)."""
    _REGISTRY.pop(key, None)


def get_subject(key: str) -> SubjectInfo:
    _ensure_loaded()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown subject {key!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_subjects() -> list[SubjectInfo]:
    """All registered subjects in key order (C1..C9, then generated)."""
    _ensure_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Importing the modules populates the registry via register().
    from repro.subjects import (  # noqa: F401
        c1_hazelcast_wbq,
        c2_openjdk_synccollection,
        c3_openjdk_chararraywriter,
        c4_colt_dynamicbin,
        c5_hsqldb_doubleintindex,
        c6_hsqldb_scanner,
        c7_hedc_pooledexecutor,
        c8_h2_sequence,
        c9_classpath_chararrayreader,
    )
