"""Subject registry: the nine analyzed classes of the paper's Table 3.

Each subject module re-implements, in MiniJ, the analyzed class of one
paper benchmark together with enough of its surrounding library for the
seed tests to be realistic — preserving the *defect pattern* the paper
found (wrong mutex object, missing synchronization, constant-reset
benign races, uncontrollable internal state), not the Java source text.

``paper`` carries the numbers the original evaluation reported so the
benchmark harness can print paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ClassTable, load


@dataclass(frozen=True)
class PaperNumbers:
    """The paper's reported values for one subject (Tables 3-5)."""

    methods: int
    loc: int
    race_pairs: int
    tests: int
    time_seconds: float
    races_detected: int
    harmful: int
    benign: int
    manual_tp: int | None = None
    manual_fp: int | None = None


@dataclass(frozen=True)
class SubjectInfo:
    """One subject: metadata plus its MiniJ source."""

    key: str
    benchmark: str
    version: str
    class_name: str
    description: str
    source: str
    paper: PaperNumbers

    def load(self) -> ClassTable:
        """Parse and resolve the subject's MiniJ program."""
        return load(self.source)


_REGISTRY: dict[str, SubjectInfo] = {}


def register(info: SubjectInfo) -> SubjectInfo:
    if info.key in _REGISTRY:
        raise ValueError(f"duplicate subject {info.key}")
    _REGISTRY[info.key] = info
    return info


def get_subject(key: str) -> SubjectInfo:
    _ensure_loaded()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown subject {key!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_subjects() -> list[SubjectInfo]:
    """All subjects in C1..C9 order."""
    _ensure_loaded()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    # Importing the modules populates the registry via register().
    from repro.subjects import (  # noqa: F401
        c1_hazelcast_wbq,
        c2_openjdk_synccollection,
        c3_openjdk_chararraywriter,
        c4_colt_dynamicbin,
        c5_hsqldb_doubleintindex,
        c6_hsqldb_scanner,
        c7_hedc_pooledexecutor,
        c8_h2_sequence,
        c9_classpath_chararrayreader,
    )
