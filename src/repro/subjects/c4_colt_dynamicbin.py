"""C4 — colt 1.2.0 ``DynamicBin1D``.

A statistics bin that keeps its samples in an *internal* buffer object
allocated by the constructor.  Almost every method is synchronized on
the bin, yet each one touches the buffer's state without holding the
buffer's own monitor — so the analysis (correctly, per its conservative
definition) reports many unprotected accesses and racing pairs.  But the
buffer is never exposed to or settable by clients: context derivation
can only fall back to sharing the *receiver*, and since the methods are
synchronized the resulting tests serialize and expose nothing.  This is
exactly the phenomenon the paper reports for C4: 26 racing pairs, tests
synthesized for them, only 4 races detected (§5, Fig. 14 discussion).

The four real races come from the handful of methods that skip
synchronization: cache invalidation and the fix-up flags.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
/* Internal sample storage; never escapes DynamicBin1D. */
class DoubleBuffer {
  IntArray elements;
  int count;
  DoubleBuffer() {
    this.elements = new IntArray(64);
    this.count = 0;
  }
  void addValue(int v) {
    if (this.count < this.elements.length) {
      this.elements.set(this.count, v);
      this.count = this.count + 1;
    }
  }
  int valueAt(int i) { return this.elements.get(i); }
  int length() { return this.count; }
  void reset() { this.count = 0; }
}

class DynamicBin1D {
  DoubleBuffer buffer;
  int cachedSum;
  int cachedSumSq;
  int cachedMin;
  int cachedMax;
  bool validSum;
  bool validMinMax;
  bool fixedOrder;
  DynamicBin1D() {
    this.buffer = new DoubleBuffer();
    this.cachedSum = 0;
    this.cachedSumSq = 0;
    this.cachedMin = 0;
    this.cachedMax = 0;
    this.validSum = false;
    this.validMinMax = false;
    this.fixedOrder = false;
  }

  synchronized void add(int v) {
    this.buffer.addValue(v);
    this.validSum = false;
    this.validMinMax = false;
  }
  synchronized void addAllOf(DynamicBin1D other) {
    int n = other.size();
    int i = 0;
    while (i < n) {
      this.buffer.addValue(other.valueAt(i));
      i = i + 1;
    }
    this.validSum = false;
    this.validMinMax = false;
  }
  synchronized int size() { return this.buffer.length(); }
  synchronized int valueAt(int i) { return this.buffer.valueAt(i); }
  synchronized void clear() {
    this.buffer.reset();
    this.validSum = false;
    this.validMinMax = false;
  }
  synchronized int sum() {
    if (!this.validSum) { this.updateSumCache(); }
    return this.cachedSum;
  }
  synchronized int sumOfSquares() {
    if (!this.validSum) { this.updateSumCache(); }
    return this.cachedSumSq;
  }
  synchronized void updateSumCache() {
    int s = 0;
    int sq = 0;
    int i = 0;
    int n = this.buffer.length();
    while (i < n) {
      int v = this.buffer.valueAt(i);
      s = s + v;
      sq = sq + v * v;
      i = i + 1;
    }
    this.cachedSum = s;
    this.cachedSumSq = sq;
    this.validSum = true;
  }
  synchronized int min() {
    if (!this.validMinMax) { this.updateMinMaxCache(); }
    return this.cachedMin;
  }
  synchronized int max() {
    if (!this.validMinMax) { this.updateMinMaxCache(); }
    return this.cachedMax;
  }
  synchronized void updateMinMaxCache() {
    int n = this.buffer.length();
    if (n == 0) { return; }
    int lo = this.buffer.valueAt(0);
    int hi = lo;
    int i = 1;
    while (i < n) {
      int v = this.buffer.valueAt(i);
      if (v < lo) { lo = v; }
      if (v > hi) { hi = v; }
      i = i + 1;
    }
    this.cachedMin = lo;
    this.cachedMax = hi;
    this.validMinMax = true;
  }
  synchronized int mean() {
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    return this.sum() / n;
  }
  synchronized int variance() {
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    int m = this.mean();
    return this.sumOfSquares() / n - m * m;
  }
  synchronized int standardDeviation() {
    int v = this.variance();
    int r = 0;
    while ((r + 1) * (r + 1) <= v) { r = r + 1; }
    return r;
  }
  synchronized int rms() {
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    int msq = this.sumOfSquares() / n;
    int r = 0;
    while ((r + 1) * (r + 1) <= msq) { r = r + 1; }
    return r;
  }
  synchronized int frequency(int v) {
    int n = this.buffer.length();
    int i = 0;
    int hits = 0;
    while (i < n) {
      if (this.buffer.valueAt(i) == v) { hits = hits + 1; }
      i = i + 1;
    }
    return hits;
  }
  synchronized bool includes(int v) { return this.frequency(v) > 0; }
  synchronized int sizeOfRange(int lo, int hi) {
    int n = this.buffer.length();
    int i = 0;
    int hits = 0;
    while (i < n) {
      int v = this.buffer.valueAt(i);
      if (v >= lo && v <= hi) { hits = hits + 1; }
      i = i + 1;
    }
    return hits;
  }
  synchronized int moment(int k) {
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    int total = 0;
    int i = 0;
    while (i < n) {
      int v = this.buffer.valueAt(i);
      int p = 1;
      int j = 0;
      while (j < k) { p = p * v; j = j + 1; }
      total = total + p;
      i = i + 1;
    }
    return total / n;
  }
  synchronized int product() {
    int n = this.buffer.length();
    int p = 1;
    int i = 0;
    while (i < n) { p = p * this.buffer.valueAt(i); i = i + 1; }
    return p;
  }
  synchronized int sumOfInversions() {
    int n = this.buffer.length();
    int total = 0;
    int i = 0;
    while (i < n) {
      int v = this.buffer.valueAt(i);
      if (v != 0) { total = total + 1000 / v; }
      i = i + 1;
    }
    return total;
  }
  synchronized int geometricMean() {
    int p = this.product();
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    int r = 0;
    while ((r + 1) * (r + 1) <= p) { r = r + 1; }
    return r;
  }
  synchronized int harmonicMean() {
    int inv = this.sumOfInversions();
    int n = this.buffer.length();
    if (inv == 0) { return 0; }
    return n * 1000 / inv;
  }
  synchronized int median() {
    this.sortInternal();
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    return this.buffer.valueAt(n / 2);
  }
  synchronized int quantile(int percent) {
    this.sortInternal();
    int n = this.buffer.length();
    if (n == 0) { return 0; }
    int idx = n * percent / 100;
    if (idx >= n) { idx = n - 1; }
    return this.buffer.valueAt(idx);
  }
  synchronized void sortInternal() {
    int n = this.buffer.length();
    int i = 0;
    while (i < n) {
      int j = i + 1;
      while (j < n) {
        int a = this.buffer.valueAt(i);
        int b = this.buffer.valueAt(j);
        if (b < a) {
          this.buffer.elements.set(i, b);
          this.buffer.elements.set(j, a);
        }
        j = j + 1;
      }
      i = i + 1;
    }
  }
  synchronized void trim(int lo, int hi) {
    this.sortInternal();
    int n = this.buffer.length();
    if (lo + hi >= n) { this.buffer.reset(); return; }
    int i = 0;
    while (i < n - lo - hi) {
      this.buffer.elements.set(i, this.buffer.valueAt(i + lo));
      i = i + 1;
    }
    this.buffer.count = n - lo - hi;
  }
  synchronized bool isEmpty() { return this.buffer.length() == 0; }
  synchronized int sampleVariance() {
    int n = this.buffer.length();
    if (n < 2) { return 0; }
    int m = this.mean();
    return (this.sumOfSquares() - n * m * m) / (n - 1);
  }
  synchronized int sampleStandardDeviation() {
    int v = this.sampleVariance();
    int r = 0;
    while ((r + 1) * (r + 1) <= v) { r = r + 1; }
    return r;
  }

  /* NOT synchronized (cache fix-up helpers in the original). */
  void invalidateAll() {
    this.validSum = false;
    this.validMinMax = false;
  }
  bool isValidSum() { return this.validSum; }
  bool isFixedOrder() { return this.fixedOrder; }
  void setFixedOrder(bool fixed) { this.fixedOrder = fixed; }
}

test SeedC4 {
  DynamicBin1D bin = new DynamicBin1D();
  bin.add(5);
  bin.add(3);
  bin.add(9);
  DynamicBin1D other = new DynamicBin1D();
  other.add(1);
  bin.addAllOf(other);
  int n = bin.size();
  int v0 = bin.valueAt(0);
  int s = bin.sum();
  int sq = bin.sumOfSquares();
  int lo = bin.min();
  int hi = bin.max();
  int m = bin.mean();
  int vr = bin.variance();
  int sd = bin.standardDeviation();
  int r = bin.rms();
  int fr = bin.frequency(3);
  bool inc = bin.includes(9);
  int rng = bin.sizeOfRange(1, 9);
  int mo = bin.moment(2);
  int pr = bin.product();
  int si = bin.sumOfInversions();
  int gm = bin.geometricMean();
  int hm = bin.harmonicMean();
  int md = bin.median();
  int q = bin.quantile(50);
  bin.sortInternal();
  bin.trim(0, 1);
  bool em = bin.isEmpty();
  int sv = bin.sampleVariance();
  int ssd = bin.sampleStandardDeviation();
  bin.updateSumCache();
  bin.updateMinMaxCache();
  bin.invalidateAll();
  bool vs = bin.isValidSum();
  bool fo = bin.isFixedOrder();
  bin.setFixedOrder(true);
  bin.clear();
}
"""

C4 = register(
    SubjectInfo(
        key="C4",
        benchmark="colt",
        version="1.2.0",
        class_name="DynamicBin1D",
        description=(
            "Statistics bin with an internal sample buffer that clients can "
            "never set: most racing pairs get only receiver-shared fallback "
            "tests that serialize on the monitor, so few races manifest."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=35,
            loc=313,
            race_pairs=26,
            tests=11,
            time_seconds=33.0,
            races_detected=4,
            harmful=2,
            benign=0,
            manual_tp=2,
            manual_fp=0,
        ),
    )
)
