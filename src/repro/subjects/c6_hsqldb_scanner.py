"""C6 — hsqldb 2.3.2 ``Scanner`` (the SQL tokenizer).

Entirely unsynchronized; the interesting property the paper reports is
the *benign* race cluster: ``reset`` (and its helpers) write constants
into many scanner fields, so when two threads race through them the
writes collide but store identical values — 62 of C6's 89 races were
triaged benign for exactly this reason (§5).
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class Token {
  int tokenType;
  int tokenValue;
  int position;
  bool isReservedIdentifier;
  Token() {
    this.tokenType = 0;
    this.tokenValue = 0;
    this.position = 0;
    this.isReservedIdentifier = false;
  }
}

class Scanner {
  IntArray sqlString;
  int limit;
  int currentPosition;
  int tokenPosition;
  int tokenType;
  int tokenValue;
  bool hasNonSpace;
  bool scanned;
  int errorCode;
  Token token;
  Scanner() {
    this.sqlString = new IntArray(64);
    this.limit = 0;
    this.currentPosition = 0;
    this.tokenPosition = 0;
    this.tokenType = 0;
    this.tokenValue = 0;
    this.hasNonSpace = false;
    this.scanned = false;
    this.errorCode = 0;
    this.token = new Token();
  }
  void setSource(IntArray chars, int length) {
    int i = 0;
    while (i < length) {
      this.sqlString.set(i, chars.get(i));
      i = i + 1;
    }
    this.limit = length;
    this.reset();
  }
  /* The benign-race generator: everything reset to constants. */
  void reset() {
    this.currentPosition = 0;
    this.tokenPosition = 0;
    this.tokenType = 0;
    this.tokenValue = 0;
    this.hasNonSpace = false;
    this.scanned = false;
    this.errorCode = 0;
  }
  void resumeAt(int position) {
    this.currentPosition = position;
    this.tokenPosition = position;
  }
  int charAt(int i) {
    if (i >= this.limit) { return 0 - 1; }
    return this.sqlString.get(i);
  }
  int currentChar() { return this.charAt(this.currentPosition); }
  bool hasMore() { return this.currentPosition < this.limit; }
  void skipWhitespace() {
    while (this.hasMore() && this.currentChar() == 32) {
      this.currentPosition = this.currentPosition + 1;
    }
  }
  void scanNext() {
    this.skipWhitespace();
    this.tokenPosition = this.currentPosition;
    if (!this.hasMore()) {
      this.tokenType = 0 - 1;
      this.scanned = true;
      return;
    }
    int c = this.currentChar();
    if (c >= 48 && c <= 57) { this.scanNumber(); }
    else { this.scanIdentifier(); }
    this.scanned = true;
  }
  void scanNumber() {
    int value = 0;
    while (this.hasMore()) {
      int c = this.currentChar();
      if (c < 48 || c > 57) { this.tokenType = 2; this.tokenValue = value; return; }
      value = value * 10 + (c - 48);
      this.currentPosition = this.currentPosition + 1;
      this.hasNonSpace = true;
    }
    this.tokenType = 2;
    this.tokenValue = value;
  }
  void scanIdentifier() {
    int length = 0;
    while (this.hasMore() && this.currentChar() != 32) {
      this.currentPosition = this.currentPosition + 1;
      length = length + 1;
      this.hasNonSpace = true;
    }
    this.tokenType = 1;
    this.tokenValue = length;
  }
  int getTokenType() { return this.tokenType; }
  int getTokenValue() { return this.tokenValue; }
  int getPosition() { return this.currentPosition; }
  int getTokenPosition() { return this.tokenPosition; }
  int getLimit() { return this.limit; }
  bool wasScanned() { return this.scanned; }
  bool sawNonSpace() { return this.hasNonSpace; }
  int getErrorCode() { return this.errorCode; }
  void setErrorCode(int code) { this.errorCode = code; }
  Token getToken() { return this.token; }
  void publishToken() {
    /* hsqldb raises on corrupted scanner state; racy reset/backtrack
       can leave the token start beyond the cursor. */
    assert this.tokenPosition <= this.currentPosition;
    Token t = this.token;
    t.tokenType = this.tokenType;
    t.tokenValue = this.tokenValue;
    t.position = this.tokenPosition;
  }
  void adoptToken(Token t) { this.token = t; }
  bool scanWhitespaceChar() {
    if (this.currentChar() == 32) {
      this.currentPosition = this.currentPosition + 1;
      return true;
    }
    return false;
  }
  int remaining() { return this.limit - this.currentPosition; }
  void backtrack() { this.currentPosition = this.tokenPosition; }
  void advance() { this.currentPosition = this.currentPosition + 1; }
}

test SeedC6 {
  Scanner sc = new Scanner();
  IntArray sql = new IntArray(8);
  sql.set(0, 53);
  sql.set(1, 32);
  sql.set(2, 120);
  sc.setSource(sql, 3);
  sc.scanNext();
  int tt = sc.getTokenType();
  int tv = sc.getTokenValue();
  int p = sc.getPosition();
  int tp = sc.getTokenPosition();
  int lim = sc.getLimit();
  bool ws = sc.wasScanned();
  bool ns = sc.sawNonSpace();
  int ec = sc.getErrorCode();
  sc.setErrorCode(7);
  Token tok = sc.getToken();
  sc.publishToken();
  Token fresh = new Token();
  sc.adoptToken(fresh);
  bool sw = sc.scanWhitespaceChar();
  int rem = sc.remaining();
  int cc = sc.currentChar();
  int ca = sc.charAt(1);
  bool hm = sc.hasMore();
  sc.skipWhitespace();
  sc.scanIdentifier();
  sc.scanNumber();
  sc.advance();
  sc.backtrack();
  sc.resumeAt(0);
  sc.reset();
}
"""

C6 = register(
    SubjectInfo(
        key="C6",
        benchmark="hsqldb",
        version="2.3.2",
        class_name="Scanner",
        description=(
            "Unsynchronized SQL tokenizer; reset() writes constants into "
            "many fields, producing the paper's large benign-race cluster."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=26,
            loc=1802,
            race_pairs=85,
            tests=8,
            time_seconds=121.7,
            races_detected=89,
            harmful=15,
            benign=62,
            manual_tp=12,
            manual_fp=None,
        ),
    )
)
