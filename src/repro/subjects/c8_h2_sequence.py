"""C8 — h2 1.4.182 ``Sequence`` (database sequence object).

``getNext``/``flush`` coordinate through ``value``/``valueWithMargin``
under the sequence's monitor, but the margin bookkeeping helpers touch
the same fields without it — the 4 racing pairs and 4 harmful races the
paper reports.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class Sequence {
  int value;
  int valueWithMargin;
  int increment;
  int cacheSize;
  int minValue;
  int maxValue;
  bool cycle;
  bool belongsToTable;
  Sequence(int startValue, int increment, int cacheSize) {
    this.value = startValue;
    this.valueWithMargin = startValue;
    this.increment = increment;
    this.cacheSize = cacheSize;
    this.minValue = 0;
    this.maxValue = 1000000;
    this.cycle = false;
    this.belongsToTable = false;
  }
  synchronized int getNext() {
    if (this.value >= this.valueWithMargin) {
      this.valueWithMargin = this.valueWithMargin
          + this.increment * this.cacheSize;
    }
    int result = this.value;
    this.value = this.value + this.increment;
    if (this.cycle && this.value > this.maxValue) {
      this.value = this.minValue;
    }
    return result;
  }
  synchronized int getCurrentValue() { return this.value - this.increment; }
  synchronized void setStartValue(int v) {
    this.value = v;
    this.valueWithMargin = v;
  }
  synchronized bool isBelongsToTable() { return this.belongsToTable; }
  synchronized void setBelongsToTable(bool b) { this.belongsToTable = b; }
  synchronized void setCycle(bool cycle) { this.cycle = cycle; }
  synchronized bool getCycle() { return this.cycle; }
  synchronized int getIncrement() { return this.increment; }
  synchronized void setIncrement(int inc) { this.increment = inc; }
  synchronized int getCacheSize() { return this.cacheSize; }
  synchronized void setCacheSize(int size) { this.cacheSize = size; }
  synchronized int getMinValue() { return this.minValue; }
  synchronized int getMaxValue() { return this.maxValue; }
  synchronized void setMinMax(int lo, int hi) {
    this.minValue = lo;
    this.maxValue = hi;
  }
  /* NOT synchronized (the h2 flush path). */
  void flush() {
    this.valueWithMargin = this.value;
  }
  int flushValue() { return this.valueWithMargin; }
  bool needsFlush() { return this.valueWithMargin != this.value; }
}

test SeedC8 {
  Sequence seq = new Sequence(1, 1, 32);
  int n1 = seq.getNext();
  int cur = seq.getCurrentValue();
  seq.setStartValue(10);
  bool bt = seq.isBelongsToTable();
  seq.setBelongsToTable(true);
  seq.setCycle(true);
  bool cy = seq.getCycle();
  int inc = seq.getIncrement();
  seq.setIncrement(2);
  int cs = seq.getCacheSize();
  seq.setCacheSize(16);
  int lo = seq.getMinValue();
  int hi = seq.getMaxValue();
  seq.setMinMax(0, 100);
  seq.flush();
  int fv = seq.flushValue();
  bool nf = seq.needsFlush();
}
"""

C8 = register(
    SubjectInfo(
        key="C8",
        benchmark="h2",
        version="1.4.182",
        class_name="Sequence",
        description=(
            "Database sequence whose flush path reads and writes the value "
            "margin without the monitor getNext holds."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=18,
            loc=233,
            race_pairs=4,
            tests=4,
            time_seconds=5.8,
            races_detected=4,
            harmful=4,
            benign=0,
            manual_tp=0,
            manual_fp=0,
        ),
    )
)
