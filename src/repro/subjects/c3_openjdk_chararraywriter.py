"""C3 — openjdk 1.7 ``java.io.CharArrayWriter``.

The mutating methods are synchronized, but ``reset()`` and ``size()``
are not (their real-JDK counterparts touch ``count`` without holding the
lock).  ``writeTo`` additionally reads another writer's buffer under the
*receiver's* monitor only, so two writers copying into each other race.
"""

from repro.subjects.base import PaperNumbers, SubjectInfo, register

SOURCE = """
class CharArrayWriter {
  IntArray buf;
  int count;
  CharArrayWriter() {
    this.buf = new IntArray(32);
    this.count = 0;
  }
  synchronized void write(int c) {
    int newcount = this.count + 1;
    if (newcount <= this.buf.length) {
      this.buf.set(this.count, c);
      this.count = newcount;
    }
  }
  synchronized void writeChars(IntArray c, int off, int len) {
    int i = 0;
    while (i < len) {
      this.buf.set(this.count + i, c.get(off + i));
      i = i + 1;
    }
    this.count = this.count + len;
  }
  synchronized void writeTo(CharArrayWriter out) {
    int i = 0;
    while (i < this.count) {
      out.write(this.buf.get(i));
      i = i + 1;
    }
  }
  synchronized void append(int c) { this.write(c); }
  synchronized IntArray toCharArray() {
    IntArray copy = new IntArray(this.count);
    int i = 0;
    while (i < this.count) {
      copy.set(i, this.buf.get(i));
      i = i + 1;
    }
    return copy;
  }
  /* NOT synchronized in the JDK: resets count without the lock. */
  void reset() { this.count = 0; }
  /* NOT synchronized in the JDK. */
  int size() { return this.count; }
  int capacity() { return this.buf.length; }
  synchronized bool isEmpty() { return this.count == 0; }
  synchronized int charAt(int i) {
    if (i < this.count) { return this.buf.get(i); }
    return 0 - 1;
  }
  void flush() { int observed = this.count; }
  void close() { int remaining = this.count; }
}

test SeedC3 {
  CharArrayWriter w = new CharArrayWriter();
  w.write(65);
  w.append(66);
  IntArray chunk = new IntArray(4);
  chunk.set(0, 67);
  chunk.set(1, 68);
  w.writeChars(chunk, 0, 2);
  CharArrayWriter sink = new CharArrayWriter();
  w.writeTo(sink);
  IntArray snapshot = w.toCharArray();
  int n = w.size();
  int cap = w.capacity();
  bool empty = w.isEmpty();
  int ch = w.charAt(0);
  w.flush();
  w.close();
  w.reset();
}
"""

C3 = register(
    SubjectInfo(
        key="C3",
        benchmark="openjdk",
        version="1.7",
        class_name="CharArrayWriter",
        description=(
            "Character buffer whose reset/size/flush/close touch count "
            "without the monitor the write methods hold."
        ),
        source=SOURCE,
        paper=PaperNumbers(
            methods=13,
            loc=92,
            race_pairs=13,
            tests=9,
            time_seconds=2.2,
            races_detected=8,
            harmful=7,
            benign=1,
            manual_tp=0,
            manual_fp=0,
        ),
    )
)
