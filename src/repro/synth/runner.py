"""Execution of synthesized multithreaded tests.

Each run uses a *fresh* VM: materialization (seed collection + object
sharing) is deterministic given the VM seed, so a test can be replayed
under many schedules while keeping the racy thread bodies and target
sites stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.classtable import ClassTable
from repro.runtime.scheduler import Scheduler, SequentialScheduler
from repro.runtime.vm import VM, Execution, ExecutionResult, Listener
from repro.synth.synthesizer import MaterializedTest, SynthesizedTest, materialize

#: Step budget for the concurrent phase of one synthesized-test run.
RUN_MAX_STEPS = 100_000


@dataclass
class RunOutcome:
    """Result of one execution of a synthesized test."""

    test: SynthesizedTest
    materialized: MaterializedTest
    setup_result: ExecutionResult
    concurrent_result: ExecutionResult | None
    thread_ids: tuple[int, int] | None
    execution: Execution | None = None

    @property
    def ran_concurrently(self) -> bool:
        return self.concurrent_result is not None

    @property
    def clean(self) -> bool:
        return (
            self.setup_result.clean
            and self.concurrent_result is not None
            and self.concurrent_result.clean
        )


@dataclass
class PreparedRun:
    """A synthesized test with setup done and racy threads spawned.

    The concurrent execution has not advanced yet: callers either hand
    it to a scheduler (:meth:`TestRunner.finish`) or drive it step by
    step (the race-directed fuzzer).
    """

    materialized: MaterializedTest
    setup_result: ExecutionResult
    execution: Execution | None
    thread_ids: tuple[int, int] | None
    main_tid: int = -1

    @property
    def ok(self) -> bool:
        return self.execution is not None


@dataclass
class TestRunner:
    """Materializes and runs synthesized tests."""

    __test__ = False  # not a pytest test class despite the name

    table: ClassTable
    vm_seed: int = 0
    listeners: tuple[Listener, ...] = ()
    max_steps: int = RUN_MAX_STEPS
    observe_setup: bool = True
    """Whether listeners also see the sequential context-setting phase
    (they should: it establishes the pre-fork happens-before prefix)."""

    def run(self, test: SynthesizedTest, scheduler: Scheduler) -> RunOutcome:
        """Run ``test`` once under ``scheduler``."""
        prepared = self.prepare(test)
        return self.finish(prepared, scheduler)

    def prepare(self, test: SynthesizedTest) -> PreparedRun:
        """Materialize ``test`` in a fresh VM and run its setup phase."""
        vm = VM(self.table, seed=self.vm_seed)
        mat = materialize(test, vm)
        return self.prepare_materialized(mat)

    def run_materialized(
        self, mat: MaterializedTest, scheduler: Scheduler
    ) -> RunOutcome:
        """Run an already-materialized test once under ``scheduler``."""
        return self.finish(self.prepare_materialized(mat), scheduler)

    def prepare_materialized(self, mat: MaterializedTest) -> PreparedRun:
        vm = mat.vm
        listeners = self.listeners if self.observe_setup else ()
        # The setup phase extends mat.env in place (constructed objects
        # bind variables the racy thread bodies reference).
        setup_exec = Execution(vm, listeners=listeners)
        main_tid = setup_exec.spawn(
            lambda ctx: vm.interp.run_client_stmts(mat.setup_stmts, ctx, mat.env),
            name="setup",
        )
        setup_result = setup_exec.run(SequentialScheduler(), max_steps=self.max_steps)
        if not setup_result.clean:
            return PreparedRun(
                materialized=mat,
                setup_result=setup_result,
                execution=None,
                thread_ids=None,
            )

        concurrent = Execution(vm, listeners=self.listeners)
        tids = []
        for index, stmts in enumerate(mat.thread_stmts):
            tids.append(
                concurrent.spawn(
                    lambda ctx, stmts=stmts: vm.interp.run_client_stmts(
                        stmts, ctx, dict(mat.env)
                    ),
                    name=f"racer{index + 1}",
                    parent=main_tid,
                )
            )
        return PreparedRun(
            materialized=mat,
            setup_result=setup_result,
            execution=concurrent,
            thread_ids=(tids[0], tids[1]),
            main_tid=main_tid,
        )

    def finish(self, prepared: PreparedRun, scheduler: Scheduler) -> RunOutcome:
        """Drive a prepared run to quiescence under ``scheduler``."""
        mat = prepared.materialized
        if prepared.execution is None:
            return RunOutcome(
                test=mat.test,
                materialized=mat,
                setup_result=prepared.setup_result,
                concurrent_result=None,
                thread_ids=None,
            )
        result = prepared.execution.run(scheduler, max_steps=self.max_steps)
        assert prepared.thread_ids is not None
        for tid in prepared.thread_ids:
            prepared.execution.emit_join(prepared.main_tid, tid)
        return RunOutcome(
            test=mat.test,
            materialized=mat,
            setup_result=prepared.setup_result,
            concurrent_result=result,
            thread_ids=prepared.thread_ids,
            execution=prepared.execution,
        )
