"""Emit synthesized tests as standalone MiniJ programs.

A materialized test references *collected heap objects* — references
captured by suspending seed executions.  That is faithful to Algorithm 1
but ties the test to a live VM.  This module instead reconstructs each
collection as **inline code**: a slice of the seed test up to the
suspension point, with the pending invocation's receiver and arguments
bound to fresh variables.  The racy invocations then run in ``fork``
blocks, producing a self-contained MiniJ test a user can check into a
regression suite and run with ``python -m repro run``.

Requirements and caveats (checked, not assumed):

* seed tests must be straight-line (ours are; loops/branches would make
  the suspension point schedule-dependent),
* client invocations are located by walking each statement's expression
  tree in evaluation order, mirroring the interpreter (arguments before
  the call, constructors after their arguments).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import SynthesisError
from repro.context.plan import PlannedCall, SeedArg, SlotArg
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.lang.pretty import pretty_expr, pretty_stmt
from repro.lang.types import Type, class_type
from repro.synth.synthesizer import SynthesizedTest


@dataclass
class _InvocationSite:
    """A client invocation within a seed test body."""

    stmt_index: int
    receiver_expr: ast.Expr | None  # None for constructors
    arg_exprs: list[ast.Expr]
    class_name: str
    method: str


def client_invocation_sites(
    test: ast.TestDecl, table: ClassTable
) -> list[_InvocationSite]:
    """Client invocations of a straight-line test, in dynamic order.

    Mirrors the interpreter's event emission exactly: native calls on
    builtin arrays and constructor-less ``new`` produce no InvokeEvent
    and are therefore not counted.
    """
    sites: list[_InvocationSite] = []
    var_types: dict[str, Type] = {}

    def is_builtin_receiver(target: ast.Expr | None) -> bool:
        if isinstance(target, ast.VarRef):
            declared = var_types.get(target.name)
            return declared is not None and declared.kind == "class" and (
                table.is_builtin(declared.name)
            )
        if isinstance(target, ast.New):
            return table.is_builtin(target.class_name)
        return False

    def walk_expr(expr: ast.Expr | None, stmt_index: int) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            walk_expr(expr.target, stmt_index)
            for arg in expr.args:
                walk_expr(arg, stmt_index)
            if not is_builtin_receiver(expr.target):
                sites.append(
                    _InvocationSite(
                        stmt_index=stmt_index,
                        receiver_expr=expr.target,
                        arg_exprs=list(expr.args),
                        class_name="?",  # dynamic; unused for matching
                        method=expr.method,
                    )
                )
        elif isinstance(expr, ast.New):
            for arg in expr.args:
                walk_expr(arg, stmt_index)
            if not table.is_builtin(expr.class_name) and table.constructor(
                expr.class_name
            ):
                sites.append(
                    _InvocationSite(
                        stmt_index=stmt_index,
                        receiver_expr=None,
                        arg_exprs=list(expr.args),
                        class_name=expr.class_name,
                        method=expr.class_name,
                    )
                )
        elif isinstance(expr, (ast.Binary,)):
            walk_expr(expr.left, stmt_index)
            walk_expr(expr.right, stmt_index)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand, stmt_index)
        elif isinstance(expr, ast.FieldGet):
            walk_expr(expr.target, stmt_index)

    for index, stmt in enumerate(test.body.stmts):
        if isinstance(stmt, ast.VarDecl):
            walk_expr(stmt.init, index)
            if stmt.decl_type is not None:
                var_types[stmt.name] = stmt.decl_type
        elif isinstance(stmt, ast.AssignVar):
            walk_expr(stmt.value, index)
        elif isinstance(stmt, ast.AssignField):
            walk_expr(stmt.target, index)
            walk_expr(stmt.value, index)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr, index)
        else:
            raise SynthesisError(
                f"seed test {test.name} is not straight-line "
                f"({type(stmt).__name__} at statement {index}); "
                "standalone emission requires straight-line seeds"
            )
    return sites


class _Renamer:
    """Prefixes every variable in a statement/expression tree."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix

    def name(self, original: str) -> str:
        return f"{self._prefix}{original}"

    def stmt(self, node: ast.Stmt) -> str:
        return "\n".join(pretty_stmt(self._rename_stmt(node), indent=1))

    def _rename_stmt(self, node: ast.Stmt) -> ast.Stmt:
        import copy

        clone = copy.deepcopy(node)
        self._walk_stmt(clone)
        return clone

    def _walk_stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.VarDecl):
            node.name = self.name(node.name)
            self._walk_expr(node.init)
        elif isinstance(node, ast.AssignVar):
            node.name = self.name(node.name)
            self._walk_expr(node.value)
        elif isinstance(node, ast.AssignField):
            self._walk_expr(node.target)
            self._walk_expr(node.value)
        elif isinstance(node, ast.ExprStmt):
            self._walk_expr(node.expr)

    def _walk_expr(self, node: ast.Expr | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.VarRef):
            node.name = self.name(node.name)
        elif isinstance(node, ast.Call):
            self._walk_expr(node.target)
            for arg in node.args:
                self._walk_expr(arg)
        elif isinstance(node, ast.New):
            for arg in node.args:
                self._walk_expr(arg)
        elif isinstance(node, ast.Binary):
            self._walk_expr(node.left)
            self._walk_expr(node.right)
        elif isinstance(node, ast.Unary):
            self._walk_expr(node.operand)
        elif isinstance(node, ast.FieldGet):
            self._walk_expr(node.target)

    def expr(self, node: ast.Expr) -> str:
        import copy

        clone = copy.deepcopy(node)
        self._walk_expr(clone)
        return pretty_expr(clone)


@dataclass
class StandaloneEmitter:
    """Builds standalone MiniJ test source for synthesized tests."""

    table: ClassTable
    _lines: list[str] = field(default_factory=list)
    _bound: dict[int, str] = field(default_factory=dict)
    _counter: int = 0

    def emit(self, test: SynthesizedTest) -> str:
        """Standalone ``test`` declaration reproducing ``test``.

        Raises:
            SynthesisError: when a seed is not straight-line or an
                invocation cannot be located.
        """
        self._lines = [f"test {test.name} {{"]
        self._bound = {}
        self._counter = 0
        plan = test.plan

        setters = [*plan.left.setter_calls, *plan.right.setter_calls]
        racy = [plan.left.racy_call, plan.right.racy_call]
        captures = {}
        # Emit collection slices + receiver bindings for every call.
        for call in [*setters, *racy]:
            captures[id(call)] = self._emit_collection(call)
        # Context-setting calls run sequentially.
        for call in setters:
            self._lines.append("  " + self._call_source(call, captures[id(call)]) + ";")
        # The racy invocations run concurrently.
        for call in racy:
            self._lines.append("  fork {")
            self._lines.append("    " + self._call_source(call, captures[id(call)]) + ";")
            self._lines.append("  }")
        self._lines.append("}")
        return "\n".join(self._lines)

    # ------------------------------------------------------------------

    def _fresh_prefix(self) -> str:
        self._counter += 1
        return f"c{self._counter}_"

    def _emit_collection(self, call: PlannedCall) -> dict:
        """Inline one collectObjects run; returns capture var names."""
        summary = call.summary
        test_decl = self.table.program.test_decl(summary.test_name)
        if test_decl is None:
            raise SynthesisError(f"unknown seed test {summary.test_name}")
        sites = client_invocation_sites(test_decl, self.table)
        if summary.ordinal >= len(sites):
            raise SynthesisError(
                f"seed {summary.test_name} has no client invocation "
                f"#{summary.ordinal}"
            )
        site = sites[summary.ordinal]
        prefix = self._fresh_prefix()
        renamer = _Renamer(prefix)

        self._lines.append(
            f"  // collect for {summary.class_name}.{summary.method} "
            f"(seed {summary.test_name}, invocation #{summary.ordinal})"
        )
        for stmt in test_decl.body.stmts[: site.stmt_index]:
            self._lines.append(renamer.stmt(stmt))

        capture = {"receiver": None, "args": []}
        if site.receiver_expr is not None:
            receiver_var = f"{prefix}recv"
            receiver_type = self._spell_type(class_type(summary.class_name))
            self._lines.append(
                f"  {receiver_type} {receiver_var} = "
                f"{renamer.expr(site.receiver_expr)};"
            )
            capture["receiver"] = receiver_var
        arg_types = self._arg_types(summary)
        for position, arg_expr in enumerate(site.arg_exprs):
            arg_var = f"{prefix}a{position}"
            arg_type = (
                self._spell_type(arg_types[position])
                if position < len(arg_types)
                else "Object"
            )
            self._lines.append(
                f"  {arg_type} {arg_var} = {renamer.expr(arg_expr)};"
            )
            capture["args"].append(arg_var)

        # Bind this call's collected receiver slot (first binder wins,
        # matching the Materializer's pre-binding).
        receiver_slot = call.receiver
        if (
            receiver_slot is not None
            and receiver_slot.origin == "collected"
            and receiver_slot.slot_id not in self._bound
            and capture["receiver"] is not None
        ):
            self._bound[receiver_slot.slot_id] = capture["receiver"]
        return capture

    def _arg_types(self, summary) -> list[Type]:
        method = self.table.method(summary.class_name, summary.method)
        if method is None and getattr(summary, "is_constructor", False):
            ctor = self.table.constructor(summary.class_name)
            method = ctor
        if method is None:
            return []
        return [p.param_type for p in method.params]

    def _spell_type(self, declared: Type) -> str:
        return str(declared)

    def _call_source(self, call: PlannedCall, capture: dict) -> str:
        args = []
        for position, spec in enumerate(call.args):
            if isinstance(spec, SeedArg):
                args.append(capture["args"][spec.index])
            elif isinstance(spec, SlotArg):
                slot = spec.slot
                if slot.slot_id not in self._bound:
                    # Bind from this call's own captured argument.
                    self._bound[slot.slot_id] = capture["args"][position]
                args.append(self._bound[slot.slot_id])
        if call.is_constructor:
            name = f"n{call.produces.slot_id}"
            self._bound[call.produces.slot_id] = name
            return (
                f"{call.class_name} {name} = "
                f"new {call.class_name}({', '.join(args)})"
            )
        receiver_slot = call.receiver
        assert receiver_slot is not None
        if receiver_slot.slot_id not in self._bound:
            if capture["receiver"] is None:
                raise SynthesisError(
                    f"no binding for receiver slot of "
                    f"{call.class_name}.{call.method}"
                )
            self._bound[receiver_slot.slot_id] = capture["receiver"]
        receiver = self._bound[receiver_slot.slot_id]
        invocation = f"{receiver}.{call.method}({', '.join(args)})"
        if call.produces is not None:
            name = f"f{call.produces.slot_id}"
            self._bound[call.produces.slot_id] = name
            produced_type = self._spell_type(
                class_type(call.produces.class_name)
            )
            return f"{produced_type} {name} = {invocation}"
        return invocation


def emit_standalone_program(
    table: ClassTable, tests: list[SynthesizedTest]
) -> str:
    """A complete MiniJ source: library + standalone racy tests."""
    from repro.lang.pretty import pretty_class, pretty_interface

    parts = []
    for iface in table.program.interfaces:
        parts.append(pretty_interface(iface))
    for cls in table.program.classes:
        parts.append(pretty_class(cls))
    emitter = StandaloneEmitter(table)
    for test in tests:
        parts.append(emitter.emit(test))
    return "\n\n".join(parts) + "\n"
