"""Stage 3 of Narada: the Test Synthesizer (§3.4, Algorithm 1).

A :class:`SynthesizedTest` packages a context-derivation plan into an
*executable* multithreaded test:

1. **collectObjects** — for every planned call, the runner re-runs the
   originating seed test in a shared VM and suspends just before the
   corresponding invocation, capturing receiver and argument references
   (:mod:`repro.synth.collect`).
2. **shareObjects** — plan slots that must be the same instance are the
   same :class:`ObjectSlot`; the first capture that mentions a slot
   binds it, and every later occurrence reuses the binding — which is
   precisely the re-arrangement shown in the paper's Table 2.
3. The context-setting calls run sequentially on the main thread, then
   two threads are spawned that perform the racy invocations
   concurrently (Algorithm 1, lines 6-9).

The concrete test body is built as MiniJ client statements over an
environment pre-populated with the captured objects, so a synthesized
test is both runnable on the VM and printable in the Figure-3 style.

Tests are deduplicated across pairs: multiple unprotected accesses of
the same field reached through the same method pair and context collapse
into one test (the paper synthesizes 101 tests for 466 pairs this way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import SynthesisError
from repro.context.plan import PlannedCall, SeedArg, SidePlan, SlotArg, TestPlan
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.pairs.generator import RacyPair
from repro.runtime.values import ObjRef, Value
from repro.synth.collect import SeedCollector
from repro.runtime.vm import VM

#: node_id namespace for statements fabricated by the synthesizer; far
#: above anything the parser assigns, so sites never collide.
SYNTH_NODE_BASE = 10_000_000


@dataclass
class SynthesizedTest:
    """One executable multithreaded test covering >= 1 racy pairs."""

    name: str
    plan: TestPlan
    covered_pairs: list[RacyPair] = field(default_factory=list)

    @property
    def pair(self) -> RacyPair:
        return self.plan.pair

    def target_sites(self) -> set[tuple[int, int]]:
        """Static site pairs this test aims to race (for the fuzzer)."""
        sites: set[tuple[int, int]] = set()
        for pair in self.covered_pairs:
            sites |= pair.site_pairs
            first = pair.first.access.node_id
            second = pair.second.access.node_id
            sites.add((min(first, second), max(first, second)))
        return sites

    def describe(self) -> str:
        lines = [f"test {self.name} covering {len(self.covered_pairs)} pair(s):"]
        for pair in self.covered_pairs:
            lines.append(f"  {pair.describe()}")
        lines.append(self.plan.describe())
        return "\n".join(lines)


def plan_signature(plan: TestPlan) -> tuple:
    """Dedup key: method pair + field + context shape."""

    def side_sig(side: SidePlan) -> tuple:
        return (
            side.side.method_id(),
            tuple(c.summary.method_id() for c in side.setter_calls),
            side.shared_depth,
        )

    sides = sorted([side_sig(plan.left), side_sig(plan.right)])
    shared_class = plan.shared_slot.class_name if plan.shared_slot else None
    return (tuple(sides), shared_class, plan.receivers_shared)


class TestSynthesizer:
    """Builds deduplicated synthesized tests from derived plans."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, table: ClassTable, name_prefix: str = "Racy") -> None:
        self._table = table
        self._prefix = name_prefix

    def synthesize(self, plans: list[TestPlan]) -> list[SynthesizedTest]:
        by_signature: dict[tuple, SynthesizedTest] = {}
        for plan in plans:
            signature = plan_signature(plan)
            existing = by_signature.get(signature)
            if existing is None:
                test = SynthesizedTest(
                    name=f"{self._prefix}{len(by_signature) + 1:03d}",
                    plan=plan,
                    covered_pairs=[plan.pair],
                )
                by_signature[signature] = test
            else:
                existing.covered_pairs.append(plan.pair)
        return list(by_signature.values())


# ----------------------------------------------------------------------
# Materialization: plan + seed captures -> runnable client statements.


@dataclass
class MaterializedTest:
    """A synthesized test bound to concrete heap objects in one VM."""

    test: SynthesizedTest
    vm: VM
    env: dict[str, Value]
    setup_stmts: list[ast.Stmt]
    thread_stmts: tuple[list[ast.Stmt], list[ast.Stmt]]

    def render(self) -> str:
        """Figure-3 style rendering of the synthesized test."""
        from repro.lang.pretty import pretty_stmt

        lines = [f"public void {self.test.name}() {{"]
        for name, value in self.env.items():
            if isinstance(value, ObjRef):
                lines.append(f"  // {name}: {value} (collected from seed run)")
        for stmt in self.setup_stmts:
            lines.extend(pretty_stmt(stmt, indent=1))
        for index, stmts in enumerate(self.thread_stmts, start=1):
            lines.append(f"  Thread t{index} = new Thread() {{")
            lines.append("    void run() {")
            for stmt in stmts:
                lines.extend(pretty_stmt(stmt, indent=3))
            lines.append("    }")
            lines.append("  };")
        lines.append("  t1.start(); t2.start();")
        lines.append("}")
        return "\n".join(lines)


class Materializer:
    """Binds a plan's slots to concrete objects (Algorithm 1, lines 1-5)."""

    def __init__(self, test: SynthesizedTest, vm: VM) -> None:
        self._test = test
        self._vm = vm
        self._collector = SeedCollector(vm)
        self._env: dict[str, Value] = {}
        self._bound: dict[int, str] = {}
        self._next_node = SYNTH_NODE_BASE
        self._next_temp = 1

    def materialize(self) -> MaterializedTest:
        plan = self._test.plan
        setters = [*plan.left.setter_calls, *plan.right.setter_calls]
        calls = [*setters, plan.left.racy_call, plan.right.racy_call]
        captures = [
            self._collector.collect(call.summary.test_name, call.summary.ordinal)
            for call in calls
        ]
        # Algorithm 1 collects every invocation's receiver up front
        # (lines 1-4); only the arguments are re-arranged by
        # shareObjects.  Pre-binding receivers to their *own* captures
        # matters for crossed plans (deadlock tests), where a receiver
        # slot also appears as the other side's argument.
        for call, capture in zip(calls, captures):
            receiver = call.receiver
            if (
                receiver is not None
                and receiver.origin == "collected"
                and receiver.slot_id not in self._bound
            ):
                self._bind(receiver.slot_id, capture.receiver, "r")

        setup = [
            self._build_call_stmt(call, capture)
            for call, capture in zip(setters, captures)
        ]
        left_stmts = [
            self._build_call_stmt(plan.left.racy_call, captures[len(setters)])
        ]
        right_stmts = [
            self._build_call_stmt(plan.right.racy_call, captures[len(setters) + 1])
        ]
        return MaterializedTest(
            test=self._test,
            vm=self._vm,
            env=self._env,
            setup_stmts=setup,
            thread_stmts=(left_stmts, right_stmts),
        )

    # ------------------------------------------------------------------

    def _node_id(self) -> int:
        self._next_node += 1
        return self._next_node

    def _fresh_name(self, hint: str) -> str:
        name = f"{hint}_{self._next_temp}"
        self._next_temp += 1
        return name

    def _build_call_stmt(self, call: PlannedCall, capture) -> ast.Stmt:
        args: list[ast.Expr] = []
        for index, spec in enumerate(call.args):
            if isinstance(spec, SeedArg):
                args.append(self._value_expr(capture.args[spec.index], "seed"))
            elif isinstance(spec, SlotArg):
                slot = spec.slot
                if slot.slot_id not in self._bound:
                    if slot.origin == "produced":
                        raise SynthesisError(
                            f"slot {slot} used before being produced in "
                            f"{self._test.name}"
                        )
                    self._bind(slot.slot_id, capture.arg_ref(index), "s")
                args.append(self._var(self._bound[slot.slot_id]))
            else:  # pragma: no cover - ArgSpec is closed
                raise SynthesisError(f"unknown arg spec {spec!r}")

        if call.is_constructor:
            new_expr = ast.New(class_name=call.class_name, args=args)
            new_expr.node_id = self._node_id()
            produced = call.produces
            name = self._fresh_name("n")
            if produced is not None:
                self._bound[produced.slot_id] = name
            stmt: ast.Stmt = ast.VarDecl(
                decl_type=None, name=name, init=new_expr
            )
            stmt.decl_type = _class_type_of(call.class_name)
            stmt.node_id = self._node_id()
            return stmt

        receiver_slot = call.receiver
        assert receiver_slot is not None
        if receiver_slot.slot_id not in self._bound:
            if receiver_slot.origin == "produced":
                raise SynthesisError(
                    f"receiver slot {receiver_slot} used before production"
                )
            self._bind(receiver_slot.slot_id, capture.receiver, "r")
        receiver_expr = self._var(self._bound[receiver_slot.slot_id])

        call_expr = ast.Call(target=receiver_expr, method=call.method, args=args)
        call_expr.node_id = self._node_id()
        if call.produces is not None:
            name = self._fresh_name("f")
            self._bound[call.produces.slot_id] = name
            stmt = ast.VarDecl(
                decl_type=_class_type_of(call.produces.class_name),
                name=name,
                init=call_expr,
            )
        else:
            stmt = ast.ExprStmt(expr=call_expr)
        stmt.node_id = self._node_id()
        return stmt

    def _bind(self, slot_id: int, value: ObjRef, hint: str) -> None:
        name = self._fresh_name(hint)
        self._env[name] = value
        self._bound[slot_id] = name

    def _var(self, name: str) -> ast.VarRef:
        ref = ast.VarRef(name=name)
        ref.node_id = self._node_id()
        return ref

    def _value_expr(self, value: Value, hint: str) -> ast.Expr:
        """Literal for primitives; environment variable for objects."""
        if isinstance(value, ObjRef):
            name = self._fresh_name(hint)
            self._env[name] = value
            return self._var(name)
        if value is None:
            expr: ast.Expr = ast.NullLit()
        elif isinstance(value, bool):
            expr = ast.BoolLit(value=value)
        else:
            expr = ast.IntLit(value=value)
        expr.node_id = self._node_id()
        return expr


def _class_type_of(name: str):
    from repro.lang.types import class_type

    return class_type(name)


def materialize(test: SynthesizedTest, vm: VM) -> MaterializedTest:
    """Bind a synthesized test to concrete objects in ``vm``.

    Raises:
        SynthesisError: when seed collection cannot supply the objects.
    """
    return Materializer(test, vm).materialize()
