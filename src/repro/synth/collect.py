"""``collectObjects`` (Algorithm 1, lines 1-4).

The synthesizer materializes plan slots by re-running seed tests and
*suspending* execution just before a method invocation of interest, then
storing references to the receiver and arguments of that pending
invocation.  Suspension matters: the objects are captured in exactly the
state the seed test drove them to at that point, and the rest of the
seed test never runs (so it cannot disturb them).

In VM terms: drive the seed test's main thread event by event and stop
at the (ordinal+1)-th client-level InvokeEvent — receiver and arguments
are already evaluated and are carried on the event itself; the method
body has not executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util.errors import SynthesisError
from repro.runtime.values import ObjRef, Value
from repro.runtime.vm import Execution, ThreadStatus, VM
from repro.trace.events import InvokeEvent

#: Safety bound on collection runs.
MAX_COLLECT_STEPS = 100_000


@dataclass(frozen=True)
class Capture:
    """Receiver and arguments of a suspended seed invocation."""

    receiver: ObjRef
    args: tuple[Value, ...]
    class_name: str
    method: str

    def arg_ref(self, index: int) -> ObjRef:
        value = self.args[index]
        if not isinstance(value, ObjRef):
            raise SynthesisError(
                f"argument {index} of collected {self.class_name}.{self.method} "
                f"is not an object (got {value!r})"
            )
        return value


class SeedCollector:
    """Collects object references from partial seed-test executions.

    All collections share one VM, so objects captured from different
    runs coexist on one heap — that is what lets ``shareObjects``
    rearrange them into a single racy test.
    """

    def __init__(self, vm: VM) -> None:
        self._vm = vm

    def collect(self, test_name: str, ordinal: int) -> Capture:
        """Run ``test_name`` until just before its ``ordinal``-th client
        invocation and capture that invocation's receiver/arguments.

        Raises:
            SynthesisError: when the seed test ends or faults before the
                requested invocation is reached.
        """
        test = self._vm.table.program.test_decl(test_name)
        if test is None:
            raise SynthesisError(f"unknown seed test {test_name}")

        captured: list[Capture] = []
        invocation_count = [0]

        class _Watcher:
            def on_event(self, event):
                if isinstance(event, InvokeEvent) and event.from_client:
                    if invocation_count[0] == ordinal:
                        captured.append(
                            Capture(
                                receiver=ObjRef(event.receiver, event.class_name),
                                args=event.args,
                                class_name=event.class_name,
                                method=event.method,
                            )
                        )
                    invocation_count[0] += 1

        env: dict[str, Value] = {}
        execution = Execution(self._vm, listeners=(_Watcher(),))
        tid = execution.spawn(
            lambda ctx: self._vm.interp.run_client_stmts(test.body.stmts, ctx, env),
            name=f"collect:{test_name}#{ordinal}",
        )
        thread = execution.thread(tid)
        steps = 0
        while not captured and thread.status in (
            ThreadStatus.RUNNABLE,
            ThreadStatus.BLOCKED,
        ):
            if steps >= MAX_COLLECT_STEPS:
                raise SynthesisError(
                    f"collection of {test_name}#{ordinal} exceeded step budget"
                )
            execution.step(tid)
            steps += 1
        if not captured:
            raise SynthesisError(
                f"seed test {test_name} ended before client invocation #{ordinal}"
                + (f" (thread {thread.status.value})" if thread.fault is None else
                   f" (fault: {thread.fault})")
            )
        # Suspend: the generator is simply abandoned here, leaving the
        # captured objects in their pre-invocation state.
        return captured[0]
