"""Stage 3 of Narada: test synthesis and execution (§3.4, Algorithm 1)."""

from repro.synth.collect import Capture, SeedCollector
from repro.synth.runner import RunOutcome, TestRunner
from repro.synth.synthesizer import (
    MaterializedTest,
    SynthesizedTest,
    TestSynthesizer,
    materialize,
    plan_signature,
)

__all__ = [
    "Capture",
    "MaterializedTest",
    "RunOutcome",
    "SeedCollector",
    "SynthesizedTest",
    "TestRunner",
    "TestSynthesizer",
    "materialize",
    "plan_signature",
]
