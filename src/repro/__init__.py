"""repro: a full reproduction of "Synthesizing Racy Tests" (PLDI 2015).

The package implements the Narada pipeline — sequential-trace analysis,
racy-pair generation, context derivation, and multithreaded test
synthesis — together with every substrate it needs: the MiniJ language
and VM, dynamic race detectors (Eraser, Djit+, FastTrack), a
RaceFuzzer-style confirming scheduler, the ConTeGe random baseline, and
the nine subject libraries of the paper's evaluation.

Quickstart::

    from repro import Narada
    from repro.subjects import get_subject

    subject = get_subject("C1")          # hazelcast WriteBehindQueue
    narada = Narada(subject.load())
    report = narada.synthesize_for_class(subject.class_name)
    detection = narada.detect(report)
    print(detection.detected, "races,", detection.harmful, "harmful")
"""

from repro.narada import DetectionReport, Narada, SynthesisReport

__all__ = ["DetectionReport", "Narada", "SynthesisReport"]
__version__ = "1.0.0"
