"""Maple-style interleaving coverage (Yu et al., OOPSLA 2012).

Maple — the last of the systematic-testing consumers the paper cites
(§6) — drives executions toward *untested interleavings*, modelled as
"iRoots": inter-thread dependencies between static sites.  We implement
the idea at the granularity our VM exposes: an interleaving unit is an
ordered pair of static sites ``(s1 -> s2)`` where the access at ``s2``
observed, on the same address and from a different thread, the access at
``s1`` as its immediate same-address predecessor, with at least one of
the two being a write.

:class:`CoverageGuidedFuzzer` keeps running fresh schedules until
``plateau`` consecutive runs add no new interleaving units — a
saturation-based stopping rule that adapts effort to each test instead
of a fixed run count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import (
    KernelSpec,
    SummarySpec,
    interest_union,
    run_sweep,
)
from repro.fuzz.probes import _fingerprint_row, _shift_row
from repro.detect.fasttrack import FastTrackDetector
from repro.detect.report import RaceSet
from repro.lang.classtable import ClassTable
from repro.runtime.scheduler import RandomScheduler
from repro.synth.runner import TestRunner
from repro.synth.synthesizer import SynthesizedTest
from repro.trace.columnar import OP_READ, OP_WRITE, ColumnarRecorder
from repro.trace.events import AccessEvent, Event, WriteEvent

#: An interleaving unit: (class, field, predecessor site, succ site).
InterleavingUnit = tuple[str, str, int, int]

# Sweep-kernel fragments (see analysis/sweep.py).  Units are *ordered*
# site pairs (predecessor -> successor) and, unlike the adjacency
# probe, there is no common-lock exclusion; a read only forms a unit
# when its predecessor was a write.
_READ_FRAGMENT = """\
P_previous = slot[SLOT]
slot[SLOT] = i
if P_previous is not None and tids[P_previous] != tid and ops[P_previous] == OP_WRITE:
    P_add((strtab[clss[i]], strtab[flds[i]], nodes[P_previous], nodes[i]))
"""

_WRITE_FRAGMENT = """\
P_previous = slot[SLOT]
slot[SLOT] = i
if P_previous is not None and tids[P_previous] != tid:
    P_add((strtab[clss[i]], strtab[flds[i]], nodes[P_previous], nodes[i]))
"""


@dataclass
class InterleavingCoverageProbe:
    """Listener collecting observed inter-thread dependency units."""

    name = "coverage"

    interests = (AccessEvent,)

    units: set[InterleavingUnit] = field(default_factory=set)
    _last_by_address: dict[tuple, AccessEvent] = field(default_factory=dict)

    def on_event(self, event: Event) -> None:
        if not isinstance(event, AccessEvent):
            return
        address = event.address()
        previous = self._last_by_address.get(address)
        self._last_by_address[address] = event
        if previous is None or previous.thread_id == event.thread_id:
            return
        if not (isinstance(previous, WriteEvent) or isinstance(event, WriteEvent)):
            return
        self.units.add(
            (event.class_name, event.field_name, previous.node_id, event.node_id)
        )

    def kernel_spec(self, packed) -> KernelSpec:
        # Block-summary hooks mirror AdjacencyProbe's: bare row-index
        # slot entries plus the ``units`` aggregate length.
        return KernelSpec(
            fragments={OP_READ: _READ_FRAGMENT, OP_WRITE: _WRITE_FRAGMENT},
            env={"add": self.units.add},
            summary=SummarySpec(
                fingerprint_entry=_fingerprint_row,
                shift_entry=_shift_row,
                fingerprint_extra=lambda touched, canon: len(self.units),
            ),
        )

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch twin of :meth:`on_event` over a packed trace (runs as
        a singleton sweep of the fused analysis engine)."""
        run_sweep((self,), packed, start=start, stop=stop)


@dataclass
class CoverageReport:
    """Outcome of coverage-guided fuzzing of one synthesized test."""

    test_name: str
    runs: int = 0
    units: set[InterleavingUnit] = field(default_factory=set)
    races: RaceSet = field(default_factory=RaceSet)
    #: Coverage size after each run (monotone; flat tail = saturation).
    growth: list[int] = field(default_factory=list)

    @property
    def saturated(self) -> bool:
        return (
            len(self.growth) >= 2 and self.growth[-1] == self.growth[-2]
        )


class CoverageGuidedFuzzer:
    """Run schedules until interleaving coverage stops growing."""

    def __init__(
        self,
        table: ClassTable,
        plateau: int = 4,
        max_runs: int = 40,
        vm_seed: int = 0,
    ) -> None:
        """
        Args:
            plateau: stop after this many consecutive runs without new
                interleaving units.
            max_runs: hard cap on schedules per test.
        """
        self._table = table
        self._plateau = plateau
        self._max_runs = max_runs
        self._vm_seed = vm_seed

    def fuzz(self, test: SynthesizedTest) -> CoverageReport:
        report = CoverageReport(test_name=test.name)
        interests = interest_union((InterleavingCoverageProbe, FastTrackDetector))
        stale = 0
        for run_index in range(self._max_runs):
            probe = InterleavingCoverageProbe()
            detector = FastTrackDetector()
            recorder = ColumnarRecorder(test.name, interests=interests)
            runner = TestRunner(
                self._table,
                vm_seed=self._vm_seed,
                listeners=(recorder,),
            )
            runner.run(
                test,
                RandomScheduler(seed=run_index * 2_654_435_761 + 1,
                                switch_bias=0.5),
            )
            run_sweep((probe, detector), recorder.packed)
            report.runs += 1
            before = len(report.units)
            report.units |= probe.units
            report.races.merge(detector.races)
            report.growth.append(len(report.units))
            if len(report.units) == before:
                stale += 1
                if stale >= self._plateau:
                    break
            else:
                stale = 0
        return report
