"""Chess-style iterative context-bounded systematic exploration.

Musuvathi & Qadeer, *Iterative context bounding for systematic testing
of multithreaded programs* (PLDI 2007) — cited by the paper (§6) as a
consumer of multithreaded tests.  Given a synthesized test, the explorer
enumerates **all** schedules with at most ``preemption_bound``
preemptions (a context switch taken while the current thread could have
continued), executing each on a fresh VM with detectors attached.

Because the VM is deterministic, stateless exploration is exact: a
schedule is fully described by its thread-choice sequence, and depth-
first enumeration over the branch points visits each bounded schedule
once.  Data races are depth-2 bugs, so a preemption bound of 2 finds
every race a synthesized test can express — with a *certificate*: the
exact schedule log that triggers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detect.fasttrack import FastTrackDetector
from repro.detect.report import RaceSet
from repro.lang.classtable import ClassTable
from repro.runtime.vm import ThreadStatus
from repro.synth.runner import TestRunner
from repro.synth.synthesizer import SynthesizedTest

#: Safety valves for the exhaustive search.
DEFAULT_MAX_SCHEDULES = 2_000
DEFAULT_MAX_STEPS = 4_000


@dataclass
class ChessResult:
    """Outcome of a bounded systematic exploration of one test."""

    test_name: str
    preemption_bound: int
    schedules_run: int = 0
    exhausted: bool = False
    """True when every schedule within the bound was executed."""
    races: RaceSet = field(default_factory=RaceSet)
    race_schedules: dict[tuple, list[int]] = field(default_factory=dict)
    """Race static key -> the first schedule (choice log) exposing it."""
    deadlock_schedules: list[list[int]] = field(default_factory=list)
    fault_schedules: list[list[int]] = field(default_factory=list)

    @property
    def race_count(self) -> int:
        return len(self.races)

    def first_schedule_for(self, key: tuple) -> list[int] | None:
        return self.race_schedules.get(key)


class BoundedExplorer:
    """Exhaustive schedule enumeration under a preemption bound."""

    def __init__(
        self,
        table: ClassTable,
        preemption_bound: int = 2,
        max_schedules: int = DEFAULT_MAX_SCHEDULES,
        max_steps: int = DEFAULT_MAX_STEPS,
        vm_seed: int = 0,
    ) -> None:
        self._table = table
        self._bound = preemption_bound
        self._max_schedules = max_schedules
        self._max_steps = max_steps
        self._vm_seed = vm_seed

    def explore(self, test: SynthesizedTest) -> ChessResult:
        """Run every schedule of ``test`` within the preemption bound."""
        result = ChessResult(
            test_name=test.name, preemption_bound=self._bound
        )
        # DFS over schedule prefixes.  Each stack entry is a list of
        # forced thread choices; execution continues non-preemptively
        # after the prefix, and every point where another thread could
        # have been chosen (within budget) spawns a new prefix.
        stack: list[list[int]] = [[]]
        seen_prefixes: set[tuple[int, ...]] = set()
        while stack and result.schedules_run < self._max_schedules:
            prefix = stack.pop()
            branches = self._run_schedule(test, prefix, result)
            for branch in branches:
                key = tuple(branch)
                if key not in seen_prefixes:
                    seen_prefixes.add(key)
                    stack.append(branch)
        result.exhausted = not stack
        return result

    # ------------------------------------------------------------------

    def _run_schedule(
        self, test: SynthesizedTest, prefix: list[int], result: ChessResult
    ) -> list[list[int]]:
        """Execute one schedule; returns newly discovered branch prefixes."""
        detector = FastTrackDetector()
        runner = TestRunner(
            self._table, vm_seed=self._vm_seed, listeners=(detector,)
        )
        prepared = runner.prepare(test)
        if not prepared.ok:
            return []
        execution = prepared.execution
        assert execution is not None

        choices: list[int] = []
        branches: list[list[int]] = []
        preemptions = 0
        last: int | None = None
        step = 0
        while step < self._max_steps:
            runnable = sorted(execution.runnable_threads())
            if not runnable:
                break
            if len(choices) < len(prefix):
                chosen = prefix[len(choices)]
                if chosen not in runnable:
                    # Replay divergence (should not happen in a
                    # deterministic VM); abandon this prefix.
                    return []
            else:
                chosen = last if last in runnable else runnable[0]
                # Branch points: scheduling any *other* runnable thread.
                for alternative in runnable:
                    if alternative == chosen:
                        continue
                    cost = 1 if (last in runnable and alternative != last) else 0
                    if preemptions + cost <= self._bound:
                        branches.append(choices + [alternative])
            if last is not None and last in runnable and chosen != last:
                preemptions += 1
            choices.append(chosen)
            execution.step(chosen)
            last = chosen
            step += 1

        runner.finish(prepared, _DrainScheduler())
        result.schedules_run += 1
        self._absorb(result, detector, choices, execution)
        return branches

    @staticmethod
    def _absorb(result: ChessResult, detector, choices, execution) -> None:
        for record in detector.races:
            key = record.static_key()
            if result.races.add(record):
                result.race_schedules[key] = list(choices)
            else:
                result.race_schedules.setdefault(key, list(choices))
        live = execution.live_threads()
        if live and all(
            execution.thread(t).status is ThreadStatus.BLOCKED for t in live
        ):
            result.deadlock_schedules.append(list(choices))
        for tid in execution.thread_ids():
            if execution.thread(tid).status is ThreadStatus.FAULTED:
                result.fault_schedules.append(list(choices))
                break


class _DrainScheduler:
    """Round-robin finisher used after the controlled phase ends."""

    def pick(self, runnable, last):
        return sorted(runnable)[0]


def explore_test(
    table: ClassTable,
    test: SynthesizedTest,
    preemption_bound: int = 2,
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
) -> ChessResult:
    """Convenience wrapper over :class:`BoundedExplorer`."""
    explorer = BoundedExplorer(
        table, preemption_bound=preemption_bound, max_schedules=max_schedules
    )
    return explorer.explore(test)
