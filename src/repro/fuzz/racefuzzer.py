"""RaceFuzzer-style schedule fuzzing over synthesized tests.

The paper feeds Narada's tests to RaceFuzzer (Sen, PLDI 2008), which
(1) detects candidate races with a hybrid detector and (2) *confirms*
them by steering the scheduler so the two accesses execute back to back.
Our analogue does the same over the MiniJ VM:

* **random phase** — run the synthesized test under several seeded
  random schedules with the FastTrack and Eraser detectors attached;
  union the reported races.  An :class:`AdjacencyProbe` marks races that
  already manifested as adjacent conflicting accesses.
* **directed phase** — for every candidate race not yet confirmed, take
  a fresh prepared run and drive one racy thread until it performs the
  first access of the pair, then drive the other thread toward the
  second access on the *same address*.  Success means the race was
  reproduced in a concrete execution (the paper's "Reproduced" column);
  candidates that never confirm correspond to the "Manual" column.

Since PR 3 the detectors are decoupled from execution: each run records
its detector-relevant event stream into a :class:`PackedTrace` (one
listener, columnar storage, identical elision/scheduling to attaching
the detectors directly) and the detectors consume it afterwards — now
as one **fused sweep** of the analysis engine (analysis/sweep.py): the
trace is decoded once and FastTrack, Eraser, and the adjacency probe
run as passes of a single generated loop.  That split enables
**interleaving-digest memoization**: runs of one test whose packed
streams digest equal would feed the detectors bit-identical input, so
the detector replay is skipped and the memoized race sets are unioned
instead.  Directed attempts in particular re-produce the same
interleaving over and over (every candidate pair whose sites never
fire degenerates to the same drive-to-completion schedule), so the
memo hit rate is substantial exactly where the old path burned the
most redundant detector work.  See DESIGN.md §8 for why a digest match
is sound.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.analysis.sweep import SweepStats, interest_union, memo_key, run_sweep
from repro.detect.eraser import EraserDetector
from repro.detect.fasttrack import FastTrackDetector
from repro.detect.report import RaceRecord, RaceSet, collect_constant_write_sites
from repro.fuzz.probes import AdjacencyProbe
from repro.lang.classtable import ClassTable
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler
from repro.runtime.vm import ThreadStatus
from repro.synth.runner import PreparedRun, TestRunner
from repro.synth.synthesizer import SynthesizedTest
from repro.trace.columnar import ColumnarRecorder, PackedTrace
from repro.trace.compressed import compress_trace
from repro.trace.events import AccessEvent

#: Step budget for each phase of a directed confirmation attempt.
DIRECTED_PHASE_STEPS = 20_000

#: Packed traces at or above this many rows are run through
#: :func:`compress_trace` before the sweep so repeat blocks can be
#: summarized instead of re-decoded.  Content-derived (row count), so a
#: run compresses identically serially or on any pool worker; below the
#: threshold the detection scan costs more than it could save.
COMPRESS_MIN_ROWS = 256

#: The fuzz analysis stack, swept fused over each recorded run.
_FUZZ_PASSES = (FastTrackDetector, EraserDetector, AdjacencyProbe)
_FUZZ_PASS_NAMES = tuple(p.name for p in _FUZZ_PASSES)

#: Recorder interest set: the union of the stack's declared interests,
#: so recording elides/schedules exactly like attaching the passes as
#: live listeners (see interest_union in analysis/sweep.py).
_FUZZ_INTERESTS = interest_union(_FUZZ_PASSES)


def schedule_seed(test_name: str, run_index: int) -> int:
    """Deterministic schedule seed for one fuzz run of one test.

    Derived purely from content — never from loop position, process
    identity, or pool scheduling — so a test fuzzes identically whether
    the run happens serially or on any worker of a process pool.  (A
    plain ``hash()`` would not do: Python randomizes string hashing per
    process.)
    """
    digest = hashlib.sha256(
        f"{test_name}\x1f{run_index}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FuzzReport:
    """Outcome of fuzzing one synthesized test."""

    test: SynthesizedTest
    detected: RaceSet = field(default_factory=RaceSet)
    reproduced: set[tuple] = field(default_factory=set)
    confirmed_raw: set[tuple] = field(default_factory=set)
    """Adjacency confirmations, including ones whose race record only
    appears in a later run; intersected with detections after each run."""
    random_runs: int = 0
    directed_attempts: int = 0
    deadlocks: int = 0
    faults: int = 0
    timeouts: int = 0
    synthesis_failed: bool = False
    failure_trace: str | None = None
    """Full traceback of the synthesis/collection failure, when one was
    swallowed into ``synthesis_failed`` — triage evidence, not debris."""
    constant_sites: set[int] = field(default_factory=set)
    """Constant-RHS write sites of the program (benign classification)."""
    trace_events: int = 0
    """Total packed events recorded across every run of this test."""
    packed_bytes: int = 0
    """Total packed-trace bytes across every run (columns + tables)."""
    memo_hits: int = 0
    """Runs whose interleaving digest matched a prior run: detector
    replay skipped, races unioned from the memo."""
    memo_misses: int = 0
    """Runs that actually replayed the detectors (first-seen digests)."""
    compressed_rows: int = 0
    """Sum of compressed-plan rows (literal rows + one period per
    repeat block) across the runs that replayed the detectors."""
    repeat_blocks: int = 0
    """Repeat blocks the sweeps encountered across replayed runs."""
    rows_skipped: int = 0
    """Rows covered by a converged block summary instead of decoding."""
    budget_runs: int = 0
    """Random-phase runs this test was budgeted (the static pre-filter
    halves the budget for deadlock-watch tests; equals the configured
    ``random_runs`` when no budget was applied)."""
    rank_score: int = 0
    """Max static risk score of the ranked pairs this test covers (0
    when the static pre-filter was off)."""

    def reproduced_records(self) -> list[RaceRecord]:
        return [r for r in self.detected if r.static_key() in self.reproduced]

    def unreproduced_records(self) -> list[RaceRecord]:
        return [r for r in self.detected if r.static_key() not in self.reproduced]

    def harmful(self) -> list[RaceRecord]:
        return [
            r
            for r in self.reproduced_records()
            if not r.is_benign(self.constant_sites)
        ]

    def benign(self) -> list[RaceRecord]:
        return [
            r for r in self.reproduced_records() if r.is_benign(self.constant_sites)
        ]

    @property
    def race_count(self) -> int:
        return len(self.detected)

    def describe(self) -> str:
        lines = [
            f"{self.test.name}: {len(self.detected)} race(s) detected, "
            f"{len(self.reproduced)} reproduced "
            f"({len(self.harmful())} harmful, {len(self.benign())} benign)"
        ]
        for record in self.detected:
            marker = "*" if record.static_key() in self.reproduced else " "
            lines.append(f" {marker} {record.describe(self.constant_sites)}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Canonical dict form (see :mod:`repro.narada.serial`)."""
        from repro.narada.serial import encode_fuzz_bundle

        return encode_fuzz_bundle(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzReport":
        from repro.narada.serial import decode_fuzz_bundle

        return decode_fuzz_bundle(data)


class RaceFuzzer:
    """Detects and confirms races in synthesized multithreaded tests."""

    def __init__(
        self,
        table: ClassTable,
        random_runs: int = 8,
        vm_seed: int = 0,
        directed: bool = True,
    ) -> None:
        self._table = table
        self._random_runs = random_runs
        self._vm_seed = vm_seed
        self._directed = directed

    def fuzz(
        self,
        test: SynthesizedTest,
        runs: int | None = None,
        rank_score: int = 0,
    ) -> FuzzReport:
        """Fuzz one test, optionally under a per-test run budget.

        ``runs`` overrides the configured random-phase run count for
        this call (the staged candidate pipeline allocates budgets per
        test from the static verdicts); schedule seeds still depend
        only on (test name, run index), so a budgeted prefix of runs is
        bit-identical to the same prefix of a full fuzz.
        """
        budget = self._random_runs if runs is None else runs
        report = FuzzReport(
            test=test,
            constant_sites=collect_constant_write_sites(self._table.program),
            budget_runs=budget,
            rank_score=rank_score,
        )
        # The interleaving-digest memo is scoped to this one fuzz()
        # call: sharing it across tests would make the hit counters
        # depend on which tests a worker happened to fuzz before this
        # one, breaking the bit-identical-to-serial contract.
        memo: dict[str, tuple] = {}
        try:
            self._random_phase(test, report, memo, budget)
            if self._directed:
                self._directed_phase(test, report, memo)
        except Exception as error:  # synthesis/collection failures
            import traceback

            from repro._util.errors import SynthesisError

            if isinstance(error, SynthesisError):
                # Absorbed into the report, but with the evidence kept:
                # the stack is what a triage actually needs.
                report.synthesis_failed = True
                report.failure_trace = traceback.format_exc()
                return report
            raise
        return report

    # ------------------------------------------------------------------
    # Random phase.

    def _random_phase(
        self, test: SynthesizedTest, report: FuzzReport, memo: dict, runs: int
    ) -> None:
        for run_index in range(runs):
            recorder = ColumnarRecorder.create(test.name, interests=_FUZZ_INTERESTS)
            runner = TestRunner(
                self._table,
                vm_seed=self._vm_seed,
                listeners=(recorder,),
            )
            outcome = runner.run(
                test, RandomScheduler(seed=schedule_seed(test.name, run_index))
            )
            report.random_runs += 1
            self._absorb(report, outcome, recorder.packed, memo)

    def _absorb(
        self, report: FuzzReport, outcome, packed: PackedTrace, memo: dict
    ) -> None:
        """Fold one run's packed trace into the report, memoizing by
        interleaving digest.

        A digest hit means this run's detector-relevant event stream is
        byte-identical to an earlier run's, so replaying the (pure)
        detectors would reproduce exactly the memoized race sets —
        union those instead of feeding the detectors again.
        """
        report.trace_events += len(packed)
        report.packed_bytes += packed.nbytes()
        digest = memo_key(_FUZZ_PASS_NAMES, packed)
        entry = memo.get(digest)
        if entry is None:
            report.memo_misses += 1
            fasttrack = FastTrackDetector()
            eraser = EraserDetector()
            probe = AdjacencyProbe()
            # Long traces get a compressed segment plan first: the sweep
            # replays each repeat block until its state transform
            # converges, then applies the summary to the rest
            # (bit-identical results — DESIGN.md §13).
            trace = packed
            if len(packed) >= COMPRESS_MIN_ROWS:
                trace = compress_trace(packed)
                report.compressed_rows += trace.stats().compressed_rows
            else:
                report.compressed_rows += len(packed)
            stats = SweepStats()
            run_sweep((fasttrack, eraser, probe), trace, stats=stats)
            report.repeat_blocks += stats.repeat_blocks
            report.rows_skipped += stats.rows_skipped
            entry = memo[digest] = (
                fasttrack.races,
                eraser.races,
                probe.confirmed,
            )
        else:
            report.memo_hits += 1
        fasttrack_races, eraser_races, confirmed = entry
        report.detected.merge(fasttrack_races)
        report.detected.merge(eraser_races)
        report.confirmed_raw |= confirmed
        report.reproduced = report.confirmed_raw & report.detected.static_keys()
        result = outcome.concurrent_result
        if result is not None:
            if result.deadlocked:
                report.deadlocks += 1
            if result.timed_out:
                report.timeouts += 1
            report.faults += len(result.faults)

    # ------------------------------------------------------------------
    # Directed phase.

    def _directed_phase(
        self, test: SynthesizedTest, report: FuzzReport, memo: dict
    ) -> None:
        candidates = [
            record
            for record in report.detected
            if record.static_key() not in report.reproduced
        ]
        # Also target the pairs the synthesis aimed at, even if the
        # random phase missed them entirely.
        site_targets = {
            (record.first.node_id, record.second.node_id): record
            for record in candidates
        }
        # Sorted: set iteration order depends on insertion history, and a
        # test rebuilt from its serialized form inserts sites in a
        # different order than the synthesizer did.  Attempt order must be
        # a function of content only.
        for sites in sorted(test.target_sites()):
            site_targets.setdefault(sites, None)

        def settled(sites: tuple[int, int], record) -> bool:
            if record is not None:
                return record.static_key() in report.reproduced
            return any(key[2] == sites for key in report.confirmed_raw)

        for (site_a, site_b), record in site_targets.items():
            sites = (min(site_a, site_b), max(site_a, site_b))
            if settled(sites, record):
                continue
            orders = [(site_a, site_b)]
            if site_a != site_b:
                orders.append((site_b, site_a))
            for first, second in orders:
                for leader in (0, 1):
                    self._directed_attempt(
                        test, report, first, second, leader, memo
                    )
                    if settled(sites, record):
                        break
                else:
                    continue
                break

    def _directed_attempt(
        self,
        test: SynthesizedTest,
        report: FuzzReport,
        first_site: int,
        second_site: int,
        leader: int,
        memo: dict,
    ) -> bool:
        recorder = ColumnarRecorder.create(test.name, interests=_FUZZ_INTERESTS)
        runner = TestRunner(
            self._table,
            vm_seed=self._vm_seed,
            listeners=(recorder,),
        )
        prepared = runner.prepare(test)
        report.directed_attempts += 1
        if not prepared.ok:
            return False
        assert prepared.thread_ids is not None
        lead_tid = prepared.thread_ids[leader]
        chase_tid = prepared.thread_ids[1 - leader]

        address = self._drive_until(prepared, lead_tid, chase_tid, first_site, None)
        confirmed = False
        if address is not None:
            hit = self._drive_until(
                prepared, chase_tid, lead_tid, second_site, address
            )
            confirmed = hit is not None
        # Drain so detectors see a complete execution and threads finish.
        outcome = runner.finish(prepared, RoundRobinScheduler())
        self._absorb(report, outcome, recorder.packed, memo)
        return confirmed

    @staticmethod
    def _drive_until(
        prepared: PreparedRun,
        preferred: int,
        other: int,
        site: int,
        address: tuple | None,
    ):
        """Step ``preferred`` until it performs an access at ``site``
        (optionally on ``address``); returns the address or None."""
        execution = prepared.execution
        assert execution is not None
        for _ in range(DIRECTED_PHASE_STEPS):
            status = execution.thread(preferred).status
            if status in (ThreadStatus.DONE, ThreadStatus.FAULTED):
                return None
            if status is ThreadStatus.BLOCKED:
                # Let the other thread run one event to release monitors.
                other_status = execution.thread(other).status
                if other_status is ThreadStatus.RUNNABLE:
                    execution.step(other)
                    continue
                return None
            event = execution.step(preferred)
            if (
                isinstance(event, AccessEvent)
                and event.node_id == site
                and (address is None or event.address() == address)
            ):
                return event.address()
        return None
