"""Execution probes used by the fuzzing layer.

:class:`AdjacencyProbe` observes a concurrent execution and records
every pair of *temporally adjacent conflicting accesses*: two successive
accesses **to the same address** (other addresses may be touched in
between) from different threads, at least one a write, with no common
lock held.  When such a pair occurs the race has *manifested* in the
concrete execution — this is the confirmation criterion our RaceFuzzer
analogue uses for the paper's "reproduced" column, and it matches
RaceFuzzer's semantics: one thread is paused at an access while the
other runs up to the conflicting access, regardless of what unrelated
memory it touches on the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.events import AccessEvent, Event, WriteEvent


@dataclass
class AdjacencyProbe:
    """Records site pairs of adjacent conflicting same-address accesses."""

    interests = (AccessEvent,)

    #: (class_name, field_name, sorted site pair) for each manifestation.
    confirmed: set[tuple] = field(default_factory=set)
    _last_by_address: dict[tuple, AccessEvent] = field(default_factory=dict)

    def on_event(self, event: Event) -> None:
        if not isinstance(event, AccessEvent):
            return
        address = event.address()
        previous = self._last_by_address.get(address)
        self._last_by_address[address] = event
        if previous is None:
            return
        if previous.thread_id == event.thread_id:
            return
        if not (isinstance(previous, WriteEvent) or isinstance(event, WriteEvent)):
            return
        if previous.locks_held & event.locks_held:
            return
        sites = tuple(sorted((previous.node_id, event.node_id)))
        self.confirmed.add((event.class_name, event.field_name, sites))


@dataclass
class SiteWatcher:
    """Remembers the most recent access per static site (directed runs)."""

    interests = (AccessEvent,)

    last_by_site: dict[int, AccessEvent] = field(default_factory=dict)
    last_event: AccessEvent | None = None

    def on_event(self, event: Event) -> None:
        if isinstance(event, AccessEvent):
            self.last_by_site[event.node_id] = event
            self.last_event = event
