"""Execution probes used by the fuzzing layer.

:class:`AdjacencyProbe` observes a concurrent execution and records
every pair of *temporally adjacent conflicting accesses*: two successive
accesses **to the same address** (other addresses may be touched in
between) from different threads, at least one a write, with no common
lock held.  When such a pair occurs the race has *manifested* in the
concrete execution — this is the confirmation criterion our RaceFuzzer
analogue uses for the paper's "reproduced" column, and it matches
RaceFuzzer's semantics: one thread is paused at an access while the
other runs up to the conflicting access, regardless of what unrelated
memory it touches on the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.columnar import OP_READ, OP_WRITE
from repro.trace.events import AccessEvent, Event, WriteEvent


@dataclass
class AdjacencyProbe:
    """Records site pairs of adjacent conflicting same-address accesses."""

    interests = (AccessEvent,)

    #: (class_name, field_name, sorted site pair) for each manifestation.
    confirmed: set[tuple] = field(default_factory=set)
    _last_by_address: dict[tuple, AccessEvent] = field(default_factory=dict)

    def on_event(self, event: Event) -> None:
        if not isinstance(event, AccessEvent):
            return
        address = event.address()
        previous = self._last_by_address.get(address)
        self._last_by_address[address] = event
        if previous is None:
            return
        if previous.thread_id == event.thread_id:
            return
        if not (isinstance(previous, WriteEvent) or isinstance(event, WriteEvent)):
            return
        if previous.locks_held & event.locks_held:
            return
        sites = tuple(sorted((previous.node_id, event.node_id)))
        self.confirmed.add((event.class_name, event.field_name, sites))

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch twin of :meth:`on_event` over a :class:`PackedTrace`.

        Adjacency is tracked per interned address id (bijective with
        the event-model address), remembering row indices.  Do not mix
        packed and object feeding on one probe instance.
        """
        ops = packed.op
        tids = packed.tid
        nodes = packed.node
        adrs = packed.adr
        lcks = packed.lck
        locktab = packed.locktab
        last = self._last_by_address
        confirmed = self.confirmed
        if stop is None:
            stop = len(ops)
        for i in range(start, stop):
            op = ops[i]
            if op != OP_READ and op != OP_WRITE:
                continue
            address = adrs[i]
            previous = last.get(address)
            last[address] = i
            if previous is None:
                continue
            if tids[previous] == tids[i]:
                continue
            if op != OP_WRITE and ops[previous] != OP_WRITE:
                continue
            if locktab[lcks[previous]] & locktab[lcks[i]]:
                continue
            pair = (nodes[previous], nodes[i])
            sites = pair if pair[0] <= pair[1] else (pair[1], pair[0])
            confirmed.add(
                (
                    packed.strtab[packed.cls[i]],
                    packed.strtab[packed.fld[i]],
                    sites,
                )
            )


@dataclass
class SiteWatcher:
    """Remembers the most recent access per static site (directed runs)."""

    interests = (AccessEvent,)

    last_by_site: dict[int, AccessEvent] = field(default_factory=dict)
    last_event: AccessEvent | None = None

    def on_event(self, event: Event) -> None:
        if isinstance(event, AccessEvent):
            self.last_by_site[event.node_id] = event
            self.last_event = event
