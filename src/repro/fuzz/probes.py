"""Execution probes used by the fuzzing layer.

:class:`AdjacencyProbe` observes a concurrent execution and records
every pair of *temporally adjacent conflicting accesses*: two successive
accesses **to the same address** (other addresses may be touched in
between) from different threads, at least one a write, with no common
lock held.  When such a pair occurs the race has *manifested* in the
concrete execution — this is the confirmation criterion our RaceFuzzer
analogue uses for the paper's "reproduced" column, and it matches
RaceFuzzer's semantics: one thread is paused at an access while the
other runs up to the conflicting access, regardless of what unrelated
memory it touches on the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import KernelSpec, SummarySpec, run_sweep
from repro.trace.columnar import OP_READ, OP_WRITE
from repro.trace.events import AccessEvent, Event, WriteEvent

# Sweep-kernel fragments (see analysis/sweep.py): adjacency tracked per
# interned address id in the shared slot list, remembering row indices.
# The read rule additionally requires the previous access to be a write.
_READ_FRAGMENT = """\
P_previous = slot[SLOT]
slot[SLOT] = i
if P_previous is not None and tids[P_previous] != tid and ops[P_previous] == OP_WRITE:
    if not (locktab[lcks[P_previous]] & locktab[lcks[i]]):
        P_a = nodes[P_previous]
        P_b = nodes[i]
        P_add((strtab[clss[i]], strtab[flds[i]], (P_a, P_b) if P_a <= P_b else (P_b, P_a)))
"""

_WRITE_FRAGMENT = """\
P_previous = slot[SLOT]
slot[SLOT] = i
if P_previous is not None and tids[P_previous] != tid:
    if not (locktab[lcks[P_previous]] & locktab[lcks[i]]):
        P_a = nodes[P_previous]
        P_b = nodes[i]
        P_add((strtab[clss[i]], strtab[flds[i]], (P_a, P_b) if P_a <= P_b else (P_b, P_a)))
"""


def _fingerprint_row(entry, canon):
    """Slot entries are bare previous-row indices; canon them directly."""
    return canon(entry)


def _shift_row(entry: int, lo: int, hi: int, delta: int) -> int:
    return entry + delta if lo <= entry < hi else entry


@dataclass
class AdjacencyProbe:
    """Records site pairs of adjacent conflicting same-address accesses."""

    name = "adjacency"

    interests = (AccessEvent,)

    #: (class_name, field_name, sorted site pair) for each manifestation.
    confirmed: set[tuple] = field(default_factory=set)
    _last_by_address: dict[tuple, AccessEvent] = field(default_factory=dict)

    def on_event(self, event: Event) -> None:
        if not isinstance(event, AccessEvent):
            return
        address = event.address()
        previous = self._last_by_address.get(address)
        self._last_by_address[address] = event
        if previous is None:
            return
        if previous.thread_id == event.thread_id:
            return
        if not (isinstance(previous, WriteEvent) or isinstance(event, WriteEvent)):
            return
        if previous.locks_held & event.locks_held:
            return
        sites = tuple(sorted((previous.node_id, event.node_id)))
        self.confirmed.add((event.class_name, event.field_name, sites))

    def kernel_spec(self, packed) -> KernelSpec:
        # Block-summary hooks: the slot entry is the raw previous-row
        # index; confirmations derive from signature columns only, and
        # ``confirmed`` is a set, so a converged block's repeats are
        # pure re-adds (len(confirmed) is fingerprinted to prove it).
        return KernelSpec(
            fragments={OP_READ: _READ_FRAGMENT, OP_WRITE: _WRITE_FRAGMENT},
            env={"add": self.confirmed.add},
            summary=SummarySpec(
                fingerprint_entry=_fingerprint_row,
                shift_entry=_shift_row,
                fingerprint_extra=lambda touched, canon: len(self.confirmed),
            ),
        )

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch twin of :meth:`on_event` over a :class:`PackedTrace`.

        Runs as a singleton sweep of the fused analysis engine;
        adjacency is tracked per interned address id (bijective with
        the event-model address), remembering row indices.  Do not mix
        packed and object feeding on one probe instance.
        """
        run_sweep((self,), packed, start=start, stop=stop)


@dataclass
class SiteWatcher:
    """Remembers the most recent access per static site (directed runs)."""

    interests = (AccessEvent,)

    last_by_site: dict[int, AccessEvent] = field(default_factory=dict)
    last_event: AccessEvent | None = None

    def on_event(self, event: Event) -> None:
        if isinstance(event, AccessEvent):
            self.last_by_site[event.node_id] = event
            self.last_event = event
