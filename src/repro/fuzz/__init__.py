"""Schedule fuzzing and systematic exploration of synthesized tests."""

from repro.fuzz.chess import BoundedExplorer, ChessResult, explore_test
from repro.fuzz.probes import AdjacencyProbe, SiteWatcher
from repro.fuzz.racefuzzer import FuzzReport, RaceFuzzer

__all__ = [
    "AdjacencyProbe",
    "BoundedExplorer",
    "ChessResult",
    "FuzzReport",
    "RaceFuzzer",
    "SiteWatcher",
    "explore_test",
]

from repro.fuzz.coverage import (
    CoverageGuidedFuzzer,
    CoverageReport,
    InterleavingCoverageProbe,
)

__all__ += [
    "CoverageGuidedFuzzer",
    "CoverageReport",
    "InterleavingCoverageProbe",
]
