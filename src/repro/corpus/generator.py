"""Seeded, deterministic composition of templates into subjects.

Determinism contract:

* subject ``i`` of seed ``s`` depends only on ``(s, i)`` and the
  template pool — its per-subject RNG is seeded from
  ``sha256(s, i)``, so changing ``--count`` never perturbs earlier
  subjects, and generation order (or parallel scoring order) cannot
  matter;
* the canonical source is the pretty-printed program — the same
  normal form :func:`repro.narada.cache.table_digest` hashes, so cache
  keys for generated subjects are content-addressed exactly like the
  hand-ported ones (two seeds producing an identical class share every
  pipeline artifact);
* the provenance header is a ``/* ... */`` comment, which the digest
  (computed from the re-pretty-printed parse) deliberately ignores.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.corpus.oracle import OracleVerdict, derive_races
from repro.corpus.templates import SHARED_HELPERS, TEMPLATES, template_names
from repro.lang.build import new, program, test_decl, vdecl
from repro.lang.build import class_decl as build_class
from repro.lang.build import constructor as build_ctor
from repro.lang.pretty import pretty_program


@dataclass(frozen=True)
class CorpusConfig:
    """Everything subject generation depends on (and nothing else)."""

    seed: int = 0
    count: int = 200
    templates: tuple[str, ...] = template_names()
    min_templates: int = 2
    max_templates: int = 4
    key_prefix: str = "G"

    def validate(self) -> "CorpusConfig":
        unknown = [t for t in self.templates if t not in TEMPLATES]
        if unknown:
            raise ValueError(
                f"unknown template(s) {unknown}; known: {list(TEMPLATES)}"
            )
        if not self.templates:
            raise ValueError("template pool is empty")
        if not 1 <= self.min_templates <= self.max_templates:
            raise ValueError("need 1 <= min_templates <= max_templates")
        return self


@dataclass(frozen=True)
class GeneratedSubject:
    """One generated subject: canonical source plus its ground truth."""

    key: str
    class_name: str
    source: str
    verdict: OracleVerdict

    @property
    def template_keys(self) -> tuple[str, ...]:
        return self.verdict.template_keys


def subject_rng(seed: int, index: int) -> random.Random:
    """Per-subject RNG keyed by (corpus seed, subject index) only."""
    digest = hashlib.sha256(f"repro-corpus/{seed}/{index}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def compose_subject(
    template_keys: list[str] | tuple[str, ...],
    class_name: str,
    key: str,
    rng: random.Random | None = None,
    header: str | None = None,
) -> GeneratedSubject:
    """Build one subject from an explicit template composition.

    The deterministic core shared by seeded generation and by tests
    that need a *specific* composition (the oracle-soundness suite
    instantiates each template in isolation through this).
    """
    rng = rng if rng is not None else random.Random(0)
    instances = [TEMPLATES[t](n, rng) for n, t in enumerate(template_keys)]

    shared = [
        name
        for name in SHARED_HELPERS
        if any(name in inst.shared_helpers for inst in instances)
    ]
    helper_classes = [SHARED_HELPERS[name]() for name in shared]
    for inst in instances:
        helper_classes.extend(inst.helper_classes)

    ctor_stmts = [s for inst in instances for s in inst.ctor_stmts]
    main = build_class(
        class_name,
        fields=[f for inst in instances for f in inst.fields],
        methods=[build_ctor(class_name, [], ctor_stmts)]
        + [m for inst in instances for m in inst.methods],
    )
    seed_stmts = [vdecl(class_name, "o", new(class_name))] + [
        s for inst in instances for s in inst.seed_stmts
    ]
    built = program(
        classes=helper_classes + [main],
        tests=[test_decl("Seed", seed_stmts)],
    )

    specs = [a for inst in instances for a in inst.accesses]
    verdict = OracleVerdict(
        class_name=class_name,
        races=derive_races(specs),
        deadlock_potential=any(inst.deadlock_potential for inst in instances),
        template_keys=tuple(template_keys),
    )
    source = pretty_program(built)
    if header:
        source = f"/* {header} */\n\n{source}"
    return GeneratedSubject(
        key=key, class_name=class_name, source=source, verdict=verdict
    )


def generate_subject(
    config: CorpusConfig, index: int
) -> GeneratedSubject:
    """Subject ``index`` of the configured corpus."""
    config.validate()
    rng = subject_rng(config.seed, index)
    width = rng.randint(config.min_templates, config.max_templates)
    chosen = [rng.choice(config.templates) for _ in range(width)]
    class_name = f"Gen{index:03d}"
    return compose_subject(
        chosen,
        class_name=class_name,
        key=f"{config.key_prefix}{index:03d}",
        rng=rng,
        header=(
            f"corpus subject: seed={config.seed} index={index} "
            f"templates={','.join(chosen)}"
        ),
    )


def generate_corpus(config: CorpusConfig) -> list[GeneratedSubject]:
    """All ``config.count`` subjects, in index order."""
    config.validate()
    return [generate_subject(config, i) for i in range(config.count)]


def register_corpus(config: CorpusConfig):
    """Generate the corpus and register it with :mod:`repro.subjects`.

    Returns the registered :class:`SubjectInfo` list.  Registration is
    idempotent — re-registering the identical corpus is a no-op, while a
    key collision with *different* content (two corpora sharing a
    ``key_prefix``) still fails loudly.
    """
    from repro.subjects import PaperNumbers, SubjectInfo, register

    infos = []
    for subject in generate_corpus(config):
        verdict = subject.verdict
        info = SubjectInfo(
            key=subject.key,
            benchmark="generated",
            version=f"seed{config.seed}",
            class_name=subject.class_name,
            description=(
                "generated corpus subject "
                f"({', '.join(subject.template_keys)})"
            ),
            source=subject.source,
            # The oracle is this subject's "paper numbers": the ground
            # truth the harness scores against.
            paper=PaperNumbers(
                methods=len(subject.template_keys) * 2,
                loc=len(subject.source.splitlines()),
                race_pairs=len(verdict.races),
                tests=1,
                time_seconds=0.0,
                races_detected=len(verdict.races),
                harmful=verdict.harmful_count(),
                benign=verdict.benign_count(),
            ),
        )
        infos.append(register(info))
    return infos
