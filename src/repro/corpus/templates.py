"""Locking-discipline templates: the corpus generator's building blocks.

Each template manufactures one *slice* of a generated class — fields,
methods, constructor statements, seed-test statements, and the
:class:`~repro.corpus.oracle.AccessSpec` list its ground truth derives
from.  A template function takes the instance index ``n`` (every name it
emits is suffixed with ``n``, so arbitrarily many instances compose into
one class without collisions) and the subject's RNG (used only to vary
literal constants — structure is never randomized, so the oracle
construction stays syntax-directed).

The eight disciplines, and what each contributes to the corpus:

====================== ====================================================
``wrong_mutex``        C1's headline defect: a reset path guards the data
                       with a *different* monitor than the synchronized
                       accessors — mutual exclusion in name only.
``unguarded_reader``   C3's defect: a bare read racing a synchronized
                       writer.
``double_checked_init`` The classic broken DCL: unguarded fast-path read
                       racing the lock-guarded initializing write, plus an
                       unguarded teardown write.
``lock_order_inversion`` Two monitors taken in opposite orders: **no**
                       race (every data access holds both), but deadlock
                       potential — exercises the verdict's second axis.
``benign_constant_reset`` C6's pattern: two unguarded resets writing the
                       same constant (benign races) alongside a
                       synchronized parameter write (harmful ones).
``guarded_stale_publication`` A flag-guarded publish where the reader
                       checks the flag without any lock: races on both the
                       flag and the payload.  The reader loads both fields
                       unconditionally (guard tested on locals) so every
                       oracle race is expressed in *every* schedule — the
                       recall gate must not depend on schedule luck.
``thread_local_receiver`` The false-alarm control: a method reading a
                       caller-supplied object statically pairs with a
                       method writing a *fresh, non-escaping* object.
                       Narada generates the candidate pair; the context
                       deriver's ⊥-owner fallback yields a no-sharing
                       test; no race is dynamically possible.  Keeps the
                       corpus's precision measurement honest.
``consistent_lock``    The disciplined control: writer and reader both
                       guard the data with the *same* dedicated lock
                       object (not the receiver's monitor), so the
                       dynamic analysis still flags both accesses as
                       unprotected and pairs them — but no interleaving
                       can race.  Exercises the static pre-filter's
                       consistent-lock prune rule and keeps the pruned
                       fraction measurable.
====================== ====================================================

Seed statements assume the test body declares the shared receiver as
local ``o`` (the generator emits it) and must invoke every method once
— client invocations are what bootstrap controllability in the trace
analysis, and the synthesizer's :class:`SeedCollector` replays them to
capture receivers and arguments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field

from repro.corpus.oracle import AccessSpec
from repro.lang import ast
from repro.lang.build import (
    assign,
    binop,
    call,
    class_decl,
    constructor,
    eq,
    expr_stmt,
    field_decl,
    get,
    iff,
    lit,
    method,
    new,
    null,
    param,
    ret,
    set_field,
    set_this,
    sync,
    this,
    this_get,
    var,
    vdecl,
)
from repro.lang.types import INT, VOID

#: Shared helper classes, emitted once per program when any instance
#: needs them.  ``Pad`` is a plain lock object; ``Box`` a payload cell.
SHARED_HELPERS = {
    "Pad": lambda: class_decl(
        "Pad", [field_decl("p", INT)], [constructor("Pad", [], [])]
    ),
    "Box": lambda: class_decl(
        "Box", [field_decl("v", INT)], [constructor("Box", [], [])]
    ),
}


@dataclass
class TemplateInstance:
    """One template's contribution to a generated class."""

    template: str
    fields: list[ast.FieldDecl]
    methods: list[ast.MethodDecl]
    ctor_stmts: list[ast.Stmt]
    seed_stmts: list[ast.Stmt]
    accesses: list[AccessSpec]
    helper_classes: list[ast.ClassDecl] = dc_field(default_factory=list)
    shared_helpers: tuple[str, ...] = ()
    deadlock_potential: bool = False


def _recv() -> ast.VarRef:
    return var("o")


def t_wrong_mutex(n: int, rng: random.Random) -> TemplateInstance:
    data, lock = f"wmData{n}", f"wmLock{n}"
    getm, putm, resetm = f"wmGet{n}", f"wmPut{n}", f"wmReset{n}"
    v = rng.randrange(1, 10)
    return TemplateInstance(
        template="wrong_mutex",
        fields=[field_decl(data, INT), field_decl(lock, "Pad")],
        ctor_stmts=[set_this(lock, new("Pad"))],
        methods=[
            method(getm, [], INT, [ret(this_get(data))], synchronized=True),
            method(
                putm, [param("v", INT)], VOID,
                [set_this(data, var("v"))], synchronized=True,
            ),
            method(
                resetm, [], VOID,
                [sync(this_get(lock), set_this(data, lit(0)))],
            ),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), putm, lit(v))),
            vdecl(INT, f"wa{n}", call(_recv(), getm)),
            expr_stmt(call(_recv(), resetm)),
        ],
        accesses=[
            AccessSpec(getm, data, "R", frozenset({"this"})),
            AccessSpec(putm, data, "W", frozenset({"this"})),
            AccessSpec(
                resetm, data, "W", frozenset({lock}),
                is_const_write=True, const_value=0,
            ),
            AccessSpec(resetm, lock, "R", frozenset()),
        ],
        shared_helpers=("Pad",),
    )


def t_unguarded_reader(n: int, rng: random.Random) -> TemplateInstance:
    data = f"urData{n}"
    readm, writem = f"urRead{n}", f"urWrite{n}"
    v = rng.randrange(1, 10)
    return TemplateInstance(
        template="unguarded_reader",
        fields=[field_decl(data, INT)],
        ctor_stmts=[],
        methods=[
            method(
                writem, [param("v", INT)], VOID,
                [set_this(data, var("v"))], synchronized=True,
            ),
            method(readm, [], INT, [ret(this_get(data))]),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), writem, lit(v))),
            vdecl(INT, f"ua{n}", call(_recv(), readm)),
        ],
        accesses=[
            AccessSpec(writem, data, "W", frozenset({"this"})),
            AccessSpec(readm, data, "R", frozenset()),
        ],
    )


def t_double_checked_init(n: int, rng: random.Random) -> TemplateInstance:
    slot = f"dcSlot{n}"
    getm, clearm = f"dcGet{n}", f"dcClear{n}"
    return TemplateInstance(
        template="double_checked_init",
        fields=[field_decl(slot, "Box")],
        ctor_stmts=[],
        methods=[
            method(
                getm, [], "Box",
                [
                    iff(
                        eq(this_get(slot), null()),
                        [
                            sync(
                                this(),
                                iff(
                                    eq(this_get(slot), null()),
                                    [set_this(slot, new("Box"))],
                                ),
                            )
                        ],
                    ),
                    ret(this_get(slot)),
                ],
            ),
            method(clearm, [], VOID, [set_this(slot, null())]),
        ],
        seed_stmts=[
            vdecl("Box", f"db{n}", call(_recv(), getm)),
            expr_stmt(call(_recv(), clearm)),
        ],
        accesses=[
            AccessSpec(getm, slot, "R", frozenset()),
            AccessSpec(getm, slot, "R", frozenset({"this"})),
            AccessSpec(getm, slot, "W", frozenset({"this"})),
            AccessSpec(
                clearm, slot, "W", frozenset(),
                is_const_write=True, const_value="null",
            ),
        ],
        shared_helpers=("Box",),
    )


def t_lock_order_inversion(n: int, rng: random.Random) -> TemplateInstance:
    data, lock_a, lock_b = f"loData{n}", f"loA{n}", f"loB{n}"
    fwdm, revm = f"loFwd{n}", f"loRev{n}"
    v = rng.randrange(1, 10)
    return TemplateInstance(
        template="lock_order_inversion",
        fields=[
            field_decl(data, INT),
            field_decl(lock_a, "Pad"),
            field_decl(lock_b, "Pad"),
        ],
        ctor_stmts=[
            set_this(lock_a, new("Pad")),
            set_this(lock_b, new("Pad")),
        ],
        methods=[
            method(
                fwdm, [param("v", INT)], VOID,
                [
                    sync(
                        this_get(lock_a),
                        sync(this_get(lock_b), set_this(data, var("v"))),
                    )
                ],
            ),
            method(
                revm, [], INT,
                [
                    vdecl(INT, "r", lit(0)),
                    sync(
                        this_get(lock_b),
                        sync(this_get(lock_a), assign("r", this_get(data))),
                    ),
                    ret(var("r")),
                ],
            ),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), fwdm, lit(v))),
            vdecl(INT, f"la{n}", call(_recv(), revm)),
        ],
        accesses=[
            AccessSpec(fwdm, data, "W", frozenset({lock_a, lock_b})),
            AccessSpec(fwdm, lock_a, "R", frozenset()),
            AccessSpec(fwdm, lock_b, "R", frozenset({lock_a})),
            AccessSpec(revm, data, "R", frozenset({lock_a, lock_b})),
            AccessSpec(revm, lock_b, "R", frozenset()),
            AccessSpec(revm, lock_a, "R", frozenset({lock_b})),
        ],
        shared_helpers=("Pad",),
        deadlock_potential=True,
    )


def t_benign_constant_reset(n: int, rng: random.Random) -> TemplateInstance:
    flag = f"bcFlag{n}"
    clearm, dropm, setm = f"bcClear{n}", f"bcDrop{n}", f"bcSet{n}"
    # The reset constant and the seed's parameter value must differ, or
    # the set-vs-reset races would look benign at runtime by accident.
    c = rng.randrange(0, 5)
    v = rng.randrange(5, 10)
    return TemplateInstance(
        template="benign_constant_reset",
        fields=[field_decl(flag, INT)],
        ctor_stmts=[],
        methods=[
            method(clearm, [], VOID, [set_this(flag, lit(c))]),
            method(dropm, [], VOID, [set_this(flag, lit(c))]),
            method(
                setm, [param("v", INT)], VOID,
                [set_this(flag, var("v"))], synchronized=True,
            ),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), clearm)),
            expr_stmt(call(_recv(), dropm)),
            expr_stmt(call(_recv(), setm, lit(v))),
        ],
        accesses=[
            AccessSpec(
                clearm, flag, "W", frozenset(),
                is_const_write=True, const_value=c,
            ),
            AccessSpec(
                dropm, flag, "W", frozenset(),
                is_const_write=True, const_value=c,
            ),
            AccessSpec(setm, flag, "W", frozenset({"this"})),
        ],
    )


def t_guarded_stale_publication(n: int, rng: random.Random) -> TemplateInstance:
    val, ready = f"gpVal{n}", f"gpReady{n}"
    pubm, peekm = f"gpPublish{n}", f"gpPeek{n}"
    v = rng.randrange(1, 10)
    return TemplateInstance(
        template="guarded_stale_publication",
        fields=[field_decl(val, INT), field_decl(ready, INT)],
        ctor_stmts=[],
        methods=[
            method(
                pubm, [param("v", INT)], VOID,
                [set_this(val, var("v")), set_this(ready, lit(1))],
                synchronized=True,
            ),
            method(
                peekm, [], INT,
                [
                    vdecl(INT, "r", this_get(ready)),
                    vdecl(INT, "w", this_get(val)),
                    iff(eq(var("r"), lit(1)), [ret(var("w"))]),
                    ret(lit(0)),
                ],
            ),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), pubm, lit(v))),
            vdecl(INT, f"ga{n}", call(_recv(), peekm)),
        ],
        accesses=[
            AccessSpec(pubm, val, "W", frozenset({"this"})),
            AccessSpec(
                pubm, ready, "W", frozenset({"this"}),
                is_const_write=True, const_value=1,
            ),
            AccessSpec(peekm, ready, "R", frozenset()),
            AccessSpec(peekm, val, "R", frozenset()),
        ],
    )


def t_thread_local_receiver(n: int, rng: random.Random) -> TemplateInstance:
    cell = f"Cell{n}"
    touchm, churnm = f"tlTouch{n}", f"tlChurn{n}"
    return TemplateInstance(
        template="thread_local_receiver",
        fields=[],
        ctor_stmts=[],
        methods=[
            method(touchm, [param("c", cell)], INT, [ret(get(var("c"), "load"))]),
            method(
                churnm, [], VOID,
                [
                    vdecl(cell, "t", new(cell)),
                    set_field(var("t"), "load", lit(1)),
                ],
            ),
        ],
        seed_stmts=[
            vdecl(cell, f"c{n}", new(cell)),
            vdecl(INT, f"ta{n}", call(_recv(), touchm, var(f"c{n}"))),
            expr_stmt(call(_recv(), churnm)),
        ],
        accesses=[
            AccessSpec(touchm, "load", "R", frozenset(), shared=True),
            AccessSpec(churnm, "load", "W", frozenset(), shared=False),
        ],
        helper_classes=[
            class_decl(
                cell,
                [field_decl("load", INT)],
                [constructor(cell, [], [])],
            )
        ],
    )


def t_consistent_lock(n: int, rng: random.Random) -> TemplateInstance:
    data, lock = f"clData{n}", f"clLock{n}"
    putm, getm, bumpm = f"clPut{n}", f"clGet{n}", f"clBump{n}"
    v = rng.randrange(1, 10)
    return TemplateInstance(
        template="consistent_lock",
        fields=[field_decl(data, INT), field_decl(lock, "Pad")],
        ctor_stmts=[set_this(lock, new("Pad"))],
        methods=[
            method(
                putm, [param("v", INT)], VOID,
                [sync(this_get(lock), set_this(data, var("v")))],
            ),
            method(
                getm, [], INT,
                [
                    vdecl(INT, "r", lit(0)),
                    sync(this_get(lock), assign("r", this_get(data))),
                    ret(var("r")),
                ],
            ),
            method(
                bumpm, [], VOID,
                [
                    sync(
                        this_get(lock),
                        set_this(data, binop("+", this_get(data), lit(1))),
                    )
                ],
            ),
        ],
        seed_stmts=[
            expr_stmt(call(_recv(), putm, lit(v))),
            vdecl(INT, f"ca{n}", call(_recv(), getm)),
            expr_stmt(call(_recv(), bumpm)),
        ],
        accesses=[
            AccessSpec(putm, data, "W", frozenset({lock})),
            AccessSpec(getm, data, "R", frozenset({lock})),
            AccessSpec(bumpm, data, "W", frozenset({lock})),
            AccessSpec(bumpm, data, "R", frozenset({lock})),
            AccessSpec(putm, lock, "R", frozenset()),
            AccessSpec(getm, lock, "R", frozenset()),
            AccessSpec(bumpm, lock, "R", frozenset()),
        ],
        shared_helpers=("Pad",),
    )


#: Template registry in canonical order.  The order is part of the
#: deterministic-generation contract: subject composition draws from
#: this tuple by index.  New templates must be appended — reordering
#: or inserting earlier would silently recompose every seeded subject.
TEMPLATES: dict = {
    "wrong_mutex": t_wrong_mutex,
    "unguarded_reader": t_unguarded_reader,
    "double_checked_init": t_double_checked_init,
    "lock_order_inversion": t_lock_order_inversion,
    "benign_constant_reset": t_benign_constant_reset,
    "guarded_stale_publication": t_guarded_stale_publication,
    "thread_local_receiver": t_thread_local_receiver,
    "consistent_lock": t_consistent_lock,
}


def template_names() -> tuple[str, ...]:
    return tuple(TEMPLATES)
