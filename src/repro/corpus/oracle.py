"""Constructive race oracles for generated subjects.

A template instantiation declares, alongside the AST it builds, one
:class:`AccessSpec` per *shared-state* field access its methods perform:
which method, which field, read or write, and the set of **symbolic
locks** held at the access (``"this"`` for a synchronized method or a
``synchronized (this) {}`` block, or the name of the lock field for
``synchronized (this.lockField) {}``).  Symbolic names suffice because a
generated subject has exactly one shared receiver: every ``this``-rooted
lock expression denotes one runtime object per name.

The ground truth then falls out of the memory model, with no detector in
the loop — two accesses race iff

* both reach state shared between the test's threads (``shared``),
* they touch the same field,
* at least one is a write, and
* the symbolic lock sets are disjoint (no common monitor ordering them).

Races are reported at the granularity Narada's Table-5 counting reduces
to: ``(field, {method, method})`` — which two client-invokable methods
must run concurrently, racing on which field.  A race is *benign* when
every access-level pair behind it is a pair of constant writes of the
same value (the paper's "reset to constant" triage, §5); one harmful
constituent makes the method-level race harmful.

``deadlock_potential`` is equally constructive: the lock-order-inversion
template (and only it) composes monitors in opposite orders, so the
verdict simply records whether such a template is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement


@dataclass(frozen=True)
class AccessSpec:
    """One field access a template's method performs, symbolically.

    ``locks`` holds symbolic monitor names (``"this"`` or a lock field's
    name).  ``shared`` is False for accesses that can only ever reach
    thread-confined state (a freshly allocated, non-escaping object);
    such accesses still participate in Narada's static pairing — that is
    the false-alarm surface the corpus measures — but never in a true
    race.  ``const_value`` carries the literal written when
    ``is_const_write`` (``int``/``bool`` literals, or the string
    ``"null"``).
    """

    method: str
    field: str
    kind: str  # "R" | "W"
    locks: frozenset[str]
    shared: bool = True
    is_const_write: bool = False
    const_value: object = None


@dataclass(frozen=True, order=True)
class OracleRace:
    """One true race: a field plus the method pair that exposes it."""

    field: str
    methods: tuple[str, str]  # sorted; identical entries = same-method race
    benign: bool = False

    @property
    def key(self) -> tuple[str, tuple[str, str]]:
        return (self.field, self.methods)

    def to_dict(self) -> dict:
        return {
            "field": self.field,
            "methods": list(self.methods),
            "benign": self.benign,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OracleRace":
        return cls(
            field=data["field"],
            methods=tuple(data["methods"]),
            benign=data["benign"],
        )


def _pair_races(a: AccessSpec, b: AccessSpec) -> bool:
    """Whether the two accesses can race when run from two threads."""
    if a.field != b.field:
        return False
    if not (a.shared and b.shared):
        return False
    if "W" not in (a.kind, b.kind):
        return False
    return not (a.locks & b.locks)


def _pair_benign(a: AccessSpec, b: AccessSpec) -> bool:
    return (
        a.kind == "W"
        and b.kind == "W"
        and a.is_const_write
        and b.is_const_write
        and a.const_value == b.const_value
    )


def derive_races(specs: list[AccessSpec]) -> tuple[OracleRace, ...]:
    """The complete set of true races over a subject's access specs.

    Enumerates unordered spec pairs *including a spec with itself*: one
    static write executed by two threads is the ``same_site`` race the
    pair generator also models.  Method-level benignity is the
    conjunction over constituent access pairs — a single harmful
    combination (e.g. a constant reset racing a parameter write) makes
    the whole method pair harmful.
    """
    verdicts: dict[tuple[str, tuple[str, str]], bool] = {}
    for a, b in combinations_with_replacement(specs, 2):
        if a is b and a.kind != "W":
            continue  # a lone read cannot race with itself
        if not _pair_races(a, b):
            continue
        key = (a.field, tuple(sorted((a.method, b.method))))
        benign = _pair_benign(a, b)
        verdicts[key] = verdicts.get(key, True) and benign
    return tuple(
        sorted(
            OracleRace(field=f, methods=m, benign=benign)
            for (f, m), benign in verdicts.items()
        )
    )


@dataclass(frozen=True)
class OracleVerdict:
    """Ground truth for one generated subject."""

    class_name: str
    races: tuple[OracleRace, ...] = ()
    deadlock_potential: bool = False
    template_keys: tuple[str, ...] = ()

    def race_keys(self) -> set[tuple[str, tuple[str, str]]]:
        return {race.key for race in self.races}

    def harmful_count(self) -> int:
        return sum(1 for race in self.races if not race.benign)

    def benign_count(self) -> int:
        return sum(1 for race in self.races if race.benign)

    def to_dict(self) -> dict:
        return {
            "class_name": self.class_name,
            "races": [race.to_dict() for race in self.races],
            "deadlock_potential": self.deadlock_potential,
            "template_keys": list(self.template_keys),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OracleVerdict":
        return cls(
            class_name=data["class_name"],
            races=tuple(OracleRace.from_dict(r) for r in data["races"]),
            deadlock_potential=data["deadlock_potential"],
            template_keys=tuple(data["template_keys"]),
        )
