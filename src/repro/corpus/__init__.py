"""Procedural subject corpus: seeded MiniJ generation with ground truth.

The paper evaluates Narada on nine hand-ported classes; this package
manufactures *hundreds* — each generated class is a seeded, deterministic
composition of locking-discipline templates (:mod:`repro.corpus.templates`),
and each comes with a known-answer :class:`OracleVerdict` derived
constructively from the composition (:mod:`repro.corpus.oracle`), never
from running a detector.  The recall/precision harness
(:mod:`repro.corpus.runner`) pushes generated subjects through the
unchanged Narada pipeline and scores the detected races against the
oracle.
"""

from repro.corpus.generator import (
    CorpusConfig,
    GeneratedSubject,
    compose_subject,
    generate_corpus,
    generate_subject,
    register_corpus,
)
from repro.corpus.oracle import AccessSpec, OracleRace, OracleVerdict, derive_races
from repro.corpus.runner import CorpusResult, SubjectScore, run_corpus, score_outcome
from repro.corpus.templates import TEMPLATES, template_names

__all__ = [
    "AccessSpec",
    "CorpusConfig",
    "CorpusResult",
    "GeneratedSubject",
    "OracleRace",
    "OracleVerdict",
    "SubjectScore",
    "TEMPLATES",
    "compose_subject",
    "derive_races",
    "generate_corpus",
    "generate_subject",
    "register_corpus",
    "run_corpus",
    "score_outcome",
    "template_names",
]
