"""Recall/precision harness: score Narada's output against the oracle.

The pipeline reports races as ``(class, field, site pair)``; the oracle
speaks ``(field, method pair)``.  The bridge is purely static: every AST
node id inside a method body belongs to exactly one method, so a site
pair maps to a method pair by table lookup.  Scoring is then set
arithmetic per subject:

* **recall** — oracle races whose key appears among the detected races.
  The corpus is constructed so every true race is expressible under any
  schedule (see :mod:`repro.corpus.templates`), which is what makes a
  hard ``recall == 1.0`` gate reasonable;
* **precision** — detected races that the oracle confirms.  Measured,
  not gated: the detectors are supposed to earn this number;
* **pair precision** — the *candidate* racy pairs (stage-2 output)
  that correspond to true races.  This is where the deliberately
  race-free templates (``thread_local_receiver``,
  ``lock_order_inversion``) show up as static over-approximation;
* **deadlock** — subjects whose oracle predicts deadlock potential vs
  subjects where fuzzing actually produced a deadlocked schedule
  (reported; bounded random fuzzing has no completeness claim here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.generator import CorpusConfig, GeneratedSubject, generate_corpus
from repro.lang import ClassTable, ast, load
from repro.narada.orchestrator import (
    PipelineOrchestrator,
    SubjectOutcome,
    SubjectSpec,
)

#: Method-pair race key: (field name, sorted (method, method)).
RaceKey = tuple[str, tuple[str, str]]


def corpus_specs(subjects: list[GeneratedSubject]) -> list[SubjectSpec]:
    """Orchestrator specs for generated subjects (pipeline unchanged)."""
    return [
        SubjectSpec(name=s.key, source=s.source, target_class=s.class_name)
        for s in subjects
    ]


def site_method_map(table: ClassTable) -> dict[int, str]:
    """node id -> name of the method whose body contains it."""
    mapping: dict[int, str] = {}

    def walk(node, method_name: str) -> None:
        node_id = getattr(node, "node_id", -1)
        if node_id >= 0:
            mapping[node_id] = method_name
        for value in vars(node).values():
            if isinstance(value, (ast.Stmt, ast.Expr)):
                walk(value, method_name)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.Stmt, ast.Expr)):
                        walk(item, method_name)

    for cls in table.program.classes:
        for method in cls.methods:
            walk(method.body, method.name)
    return mapping


def race_keys_of(records, sites: dict[int, str]) -> set[RaceKey]:
    """Map detected race records to oracle-comparable keys.

    A site outside any method body (a client-level access in a test
    body) maps to ``<client>`` — never an oracle key, so such a record
    counts against precision instead of silently disappearing.
    """
    keys: set[RaceKey] = set()
    for record in records:
        methods = tuple(
            sorted(
                (
                    sites.get(record.first.node_id, "<client>"),
                    sites.get(record.second.node_id, "<client>"),
                )
            )
        )
        keys.add((record.field_name, methods))
    return keys


@dataclass
class SubjectScore:
    """Oracle-vs-pipeline comparison for one generated subject."""

    key: str
    class_name: str
    template_keys: tuple[str, ...]
    oracle: set[RaceKey] = field(default_factory=set)
    detected: set[RaceKey] = field(default_factory=set)
    candidate_pairs: set[RaceKey] = field(default_factory=set)
    pruned_pairs: set[RaceKey] = field(default_factory=set)
    deadlock_expected: bool = False
    deadlock_observed: bool = False
    pipeline_failed: bool = False

    @property
    def missed(self) -> set[RaceKey]:
        return self.oracle - self.detected

    @property
    def unexpected(self) -> set[RaceKey]:
        return self.detected - self.oracle

    @property
    def pruned_oracle(self) -> set[RaceKey]:
        """Oracle races the static pre-filter discharged — must be empty.

        Any member is a soundness bug in :mod:`repro.static`: the filter
        claimed a consistent lock / thread-local receiver for a pair the
        corpus constructed to race."""
        return self.pruned_pairs & self.oracle

    @property
    def complete(self) -> bool:
        return (
            not self.pipeline_failed
            and not self.missed
            and not self.pruned_oracle
        )


def score_outcome(
    subject: GeneratedSubject, outcome: SubjectOutcome
) -> SubjectScore:
    """Score one subject's pipeline outcome against its oracle."""
    score = SubjectScore(
        key=subject.key,
        class_name=subject.class_name,
        template_keys=subject.template_keys,
        oracle=subject.verdict.race_keys(),
        deadlock_expected=subject.verdict.deadlock_potential,
    )
    if outcome.synthesis is None or outcome.detection is None:
        score.pipeline_failed = True
        return score
    if outcome.detection_partial:
        # Missing fuzz units can hide races; a partial subject must not
        # be allowed to pass the recall gate by luck.
        score.pipeline_failed = True

    sites = site_method_map(load(subject.source))
    verdicts = outcome.synthesis.verdicts
    aligned = len(verdicts) == len(outcome.synthesis.pairs)
    for i, pair in enumerate(outcome.synthesis.pairs):
        methods = tuple(
            sorted((pair.first.method_id()[1], pair.second.method_id()[1]))
        )
        pair_key = (pair.field[1], methods)
        score.candidate_pairs.add(pair_key)
        if aligned and verdicts[i].pruned:
            score.pruned_pairs.add(pair_key)
    for fuzz in outcome.detection.fuzz_reports:
        score.detected |= race_keys_of(fuzz.detected, sites)
        if fuzz.deadlocks:
            score.deadlock_observed = True
    return score


@dataclass
class CorpusResult:
    """Aggregated corpus run: per-subject scores plus headline metrics."""

    scores: list[SubjectScore]
    digests: dict[str, str]

    @property
    def subjects(self) -> int:
        return len(self.scores)

    @property
    def oracle_races(self) -> int:
        return sum(len(s.oracle) for s in self.scores)

    @property
    def detected_races(self) -> int:
        return sum(len(s.detected) for s in self.scores)

    @property
    def true_detected(self) -> int:
        return sum(len(s.detected & s.oracle) for s in self.scores)

    @property
    def missed_races(self) -> int:
        return sum(len(s.missed) for s in self.scores)

    @property
    def recall(self) -> float:
        total = self.oracle_races
        return 1.0 if total == 0 else self.true_detected / total

    @property
    def precision(self) -> float:
        total = self.detected_races
        return 1.0 if total == 0 else self.true_detected / total

    @property
    def candidate_pairs(self) -> int:
        return sum(len(s.candidate_pairs) for s in self.scores)

    @property
    def true_candidate_pairs(self) -> int:
        return sum(len(s.candidate_pairs & s.oracle) for s in self.scores)

    @property
    def pair_precision(self) -> float:
        total = self.candidate_pairs
        return 1.0 if total == 0 else self.true_candidate_pairs / total

    @property
    def pruned_pairs(self) -> int:
        return sum(len(s.pruned_pairs) for s in self.scores)

    @property
    def pruned_fraction(self) -> float:
        total = self.candidate_pairs
        return 0.0 if total == 0 else self.pruned_pairs / total

    @property
    def pruned_oracle_races(self) -> int:
        """Statically pruned pairs that the oracle marks racy (gate: 0)."""
        return sum(len(s.pruned_oracle) for s in self.scores)

    @property
    def deadlock_expected(self) -> int:
        return sum(1 for s in self.scores if s.deadlock_expected)

    @property
    def deadlock_observed(self) -> int:
        return sum(
            1
            for s in self.scores
            if s.deadlock_expected and s.deadlock_observed
        )

    @property
    def failed_subjects(self) -> list[str]:
        return [s.key for s in self.scores if s.pipeline_failed]

    def problems(self) -> list[str]:
        """Human-readable recall violations (empty = gate passes)."""
        out = []
        for s in self.scores:
            if s.pipeline_failed:
                out.append(f"{s.key}: pipeline failed or partial")
            for race_key in sorted(s.missed):
                out.append(
                    f"{s.key}: LOST race on {race_key[0]} between "
                    f"{race_key[1][0]} and {race_key[1][1]} "
                    f"(templates: {', '.join(s.template_keys)})"
                )
            for race_key in sorted(s.pruned_oracle):
                out.append(
                    f"{s.key}: PRUNED oracle race on {race_key[0]} between "
                    f"{race_key[1][0]} and {race_key[1][1]} "
                    f"(templates: {', '.join(s.template_keys)})"
                )
        return out

    def summary(self) -> str:
        return (
            f"{self.subjects} subject(s): "
            f"recall {self.recall:.3f} "
            f"({self.true_detected}/{self.oracle_races} oracle races, "
            f"{self.missed_races} lost), "
            f"precision {self.precision:.3f} "
            f"({self.true_detected}/{self.detected_races} detected), "
            f"pair precision {self.pair_precision:.3f} "
            f"({self.true_candidate_pairs}/{self.candidate_pairs}), "
            f"pruned {self.pruned_pairs}/{self.candidate_pairs} "
            f"({self.pruned_fraction:.1%}, {self.pruned_oracle_races} oracle), "
            f"deadlocks {self.deadlock_observed}/{self.deadlock_expected}"
        )


def run_corpus(
    config: CorpusConfig,
    orchestrator: PipelineOrchestrator,
    subjects: list[GeneratedSubject] | None = None,
    batch_size: int = 25,
) -> CorpusResult:
    """Generate (unless given), run, and score a corpus.

    Streams subjects through the orchestrator in waves of
    ``batch_size`` via :meth:`PipelineOrchestrator.run_stream`, scoring
    and releasing each outcome as it arrives — 200 subjects' worth of
    fuzz reports never coexist in memory.
    """
    if subjects is None:
        subjects = generate_corpus(config)
    by_key = {s.key: s for s in subjects}
    scores: list[SubjectScore] = []
    digests: dict[str, str] = {}
    stream = orchestrator.run_stream(
        corpus_specs(subjects), detect=True, batch_size=batch_size
    )
    for outcome in stream:
        subject = by_key[outcome.spec.name]
        scores.append(score_outcome(subject, outcome))
        digests[outcome.spec.name] = outcome.digest()
    return CorpusResult(scores=scores, digests=digests)
