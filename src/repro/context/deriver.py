"""Stage 2b of Narada: the Context Deriver (§3.3, Fig. 10).

Given a racy pair, derive — from the writeable ``D`` entries collected
during seed execution — a sequence of setter-method invocations that
drives the two racy invocations' object graphs into a state where the
owner of the raced field is the *same instance* on both sides, while the
receivers stay distinct (sharing the receivers would serialize on its
monitor and mask the race, §3.3).

The query operator ``Q`` of Fig. 10 appears here as :meth:`_solve_path`:

* *set* / *deep-set* — a method whose ``D`` contains ``(Ithis.f1..fk ↢
  Ij[...])`` assigns the goal path directly; constructors qualify too
  (§4 "we treat constructor as any other method to help set the
  context"), as do factory methods via the *return* rule entries
  (``Iret.f ↢ Ij``) and methods that assign through a parameter
  (``Ii.f ↢ Ij``).
* *concat* — otherwise, split the goal path: first build an object
  ``M`` satisfying the tail, then set the head field to ``M``.
* when the right-hand side of an entry is itself a field of a parameter
  (``Ithis.x ↢ Iz.w``, the paper's ``bar``), the rules recurse on the
  parameter's field — producing exactly the ``z.baz(x); a.bar(z)``
  sequence of the worked example.

When no derivation reaches the exact owner, progressively shorter
prefixes of the owner chain are shared instead (§4: "we attempt to
assign the prefixes of the dereference so that the objects at some point
of the hierarchy are shared"), and as a last resort a no-sharing plan is
emitted — such tests typically expose no race, which is how the paper's
Figure 14 gets its zero-race buckets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.analysis.model import AnalysisResult, MethodSummary, WriteableEntry
from repro.analysis.paths import RECEIVER, RETURN
from repro.context.plan import (
    ObjectSlot,
    PlannedCall,
    SeedArg,
    SidePlan,
    SlotArg,
    TestPlan,
)
from repro.lang.classtable import OBJECT, ClassTable
from repro.pairs.generator import PairSide, RacyPair

#: Bound on recursive setter derivation.
MAX_DERIVE_DEPTH = 6


@dataclass(frozen=True)
class _Setter:
    """One indexed writeable entry."""

    summary: MethodSummary
    entry: WriteableEntry
    target_param: int | None = None
    """For param-rooted entries: which parameter is the written object."""


class SetterDatabase:
    """Indexes writeable ``D`` entries by (owner class, field path)."""

    def __init__(self, analysis: AnalysisResult) -> None:
        self.receiver_writes: dict[tuple, list[_Setter]] = {}
        self.param_writes: dict[tuple, list[_Setter]] = {}
        self.returns: dict[tuple, list[_Setter]] = {}
        seen: set[tuple] = set()
        for summary in analysis:
            for entry in summary.writeables:
                key = (summary.method_id(), entry.lhs, entry.rhs, entry.via)
                if key in seen:
                    continue
                seen.add(key)
                self._add(summary, entry)

    def _add(self, summary: MethodSummary, entry: WriteableEntry) -> None:
        lhs = entry.lhs
        if entry.via == "return":
            if lhs.root == RETURN and lhs.fields and summary.return_class:
                index_key = (summary.return_class, lhs.fields)
                self.returns.setdefault(index_key, []).append(_Setter(summary, entry))
            return
        if lhs.root == RECEIVER and lhs.fields:
            index_key = (summary.class_name, lhs.fields)
            self.receiver_writes.setdefault(index_key, []).append(
                _Setter(summary, entry)
            )
        elif lhs.root > 0 and lhs.fields:
            target_class = (
                summary.arg_classes[lhs.root - 1]
                if lhs.root - 1 < len(summary.arg_classes)
                else None
            )
            if target_class is not None:
                index_key = (target_class, lhs.fields)
                self.param_writes.setdefault(index_key, []).append(
                    _Setter(summary, entry, target_param=lhs.root)
                )


class ContextDeriver:
    """Derives :class:`TestPlan` objects for racy pairs."""

    def __init__(
        self,
        analysis: AnalysisResult,
        table: ClassTable,
        rng: random.Random | None = None,
        allow_prefix_fallback: bool = True,
        receiver_sharing_only: bool = False,
    ) -> None:
        """
        Args:
            analysis: seed-trace summaries (the setter database source).
            table: the resolved program.
            rng: when given, randomizes the choice among equally
                applicable setters (the paper picks randomly, §4).
            allow_prefix_fallback: ablation switch — when False, only
                exact-owner sharing is attempted (§4's prefix fallback
                disabled); underivable pairs get bare no-sharing plans.
            receiver_sharing_only: ablation switch — strengthen the
                sharing constraint to "the receivers are the same
                object" (the strengthening §3.3 argues against: it
                serializes synchronized methods on the receiver monitor
                and masks races).
        """
        self._db = SetterDatabase(analysis)
        self._table = table
        self._rng = rng
        self._allow_prefix_fallback = allow_prefix_fallback
        self._receiver_sharing_only = receiver_sharing_only

    # ------------------------------------------------------------------
    # Entry point.

    def derive(self, pair: RacyPair) -> TestPlan:
        """Derive the best achievable plan for a racy pair.

        Never returns None: when no sharing can be established the plan
        degenerates to two independent invocations (such tests exist in
        the paper's evaluation and expose no race).
        """
        left_info = self._owner_chain(pair.first)
        right_info = self._owner_chain(pair.second)

        if left_info is not None and right_info is not None:
            (fields1, classes1) = left_info
            (fields2, classes2) = right_info
            max_strip = self._common_suffix(fields1, classes1, fields2, classes2)
            if self._receiver_sharing_only:
                # Ablation: share the roots themselves, nothing deeper.
                strips = (
                    [max_strip]
                    if max_strip == len(fields1) == len(fields2)
                    else []
                )
            elif not self._allow_prefix_fallback:
                strips = [0]
            else:
                strips = list(range(0, max_strip + 1))
            for strip in strips:
                share_class = classes1[len(fields1) - strip]
                shared = ObjectSlot(share_class, note="shared")
                left = self._solve_side(pair.first, fields1[: len(fields1) - strip],
                                        classes1, shared, strip == 0)
                if left is None:
                    continue
                right = self._solve_side(pair.second, fields2[: len(fields2) - strip],
                                         classes2, shared, strip == 0)
                if right is None:
                    continue
                receivers_shared = (
                    left.racy_call.receiver is shared
                    and right.racy_call.receiver is shared
                )
                return TestPlan(
                    pair=pair,
                    left=left,
                    right=right,
                    shared_slot=shared,
                    receivers_shared=receivers_shared,
                )
        return self._fallback_plan(pair)

    # ------------------------------------------------------------------
    # Per-side derivation.

    def _owner_chain(
        self, side: PairSide
    ) -> tuple[tuple[str, ...], tuple[str, ...]] | None:
        """(owner chain fields, classes along the chain) for a side."""
        access = side.access
        if access.access_path is None or access.owner_classes is None:
            return None
        return (access.access_path.owner().fields, access.owner_classes)

    @staticmethod
    def _common_suffix(fields1, classes1, fields2, classes2) -> int:
        """How many trailing fields can be stripped while both chains
        stay structurally identical (needed for ancestor sharing)."""
        strip = 0
        while (
            strip < len(fields1)
            and strip < len(fields2)
            and fields1[len(fields1) - 1 - strip] == fields2[len(fields2) - 1 - strip]
            and classes1[len(fields1) - 1 - strip] == classes2[len(fields2) - 1 - strip]
        ):
            strip += 1
        return strip

    def _solve_side(
        self,
        side: PairSide,
        fields_to_set: tuple[str, ...],
        classes: tuple[str, ...],
        shared: ObjectSlot,
        full_context: bool,
    ) -> SidePlan | None:
        summary = side.summary
        root = side.access.access_path.root
        chain_classes = classes[: len(fields_to_set) + 1]
        solved = self._solve_path(chain_classes, fields_to_set, shared, 0)
        if solved is None:
            return None
        root_slot, setter_calls = solved

        racy_args: list = [SeedArg(i) for i in range(len(summary.arg_refs))]
        if root == RECEIVER:
            receiver = root_slot
        else:
            receiver = ObjectSlot(summary.class_name, note="racy-recv")
            racy_args[root - 1] = SlotArg(root_slot)
        racy_call = PlannedCall(summary=summary, receiver=receiver, args=racy_args)
        return SidePlan(
            side=side,
            setter_calls=setter_calls,
            racy_call=racy_call,
            shared_depth=len(fields_to_set),
            full_context=full_context,
        )

    def _fallback_plan(self, pair: RacyPair) -> TestPlan:
        def bare_side(side: PairSide) -> SidePlan:
            summary = side.summary
            receiver = ObjectSlot(summary.class_name, note="racy-recv")
            call = PlannedCall(
                summary=summary,
                receiver=receiver,
                args=[SeedArg(i) for i in range(len(summary.arg_refs))],
            )
            return SidePlan(
                side=side,
                setter_calls=[],
                racy_call=call,
                shared_depth=-1,
                full_context=False,
            )

        return TestPlan(
            pair=pair,
            left=bare_side(pair.first),
            right=bare_side(pair.second),
            shared_slot=None,
            receivers_shared=False,
        )

    # ------------------------------------------------------------------
    # The Q query (Fig. 10).

    def _solve_path(
        self,
        chain_classes: tuple[str, ...],
        fields: tuple[str, ...],
        payload: ObjectSlot,
        depth: int,
    ) -> tuple[ObjectSlot, list[PlannedCall]] | None:
        """Produce a slot X of class ``chain_classes[0]`` plus calls such
        that afterwards ``X.fields`` is the object in ``payload``."""
        if depth > MAX_DERIVE_DEPTH:
            return None
        owner_class = chain_classes[0]
        if not fields:
            if self._classes_agree(payload.class_name, owner_class):
                return payload, []
            return None

        for setter in self._candidates(owner_class, fields):
            solved = self._apply_setter(setter, owner_class, payload, depth)
            if solved is not None:
                return solved

        # concat: build the tail object first, then set the head field.
        if len(fields) >= 2:
            tail = self._solve_path(chain_classes[1:], fields[1:], payload, depth + 1)
            if tail is not None:
                mid_slot, tail_calls = tail
                head = self._solve_path(chain_classes[:2], fields[:1], mid_slot, depth + 1)
                if head is not None:
                    head_slot, head_calls = head
                    return head_slot, tail_calls + head_calls
        return None

    def _candidates(self, owner_class: str, fields: tuple[str, ...]) -> list[_Setter]:
        found: list[_Setter] = []
        found.extend(self._db.receiver_writes.get((owner_class, fields), ()))
        found.extend(self._db.returns.get((owner_class, fields), ()))
        found.extend(self._db.param_writes.get((owner_class, fields), ()))
        if self._rng is not None:
            self._rng.shuffle(found)
        return found

    def _apply_setter(
        self, setter: _Setter, owner_class: str, payload: ObjectSlot, depth: int
    ) -> tuple[ObjectSlot, list[PlannedCall]] | None:
        summary = setter.summary
        rhs = setter.entry.rhs

        # Resolve where the payload enters the setter invocation.
        if rhs.root > 0:
            param_index = rhs.root
            if rhs.fields:
                rhs_chain = self._declared_chain(
                    summary.arg_classes[param_index - 1], rhs.fields, payload.class_name
                )
                if rhs_chain is None:
                    return None
                carrier = self._solve_path(rhs_chain, rhs.fields, payload, depth + 1)
                if carrier is None:
                    return None
                carrier_slot, pre_calls = carrier
            else:
                carrier_slot, pre_calls = payload, []
        elif rhs.root == RECEIVER and rhs.fields:
            # Value copied out of the setter receiver's own state: the
            # receiver must already hold the payload at rhs.fields.
            carrier_slot, pre_calls = None, []
        else:
            return None

        if setter.entry.via == "return":
            return self._apply_factory(setter, payload, carrier_slot, pre_calls, depth)

        if setter.target_param is not None:
            return self._apply_param_setter(
                setter, owner_class, carrier_slot, pre_calls
            )

        # Receiver-rooted write entry.
        if rhs.root == RECEIVER:
            rhs_chain = self._declared_chain(
                summary.class_name, rhs.fields, payload.class_name
            )
            if rhs_chain is None:
                return None
            sub = self._solve_path(rhs_chain, rhs.fields, payload, depth + 1)
            if sub is None:
                return None
            target_slot, pre_calls = sub
        elif summary.is_constructor:
            target_slot = ObjectSlot(summary.class_name, origin="produced")
        else:
            target_slot = ObjectSlot(summary.class_name)

        args: list = [SeedArg(i) for i in range(len(summary.arg_refs))]
        if rhs.root > 0:
            args[rhs.root - 1] = SlotArg(carrier_slot)
        call = PlannedCall(
            summary=summary,
            receiver=None if summary.is_constructor else target_slot,
            args=args,
            produces=target_slot if summary.is_constructor else None,
        )
        return target_slot, pre_calls + [call]

    def _apply_factory(
        self,
        setter: _Setter,
        payload: ObjectSlot,
        carrier_slot: ObjectSlot | None,
        pre_calls: list[PlannedCall],
        depth: int,
    ) -> tuple[ObjectSlot, list[PlannedCall]] | None:
        summary = setter.summary
        rhs = setter.entry.rhs
        produced = ObjectSlot(summary.return_class or "?", origin="produced")
        if rhs.root == RECEIVER:
            rhs_chain = self._declared_chain(
                summary.class_name, rhs.fields, payload.class_name
            )
            if rhs_chain is None:
                return None
            sub = self._solve_path(rhs_chain, rhs.fields, payload, depth + 1)
            if sub is None:
                return None
            factory_recv, pre_calls = sub
        else:
            factory_recv = ObjectSlot(summary.class_name, note="factory")
        args: list = [SeedArg(i) for i in range(len(summary.arg_refs))]
        if rhs.root > 0 and carrier_slot is not None:
            args[rhs.root - 1] = SlotArg(carrier_slot)
        if summary.is_constructor:
            call = PlannedCall(
                summary=summary, receiver=None, args=args, produces=produced
            )
        else:
            call = PlannedCall(
                summary=summary, receiver=factory_recv, args=args, produces=produced
            )
        return produced, pre_calls + [call]

    def _apply_param_setter(
        self,
        setter: _Setter,
        owner_class: str,
        carrier_slot: ObjectSlot | None,
        pre_calls: list[PlannedCall],
    ) -> tuple[ObjectSlot, list[PlannedCall]] | None:
        if carrier_slot is None:
            return None
        summary = setter.summary
        rhs = setter.entry.rhs
        target_slot = ObjectSlot(owner_class)
        receiver = ObjectSlot(summary.class_name, note="setter-recv")
        args: list = [SeedArg(i) for i in range(len(summary.arg_refs))]
        args[setter.target_param - 1] = SlotArg(target_slot)
        if rhs.root > 0:
            args[rhs.root - 1] = SlotArg(carrier_slot)
        call = PlannedCall(summary=summary, receiver=receiver, args=args)
        return target_slot, pre_calls + [call]

    # ------------------------------------------------------------------
    # Class bookkeeping.

    def _classes_agree(self, actual: str, expected: str) -> bool:
        if expected in ("?", OBJECT.name) or actual in ("?", OBJECT.name):
            return True
        if actual == expected:
            return True
        return expected in self._table.implements(actual)

    def _declared_chain(
        self, start_class: str | None, fields: tuple[str, ...], final_class: str
    ) -> tuple[str, ...] | None:
        """Classes along ``start_class.fields`` from declared field types,
        forcing the final position to the payload's concrete class."""
        if start_class is None:
            return None
        chain = [start_class]
        current = start_class
        for position, field_name in enumerate(fields):
            declared = self._table.field_type(current, field_name)
            if declared is None or not declared.is_reference():
                return None
            if position == len(fields) - 1:
                chain.append(final_class)
            elif self._table.is_interface(declared.name):
                return None
            else:
                chain.append(declared.name)
                current = declared.name
        return tuple(chain)


def derive_plans(
    pairs: list[RacyPair],
    analysis: AnalysisResult,
    table: ClassTable,
    rng: random.Random | None = None,
    allow_prefix_fallback: bool = True,
    receiver_sharing_only: bool = False,
) -> list[TestPlan]:
    """Derive a plan for every racy pair."""
    deriver = ContextDeriver(
        analysis,
        table,
        rng=rng,
        allow_prefix_fallback=allow_prefix_fallback,
        receiver_sharing_only=receiver_sharing_only,
    )
    return [deriver.derive(pair) for pair in pairs]
