"""Plan representation for synthesized racy tests.

A :class:`TestPlan` is the symbolic output of the Context Deriver: it
says *which* methods to invoke, on *which* objects, with *which*
arguments, and which objects must be the *same instance* across the two
sides — without yet naming concrete heap objects.  The Test Synthesizer
(Algorithm 1) later materializes every :class:`ObjectSlot` by collecting
references from seed-test executions and then runs the plan.

The slot/argument vocabulary mirrors the paper's Table 2:

* ``ObjectSlot`` — a placeholder for one object; slots that must refer
  to the same instance are literally the same slot object (that is
  ``shareObjects``' re-arrangement, expressed structurally).
* ``SeedArg(i)`` — "use whatever the seed test passed at position i of
  this invocation" (the objects ``collectObjects`` captures).
* ``SlotArg(slot)`` — "pass the object bound to this slot".
* A ``PlannedCall`` with ``produces`` set is a constructor or factory
  call whose result is bound to a slot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.model import MethodSummary
from repro.pairs.generator import PairSide, RacyPair

_slot_counter = itertools.count(1)


@dataclass(eq=False)
class ObjectSlot:
    """A placeholder for one heap object in a plan.

    Identity matters: two occurrences of the same ``ObjectSlot`` must be
    materialized by the same heap object (the sharing constraint).
    """

    class_name: str
    origin: str = "collected"  # "collected" | "produced"
    note: str = ""
    slot_id: int = field(default_factory=lambda: next(_slot_counter))

    def __str__(self) -> str:
        return f"<{self.class_name} s{self.slot_id}{' *' + self.note if self.note else ''}>"


@dataclass(frozen=True)
class SeedArg:
    """Use the object/value the seed test passed at this position."""

    index: int  # 0-based argument position


@dataclass(frozen=True)
class SlotArg:
    """Pass the object bound to ``slot``."""

    slot: ObjectSlot


ArgSpec = SeedArg | SlotArg


@dataclass
class PlannedCall:
    """One invocation in a synthesized test.

    Attributes:
        summary: the seed-trace occurrence of this method; the
            synthesizer re-runs that seed test and suspends before this
            occurrence to collect receiver/arguments (Algorithm 1,
            ``collectObjects``).
        receiver: slot the call is made on; None for constructors.
        args: one ArgSpec per parameter.
        produces: slot bound to the constructed/returned object.
    """

    summary: MethodSummary
    receiver: ObjectSlot | None
    args: list[ArgSpec]
    produces: ObjectSlot | None = None

    @property
    def class_name(self) -> str:
        return self.summary.class_name

    @property
    def method(self) -> str:
        return self.summary.method

    @property
    def is_constructor(self) -> bool:
        return self.summary.is_constructor

    def slots(self) -> list[ObjectSlot]:
        found = []
        if self.receiver is not None:
            found.append(self.receiver)
        for arg in self.args:
            if isinstance(arg, SlotArg):
                found.append(arg.slot)
        if self.produces is not None:
            found.append(self.produces)
        return found

    def describe(self) -> str:
        args = ", ".join(
            str(a.slot) if isinstance(a, SlotArg) else f"seed#{a.index}"
            for a in self.args
        )
        if self.is_constructor:
            return f"{self.produces} = new {self.class_name}({args})"
        call = f"{self.receiver}.{self.method}({args})"
        if self.produces is not None:
            return f"{self.produces} = {call}"
        return call


@dataclass
class SidePlan:
    """Context and racy invocation for one thread of the test."""

    side: PairSide
    setter_calls: list[PlannedCall]
    racy_call: PlannedCall
    shared_depth: int
    """How many fields of the owner chain are shared (full = owner)."""
    full_context: bool
    """True when sharing was achieved at the exact owner of the field."""

    def all_calls(self) -> list[PlannedCall]:
        return [*self.setter_calls, self.racy_call]

    def describe(self) -> str:
        lines = [f"  setter: {c.describe()}" for c in self.setter_calls]
        lines.append(f"  racy:   {self.racy_call.describe()}")
        return "\n".join(lines)


@dataclass
class TestPlan:
    """The full symbolic plan for one synthesized multithreaded test."""

    pair: RacyPair
    left: SidePlan
    right: SidePlan
    shared_slot: ObjectSlot | None
    receivers_shared: bool

    def slots(self) -> list[ObjectSlot]:
        """All distinct slots, in first-use order."""
        seen: dict[int, ObjectSlot] = {}
        for call in [*self.left.all_calls(), *self.right.all_calls()]:
            for slot in call.slots():
                seen.setdefault(slot.slot_id, slot)
        return list(seen.values())

    @property
    def full_context(self) -> bool:
        return self.left.full_context and self.right.full_context

    def describe(self) -> str:
        header = f"TestPlan for {self.pair.describe()}"
        shared = f"shared object: {self.shared_slot}" if self.shared_slot else (
            "shared receiver" if self.receivers_shared else "no sharing derived"
        )
        return "\n".join(
            [
                header,
                shared,
                "thread 1:",
                self.left.describe(),
                "thread 2:",
                self.right.describe(),
            ]
        )
