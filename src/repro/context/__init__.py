"""Stage 2b of Narada: context derivation (§3.3, Fig. 10)."""

from repro.context.deriver import ContextDeriver, SetterDatabase, derive_plans
from repro.context.plan import (
    ObjectSlot,
    PlannedCall,
    SeedArg,
    SidePlan,
    SlotArg,
    TestPlan,
)

__all__ = [
    "ContextDeriver",
    "ObjectSlot",
    "PlannedCall",
    "SeedArg",
    "SetterDatabase",
    "SidePlan",
    "SlotArg",
    "TestPlan",
    "derive_plans",
]
