"""Persistent content-addressed cache of pipeline artifacts.

Every pipeline stage output (analysis, synthesis, detection) is a
deterministic function of three inputs, and the cache key is a digest of
exactly those:

* the **pretty-printed class table** — canonical program text, so
  formatting/comment changes in a source file do not invalidate, while
  any semantic change does;
* the **pipeline config** for the stage (VM seed, fuzz budget, directed
  phase on/off, ...), so e.g. raising ``--runs`` invalidates detection
  but leaves the cached synthesis artifact valid — a rerun skips
  straight to the first invalidated stage;
* a **code version salt** (:data:`CODE_SALT` + the serial format
  version), bumped whenever pipeline semantics or encoding change, so
  artifacts from older code are never reused.

Entries are JSON files under ``<root>/<stage>/<digest[:2]>/<digest>.json``.
Writes are crash-safe: content goes to a same-directory temp file first
and is published with ``os.replace`` (atomic on POSIX), so a reader can
never observe a half-written entry.  A corrupted or truncated entry
(killed writer predating this scheme, disk trouble) is treated as a
cache miss and evicted, never as an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.lang import ClassTable, load
from repro.lang.pretty import pretty_program
from repro.narada.serial import SERIAL_VERSION, canonical_json

#: Bump to invalidate every cached artifact after a semantic change to
#: any pipeline stage (analysis rules, synthesis, fuzz seed derivation).
CODE_SALT = "narada-pipeline-v4"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-narada``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-narada"


def table_digest(source_or_table: str | ClassTable) -> str:
    """Digest of the canonical (pretty-printed) program text."""
    if isinstance(source_or_table, ClassTable):
        table = source_or_table
    else:
        table = load(source_or_table)
    text = pretty_program(table.program)
    return hashlib.sha256(text.encode()).hexdigest()


def stage_key(table_dig: str, stage: str, config: dict) -> str:
    """Content address of one stage artifact for one program."""
    payload = {
        "table": table_dig,
        "stage": stage,
        "config": config,
        "salt": CODE_SALT,
        "serial_version": SERIAL_VERSION,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0


@dataclass
class ArtifactCache:
    """Digest-keyed JSON artifact store with atomic, crash-safe writes."""

    root: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)
    _tmp_counter: int = 0

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        self._tmp_counter = 0

    def _path(self, stage: str, key: str) -> pathlib.Path:
        return self.root / stage / key[:2] / f"{key}.json"

    def get(self, stage: str, key: str) -> dict | None:
        """Load an entry; any unreadable/corrupt entry is a miss."""
        path = self._path(stage, key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not an object")
        except (ValueError, UnicodeDecodeError):
            # Truncated or garbled entry: evict and report a miss so the
            # pipeline recomputes instead of crashing.
            self.stats.evictions += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return data

    def put(self, stage: str, key: str, data: dict) -> None:
        """Publish an entry atomically (write temp file, then rename)."""
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp_counter += 1
        tmp = path.parent / f".tmp-{os.getpid()}-{self._tmp_counter}"
        try:
            tmp.write_text(canonical_json(data))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def clear(self) -> None:
        """Remove every entry (directories are left in place)."""
        if not self.root.exists():
            return
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
            except OSError:
                pass
