"""Persistent content-addressed cache of pipeline artifacts.

Every pipeline stage output (analysis, synthesis, detection) is a
deterministic function of three inputs, and the cache key is a digest of
exactly those:

* the **pretty-printed class table** — canonical program text, so
  formatting/comment changes in a source file do not invalidate, while
  any semantic change does;
* the **pipeline config** for the stage (VM seed, fuzz budget, directed
  phase on/off, ...), so e.g. raising ``--runs`` invalidates detection
  but leaves the cached synthesis artifact valid — a rerun skips
  straight to the first invalidated stage;
* a **code version salt** (:data:`CODE_SALT` + the serial format
  version), bumped whenever pipeline semantics or encoding change, so
  artifacts from older code are never reused.

Entries are JSON files under ``<root>/<stage>/<digest[:2]>/<digest>.json``.
Writes are crash-safe: content goes to a same-directory temp file first
and is published with ``os.replace`` (atomic on POSIX), so a reader can
never observe a half-written entry.  A corrupted, truncated, or
schema-stale entry (killed writer predating this scheme, disk trouble,
an artifact written by an incompatible serial format) is **quarantined**
— moved to a ``quarantine/<stage>/`` sibling directory next to a
``.reason.txt`` explaining why — and reported as a cache miss, never an
error: the pipeline recomputes and the operator keeps the evidence.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.lang import ClassTable, load
from repro.lang.pretty import pretty_program
from repro.narada.faults import FaultInjector
from repro.narada.serial import SERIAL_VERSION, canonical_json

#: Bump to invalidate every cached artifact after a semantic change to
#: any pipeline stage (analysis rules, synthesis, fuzz seed derivation).
CODE_SALT = "narada-pipeline-v7"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> pathlib.Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-narada``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-narada"


def table_digest(source_or_table: str | ClassTable) -> str:
    """Digest of the canonical (pretty-printed) program text."""
    if isinstance(source_or_table, ClassTable):
        table = source_or_table
    else:
        table = load(source_or_table)
    text = pretty_program(table.program)
    return hashlib.sha256(text.encode()).hexdigest()


def stage_key(table_dig: str, stage: str, config: dict) -> str:
    """Content address of one stage artifact for one program."""
    payload = {
        "table": table_dig,
        "stage": stage,
        "config": config,
        "salt": CODE_SALT,
        "serial_version": SERIAL_VERSION,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    quarantined: int = 0


@dataclass
class ArtifactCache:
    """Digest-keyed JSON artifact store with atomic, crash-safe writes."""

    root: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)
    _tmp_counter: int = 0

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        self.fault_injector = fault_injector
        self._tmp_counter = 0

    def _path(self, stage: str, key: str) -> pathlib.Path:
        return self.root / stage / key[:2] / f"{key}.json"

    def quarantine(self, stage: str, key: str, reason: str) -> None:
        """Move a bad entry to ``quarantine/<stage>/`` with a reason file.

        Quarantined entries are out of the lookup path (the next ``get``
        is a clean miss) but preserved for post-mortem instead of being
        destroyed; the eviction counter still ticks so existing health
        checks keep working.
        """
        path = self._path(stage, key)
        qdir = self.root / "quarantine" / stage
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{key}.json")
            (qdir / f"{key}.reason.txt").write_text(reason + "\n")
        except OSError:
            # Quarantine is best-effort; fall back to plain eviction so
            # a poisoned entry can never be served again.
            try:
                path.unlink()
            except OSError:
                return
        self.stats.evictions += 1
        self.stats.quarantined += 1

    def get(self, stage: str, key: str) -> dict | None:
        """Load an entry; unreadable/corrupt/stale entries are misses."""
        path = self._path(stage, key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        except UnicodeDecodeError as error:
            self.stats.misses += 1
            self.quarantine(stage, key, f"unreadable entry: {error!r}")
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            # Truncated or garbled entry: quarantine and report a miss
            # so the pipeline recomputes instead of crashing.
            self.stats.misses += 1
            self.quarantine(stage, key, f"unreadable entry: {error!r}")
            return None
        version = data.get("version")
        if version is not None and version != SERIAL_VERSION:
            self.stats.misses += 1
            self.quarantine(
                stage,
                key,
                f"schema-stale entry: version {version!r} != "
                f"serial version {SERIAL_VERSION}",
            )
            return None
        self.stats.hits += 1
        return data

    def put(self, stage: str, key: str, data: dict) -> None:
        """Publish an entry atomically (write temp file, then rename)."""
        path = self._path(stage, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp_counter += 1
        tmp = path.parent / f".tmp-{os.getpid()}-{self._tmp_counter}"
        try:
            tmp.write_text(canonical_json(data))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.writes += 1
        injector = self.fault_injector
        if injector is not None and injector.corrupt_write(key):
            # Test-only torn-write simulation: shear the published entry
            # so the next read exercises the quarantine path.
            text = path.read_text()
            path.write_text(text[: max(1, len(text) // 3)])

    def clear(self) -> None:
        """Remove every entry (directories are left in place)."""
        if not self.root.exists():
            return
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
            except OSError:
                pass
