"""Persistent content-addressed cache of pipeline artifacts.

Every pipeline stage output (analysis, synthesis, detection) is a
deterministic function of three inputs, and the cache key is a digest of
exactly those:

* the **pretty-printed class table** — canonical program text, so
  formatting/comment changes in a source file do not invalidate, while
  any semantic change does;
* the **pipeline config** for the stage (VM seed, fuzz budget, directed
  phase on/off, ...), so e.g. raising ``--runs`` invalidates detection
  but leaves the cached synthesis artifact valid — a rerun skips
  straight to the first invalidated stage;
* a **code version salt** (:data:`CODE_SALT` + the serial format
  version), bumped whenever pipeline semantics or encoding change, so
  artifacts from older code are never reused.

Entries are JSON files under ``<root>/<stage>/<digest[:2]>/<digest>.json``.
Writes are crash-safe: content goes to a same-directory temp file first
and is published with ``os.replace`` (atomic on POSIX), so a reader can
never observe a half-written entry.  A corrupted, truncated, or
schema-stale entry (killed writer predating this scheme, disk trouble,
an artifact written by an incompatible serial format) is **quarantined**
— moved to a ``quarantine/<stage>/`` sibling directory next to a
``.reason.txt`` explaining why — and reported as a cache miss, never an
error: the pipeline recomputes and the operator keeps the evidence.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass, field

from repro.lang import ClassTable, load
from repro.lang.pretty import pretty_program
from repro.narada.faults import FaultInjector
from repro.narada.serial import SERIAL_VERSION, canonical_json

#: Bump to invalidate every cached artifact after a semantic change to
#: any pipeline stage (analysis rules, synthesis, fuzz seed derivation).
CODE_SALT = "narada-pipeline-v7"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Access-time journal filename (lives at the cache root).  One JSON
#: line per touch; torn trailing lines (crashed writer) are skipped.
ATIME_JOURNAL = "atime.journal"

#: Rewrite the journal down to one line per live entry after this many
#: appends; bounds journal growth without an fsync-per-touch cost.
_JOURNAL_COMPACT_EVERY = 2048

#: Quarantine GC defaults: keep at most this many entries, and none
#: older than this.  Both are per-cache-root, across all stages.
DEFAULT_QUARANTINE_MAX_ENTRIES = 512
DEFAULT_QUARANTINE_MAX_AGE_S = 7 * 24 * 3600.0


def default_cache_dir() -> pathlib.Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-narada``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-narada"


def table_digest(source_or_table: str | ClassTable) -> str:
    """Digest of the canonical (pretty-printed) program text."""
    if isinstance(source_or_table, ClassTable):
        table = source_or_table
    else:
        table = load(source_or_table)
    text = pretty_program(table.program)
    return hashlib.sha256(text.encode()).hexdigest()


def stage_key(table_dig: str, stage: str, config: dict) -> str:
    """Content address of one stage artifact for one program."""
    payload = {
        "table": table_dig,
        "stage": stage,
        "config": config,
        "salt": CODE_SALT,
        "serial_version": SERIAL_VERSION,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    quarantined: int = 0
    #: ``put`` calls that failed at the filesystem (ENOSPC, EIO, ...);
    #: the pipeline result was still returned, only the cache write was
    #: dropped.
    write_errors: int = 0
    #: Quarantined entries removed by GC (age or count cap).
    quarantine_dropped: int = 0


@dataclass
class ArtifactCache:
    """Digest-keyed JSON artifact store with atomic, crash-safe writes."""

    root: pathlib.Path
    stats: CacheStats = field(default_factory=CacheStats)
    _tmp_counter: int = 0

    def __init__(
        self,
        root: str | pathlib.Path | None = None,
        fault_injector: FaultInjector | None = None,
        max_bytes: int | None = None,
        quarantine_max_entries: int = DEFAULT_QUARANTINE_MAX_ENTRIES,
        quarantine_max_age_s: float = DEFAULT_QUARANTINE_MAX_AGE_S,
    ) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()
        self.fault_injector = fault_injector
        #: Byte budget for live entries (quarantine excluded); ``None``
        #: disables eviction entirely — worker-process caches stay
        #: journal-free and the daemon's cache enforces the budget.
        self.max_bytes = max_bytes
        self.quarantine_max_entries = max(0, quarantine_max_entries)
        self.quarantine_max_age_s = max(0.0, quarantine_max_age_s)
        self._tmp_counter = 0
        self._journal_appends = 0
        #: Running estimate of live-entry bytes, seeded by a scan on the
        #: first budgeted ``put``; ``evict`` rescans for exactness.
        self._approx_bytes: int | None = None

    def _path(self, stage: str, key: str) -> pathlib.Path:
        return self.root / stage / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Entry enumeration (live entries only; quarantine and the journal
    # live outside the ``<stage>/<aa>/<digest>.json`` shape).

    def _iter_entries(self):
        """Yield ``(rel_key, path, size, mtime)`` for every live entry."""
        if not self.root.exists():
            return
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name == "quarantine":
                continue
            for path in sorted(stage_dir.glob("*/*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                rel = f"{stage_dir.name}/{path.stem}"
                yield rel, path, stat.st_size, stat.st_mtime

    def total_bytes(self) -> int:
        """Exact byte total of live entries (rescans the tree)."""
        return sum(size for _, _, size, _ in self._iter_entries())

    def entry_count(self) -> int:
        return sum(1 for _ in self._iter_entries())

    def quarantine_count(self) -> int:
        qroot = self.root / "quarantine"
        if not qroot.exists():
            return 0
        return sum(1 for _ in qroot.glob("*/*.json"))

    # ------------------------------------------------------------------
    # Access-time journal.  Appends are O(1); readers tolerate torn
    # trailing lines, so a writer killed mid-append costs at most one
    # recency observation (the entry falls back to file mtime).

    @property
    def _journal_path(self) -> pathlib.Path:
        return self.root / ATIME_JOURNAL

    def _touch(self, rel_key: str) -> None:
        if self.max_bytes is None:
            return
        line = json.dumps({"k": rel_key, "t": round(time.time(), 3)})
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self._journal_path, "a") as handle:
                handle.write(line + "\n")
        except OSError:
            return  # recency tracking is best-effort
        self._journal_appends += 1
        if self._journal_appends >= _JOURNAL_COMPACT_EVERY:
            self._compact_journal()

    def _load_atimes(self) -> dict[str, float]:
        """Latest journalled access time per entry; torn lines skipped."""
        atimes: dict[str, float] = {}
        try:
            text = self._journal_path.read_text()
        except OSError:
            return atimes
        for line in text.splitlines():
            try:
                record = json.loads(line)
                atimes[record["k"]] = float(record["t"])
            except (ValueError, KeyError, TypeError):
                continue  # torn or garbled line: at worst a stale atime
        return atimes

    def _compact_journal(self) -> None:
        """Rewrite the journal to one line per live entry, atomically."""
        atimes = self._load_atimes()
        live = {rel for rel, _, _, _ in self._iter_entries()}
        lines = [
            json.dumps({"k": rel, "t": stamp})
            for rel, stamp in sorted(atimes.items())
            if rel in live
        ]
        tmp = self.root / f".{ATIME_JOURNAL}.tmp-{os.getpid()}"
        try:
            tmp.write_text("".join(line + "\n" for line in lines))
            os.replace(tmp, self._journal_path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
        self._journal_appends = 0

    def quarantine(self, stage: str, key: str, reason: str) -> None:
        """Move a bad entry to ``quarantine/<stage>/`` with a reason file.

        Quarantined entries are out of the lookup path (the next ``get``
        is a clean miss) but preserved for post-mortem instead of being
        destroyed; the eviction counter still ticks so existing health
        checks keep working.
        """
        path = self._path(stage, key)
        qdir = self.root / "quarantine" / stage
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / f"{key}.json")
            (qdir / f"{key}.reason.txt").write_text(reason + "\n")
        except OSError:
            # Quarantine is best-effort; fall back to plain eviction so
            # a poisoned entry can never be served again.
            try:
                path.unlink()
            except OSError:
                return
        self.stats.evictions += 1
        self.stats.quarantined += 1
        self.gc_quarantine()

    def gc_quarantine(self) -> int:
        """Drop quarantined entries past the age or count cap.

        Oldest-first by mtime; each dropped entry takes its
        ``.reason.txt`` with it.  Returns the number of entries removed
        (also tracked in ``stats.quarantine_dropped``).
        """
        qroot = self.root / "quarantine"
        if not qroot.exists():
            return 0
        entries: list[tuple[float, pathlib.Path]] = []
        for path in qroot.glob("*/*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        entries.sort()
        cutoff = time.time() - self.quarantine_max_age_s
        doomed = [p for mtime, p in entries if mtime < cutoff]
        survivors = len(entries) - len(doomed)
        if survivors > self.quarantine_max_entries:
            fresh = [p for mtime, p in entries if mtime >= cutoff]
            doomed.extend(fresh[: survivors - self.quarantine_max_entries])
        dropped = 0
        for path in doomed:
            try:
                path.unlink()
                dropped += 1
            except OSError:
                continue
            try:
                path.with_name(f"{path.stem}.reason.txt").unlink()
            except OSError:
                pass
        self.stats.quarantine_dropped += dropped
        return dropped

    def get(self, stage: str, key: str) -> dict | None:
        """Load an entry; unreadable/corrupt/stale entries are misses."""
        path = self._path(stage, key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        except UnicodeDecodeError as error:
            self.stats.misses += 1
            self.quarantine(stage, key, f"unreadable entry: {error!r}")
            return None
        try:
            data = json.loads(text)
            if not isinstance(data, dict):
                raise ValueError("cache entry is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            # Truncated or garbled entry: quarantine and report a miss
            # so the pipeline recomputes instead of crashing.
            self.stats.misses += 1
            self.quarantine(stage, key, f"unreadable entry: {error!r}")
            return None
        version = data.get("version")
        if version is not None and version != SERIAL_VERSION:
            self.stats.misses += 1
            self.quarantine(
                stage,
                key,
                f"schema-stale entry: version {version!r} != "
                f"serial version {SERIAL_VERSION}",
            )
            return None
        self.stats.hits += 1
        self._touch(f"{stage}/{key}")
        return data

    def put(self, stage: str, key: str, data: dict) -> bool:
        """Publish an entry atomically (write temp file, then rename).

        Returns ``True`` on success.  Filesystem failures (ENOSPC, EIO,
        a read-only root) are absorbed: the temp file is cleaned up,
        ``stats.write_errors`` ticks, and the caller gets ``False`` —
        a full disk must never take down the request that computed the
        artifact, only skip memoizing it.
        """
        path = self._path(stage, key)
        self._tmp_counter += 1
        tmp = path.parent / f".tmp-{os.getpid()}-{self._tmp_counter}"
        text = canonical_json(data)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            injector = self.fault_injector
            if injector is not None and injector.enospc_write(key):
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            tmp.write_text(text)
            os.replace(tmp, path)
        except OSError:
            self.stats.write_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.writes += 1
        self._touch(f"{stage}/{key}")
        injector = self.fault_injector
        if injector is not None and injector.corrupt_write(key):
            # Test-only torn-write simulation: shear the published entry
            # so the next read exercises the quarantine path.
            text = path.read_text()
            path.write_text(text[: max(1, len(text) // 3)])
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = self.total_bytes()
            else:
                self._approx_bytes += len(text)
            if self._approx_bytes > self.max_bytes:
                self.evict(self.max_bytes)
        return True

    def evict(self, max_bytes: int) -> int:
        """Evict least-recently-used entries until ≤ ``max_bytes`` live.

        Recency is the journalled access time where one exists, file
        mtime otherwise (fresh cache, torn journal line, or an entry
        written by an unbudgeted worker cache sharing the root).
        Returns the number of entries removed.
        """
        entries = list(self._iter_entries())
        total = sum(size for _, _, size, _ in entries)
        removed = 0
        if total > max_bytes:
            atimes = self._load_atimes()
            entries.sort(key=lambda e: atimes.get(e[0], e[3]))
            for _, path, size, _ in entries:
                if total <= max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
            self.stats.evictions += removed
            self._compact_journal()
        self._approx_bytes = total
        return removed

    def clear(self) -> None:
        """Remove every entry (directories are left in place)."""
        if not self.root.exists():
            return
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
            except OSError:
                pass
