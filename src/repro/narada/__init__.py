"""The end-to-end Narada pipeline."""

from repro.narada.cache import ArtifactCache, default_cache_dir, table_digest
from repro.narada.daemon import (
    AdmissionController,
    DaemonClient,
    ReproDaemon,
    ResourceGovernor,
    default_socket_path,
)
from repro.narada.faults import (
    CancelToken,
    FaultInjector,
    FaultLedger,
    FaultPlan,
    RunCancelled,
    RunLedger,
    UnitExecutionError,
    UnitFailure,
)
from repro.narada.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    SubjectOutcome,
    SubjectSpec,
    subject_specs,
)
from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport

__all__ = [
    "AdmissionController",
    "ArtifactCache",
    "CancelToken",
    "DaemonClient",
    "DetectionReport",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "Narada",
    "PipelineConfig",
    "PipelineOrchestrator",
    "ReproDaemon",
    "ResourceGovernor",
    "RunCancelled",
    "RunLedger",
    "SubjectOutcome",
    "SubjectSpec",
    "SynthesisReport",
    "UnitExecutionError",
    "UnitFailure",
    "default_cache_dir",
    "default_socket_path",
    "subject_specs",
    "table_digest",
]
