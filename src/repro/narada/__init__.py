"""The end-to-end Narada pipeline."""

from repro.narada.cache import ArtifactCache, default_cache_dir, table_digest
from repro.narada.daemon import DaemonClient, ReproDaemon, default_socket_path
from repro.narada.faults import (
    FaultInjector,
    FaultLedger,
    FaultPlan,
    RunLedger,
    UnitExecutionError,
    UnitFailure,
)
from repro.narada.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    SubjectOutcome,
    SubjectSpec,
    subject_specs,
)
from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport

__all__ = [
    "ArtifactCache",
    "DaemonClient",
    "DetectionReport",
    "FaultInjector",
    "FaultLedger",
    "FaultPlan",
    "Narada",
    "PipelineConfig",
    "PipelineOrchestrator",
    "ReproDaemon",
    "RunLedger",
    "SubjectOutcome",
    "SubjectSpec",
    "SynthesisReport",
    "UnitExecutionError",
    "UnitFailure",
    "default_cache_dir",
    "default_socket_path",
    "subject_specs",
    "table_digest",
]
