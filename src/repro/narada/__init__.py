"""The end-to-end Narada pipeline."""

from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport

__all__ = ["DetectionReport", "Narada", "SynthesisReport"]
