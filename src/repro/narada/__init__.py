"""The end-to-end Narada pipeline."""

from repro.narada.cache import ArtifactCache, default_cache_dir, table_digest
from repro.narada.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    SubjectSpec,
    subject_specs,
)
from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport

__all__ = [
    "ArtifactCache",
    "DetectionReport",
    "Narada",
    "PipelineConfig",
    "PipelineOrchestrator",
    "SubjectSpec",
    "SynthesisReport",
    "default_cache_dir",
    "subject_specs",
    "table_digest",
]
