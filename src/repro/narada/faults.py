"""Fault-tolerance layer for the parallel pipeline.

Narada's value (paper §3.4) is that every seed run yields synthesized
racy tests even when individual subjects misbehave: RaceFuzzer and
ConTeGe both survive per-test failures by recording them and moving on.
This module gives the orchestrator the same property at every stage:

* :class:`FaultTolerantPool` — a small process pool built on per-worker
  pipes instead of ``concurrent.futures``.  Workers receive **batches**
  of units per round-trip (auto-sized by :class:`BatchSizer` so one
  dispatch carries ~``batch_target_ms`` of work — per-unit pipe
  round-trips dominate when units cost single-digit milliseconds) but
  stream **one result message per unit**, so the parent always knows
  exactly which unit each worker is executing: a dead or hung worker is
  blamed on *precisely* the in-flight unit (a ``BrokenProcessPool``
  cannot say which task killed it), the results already streamed for
  earlier units in the batch survive, the not-yet-started remainder is
  requeued untouched, and only the blamed unit is retried.  Workers are
  persistent: one pool serves every phase of a run (and, under the
  daemon, every request), so spawn cost and per-process caches amortize
  across the whole workload.
* :class:`RetryPolicy` — per-unit wall-clock watchdog deadlines and
  bounded retries with exponential backoff.  Retries re-run the same
  pure unit (schedule seeds depend only on content), so a retried
  result is bit-identical to a first-try one.
* :class:`FaultLedger` / :class:`UnitFailure` — the structured run
  report of everything that went wrong: failed units carry their stage,
  subject, exception repr, traceback, and attempt count; counters cover
  retries, pool respawns, watchdog kills, quarantined cache entries and
  resumed (skipped) units.  ``run()`` returns partial results plus this
  ledger instead of propagating the first worker death.
* :class:`RunLedger` — a crash-safe append-only JSONL journal of
  completed unit keys, so ``--resume`` after an interrupted run skips
  straight past finished work (the artifact cache holds the results;
  the journal records which units completed and is tolerant of a torn
  final line).
* :class:`FaultInjector` — the test-only probabilistic fault hook
  (``--fault-inject crash:0.3,hang:0.1,corrupt:0.05`` or the
  ``REPRO_FAULT_INJECT`` environment variable).  Draws are sha-derived
  from ``(kind, unit key, attempt)`` — deterministic per revision,
  independent of pool scheduling, and different per attempt so injected
  failures are transient and retries converge.

Nothing here imports the rest of :mod:`repro.narada`; the orchestrator
and cache layer on top of it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import signal
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process, connection

#: Environment variable carrying a fault-injection spec into worker
#: processes (test-only; same syntax as ``--fault-inject``).
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: How long an injected hang sleeps when no watchdog deadline exists, so
#: an unwatched hang degrades to latency instead of blocking forever.
UNWATCHED_HANG_SECONDS = 5.0

#: Exit code an injected worker crash dies with (visible in waitpid).
INJECTED_CRASH_EXIT = 13

#: Default per-dispatch work target: batches are sized so one worker
#: round-trip carries about this much compute (amortizing the pipe IPC
#: and pickling under it) while staying small enough that crash blame,
#: watchdog deadlines, and checkpointing remain responsive.
DEFAULT_BATCH_TARGET_MS = 75.0

#: Hard cap on units per dispatch regardless of how cheap they look.
MAX_BATCH_UNITS = 64


#: Consecutive worker deaths (no intervening successful unit) before
#: the pool declares itself wedged and rebuilds every worker.
DEFAULT_REBUILD_AFTER_DEATHS = 8


class UnitTimeout(Exception):
    """A work unit exceeded its wall-clock watchdog deadline."""


class WorkerCrash(Exception):
    """A worker process died (killed, segfaulted, or ``os._exit``)."""


class RunCancelled(Exception):
    """A run was cooperatively cancelled at a unit boundary.

    Raised by :meth:`FaultTolerantPool.run` / :meth:`InlineRunner.run`
    when their :class:`CancelToken` fires — either explicitly or by its
    deadline passing.  Completed units up to that point were already
    published through ``on_complete``; nothing after the boundary runs.
    """


class CancelToken:
    """Cooperative cancellation handle checked at unit boundaries.

    Carries an optional absolute ``deadline`` (``time.monotonic``
    scale); :meth:`cancelled` reports true once the deadline passes or
    :meth:`cancel` was called.  The executors never interrupt a unit
    mid-flight from this token — cancellation lands *between* units,
    which is what keeps retried/cancelled runs deterministic.  (Pooled
    units in flight when the token fires are terminated with their
    workers; the units themselves are pure, so nothing observable leaks.)
    """

    __slots__ = ("deadline", "_event", "_reason")

    def __init__(self, deadline: float | None = None) -> None:
        self.deadline = deadline
        self._event = threading.Event()
        self._reason: str | None = None

    @classmethod
    def after(cls, seconds: float | None) -> "CancelToken":
        """A token expiring ``seconds`` from now (None: never expires)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.monotonic() + max(0.0, seconds))

    def cancel(self, reason: str = "cancelled") -> None:
        if not self._event.is_set():
            self._reason = reason
            self._event.set()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def cancelled(self) -> bool:
        return self._event.is_set() or self.expired()

    def remaining(self) -> float | None:
        """Seconds until the deadline (None: no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def reason(self) -> str:
        if self._event.is_set():
            return self._reason or "cancelled"
        if self.expired():
            return "deadline exceeded"
        return "not cancelled"

    def check(self) -> None:
        """Raise :class:`RunCancelled` if the token has fired."""
        if self.cancelled():
            raise RunCancelled(self.reason())


class InjectedCrash(RuntimeError):
    """Inline-mode analogue of an injected worker death."""


class UnitExecutionError(Exception):
    """A unit failed permanently; carries the structured failure."""

    def __init__(self, failure: "UnitFailure") -> None:
        super().__init__(
            f"{failure.stage} unit {failure.unit!r} of {failure.subject} "
            f"failed after {failure.attempts} attempt(s): {failure.error}"
        )
        self.failure = failure


# ----------------------------------------------------------------------
# Fault injection.


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``--fault-inject`` spec: per-kind injection probabilities.

    The first three kinds are worker-level (PR 5): ``crash`` kills the
    worker process mid-unit, ``hang`` sleeps past the watchdog,
    ``corrupt`` tears a cache entry after its atomic publish.  The rest
    are the daemon-layer chaos kinds:

    * ``enospc`` — a cache write raises ``OSError(ENOSPC)`` before the
      temp file is published (the cache must degrade to a non-caching
      pipeline, never crash the unit);
    * ``spill`` — a spill-to-disk column chunk is corrupted after its
      flush (content addressing must *detect* it: the spilled digest
      diverges instead of silently reusing poisoned artifacts);
    * ``torn_frame`` / ``oversize_frame`` / ``slow_client`` — wire-level
      client misbehavior, consumed by the chaos bench's client driver
      (``benchmarks/bench_chaos_daemon.py``) to decide per request
      whether to shear a frame, send an oversized length prefix, or
      stall mid-frame.

    All kinds share the sha-keyed :func:`draw` discipline: injections
    are a pure function of ``(kind, key, attempt)``, so a chaos run is
    reproducible and retries converge.
    """

    crash: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    enospc: float = 0.0
    spill: float = 0.0
    torn_frame: float = 0.0
    oversize_frame: float = 0.0
    slow_client: float = 0.0

    KINDS = (
        "crash",
        "hang",
        "corrupt",
        "enospc",
        "spill",
        "torn_frame",
        "oversize_frame",
        "slow_client",
    )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"crash:0.3,hang:0.1"`` (unknown kinds are an error)."""
        rates = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, rate = part.partition(":")
                rates[kind.strip()] = float(rate)
            except ValueError:
                raise ValueError(f"bad fault-inject entry {part!r}") from None
        unknown = set(rates) - set(cls.KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"expected {'/'.join(cls.KINDS)}"
            )
        return cls(**rates)

    def to_spec(self) -> str:
        parts = [
            f"{kind}:{getattr(self, kind)}"
            for kind in self.KINDS
            if getattr(self, kind) > 0.0
        ]
        return ",".join(parts)

    def active(self) -> bool:
        return any(getattr(self, kind) > 0.0 for kind in self.KINDS)


def draw(kind: str, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one injection decision.

    Keyed on content only — never on wall clock, process identity, or
    pool scheduling — so a fault-injected run is reproducible, and on
    the attempt index so retries redraw and eventually pass.  Public:
    the daemon chaos bench keys its client-side misbehavior (torn
    frames, stalls) on the same discipline.
    """
    digest = hashlib.sha256(f"{kind}\x1f{key}\x1f{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


_draw = draw  # original (private) name, kept for in-tree callers


@dataclass(frozen=True)
class FaultInjector:
    """Applies a :class:`FaultPlan` at the unit and cache-write hooks."""

    plan: FaultPlan
    hang_seconds: float = UNWATCHED_HANG_SECONDS

    @classmethod
    def from_spec(
        cls, spec: str | None, unit_timeout: float | None = None
    ) -> "FaultInjector | None":
        """Injector for a spec string (or the env fallback), or None.

        An injected hang must outlive the watchdog deadline to trigger
        it, but must still terminate when no deadline is armed — so the
        sleep is ``3 * unit_timeout`` when one exists and a small
        constant otherwise.
        """
        spec = spec if spec is not None else os.environ.get(FAULT_INJECT_ENV)
        if not spec:
            return None
        plan = FaultPlan.parse(spec)
        if not plan.active():
            return None
        hang = (
            3.0 * unit_timeout
            if unit_timeout is not None
            else UNWATCHED_HANG_SECONDS
        )
        return cls(plan=plan, hang_seconds=hang)

    def before_unit(self, key: str, attempt: int, in_worker: bool) -> None:
        """Maybe crash or hang at the start of a unit execution."""
        if self.plan.crash and _draw("crash", key, attempt) < self.plan.crash:
            if in_worker:
                os._exit(INJECTED_CRASH_EXIT)  # a real, uncatchable death
            raise InjectedCrash(f"injected crash (unit {key[:12]})")
        if self.plan.hang and _draw("hang", key, attempt) < self.plan.hang:
            # In a worker the watchdog SIGTERMs us mid-sleep; inline the
            # SIGALRM watchdog interrupts the sleep with UnitTimeout.
            time.sleep(self.hang_seconds)

    def corrupt_write(self, key: str) -> bool:
        """Should this cache entry be torn after its atomic publish?"""
        return bool(
            self.plan.corrupt and _draw("corrupt", key, 0) < self.plan.corrupt
        )

    def enospc_write(self, key: str) -> bool:
        """Should this cache write fail with ``OSError(ENOSPC)``?

        Drawn per entry (not per attempt): a full disk stays full for
        the duration of one write, and the cache layer must absorb the
        failure as a skipped publish, not a crashed unit.
        """
        return bool(
            self.plan.enospc and _draw("enospc", key, 0) < self.plan.enospc
        )

    def corrupt_spill(self, key: str) -> bool:
        """Should this spill chunk be corrupted after its flush?"""
        return bool(
            self.plan.spill and _draw("spill", key, 0) < self.plan.spill
        )


# ----------------------------------------------------------------------
# Batch sizing.


class BatchSizer:
    """Adaptive units-per-dispatch from an EMA of observed unit cost.

    The parent measures each unit's cost as the interval between its
    worker's result messages (compute plus its share of pipe traffic —
    exactly the quantity a dispatch must amortize) and keeps one
    exponential moving average per stage, since synthesis units and fuzz
    units live on different cost scales.  A stage with no observations
    yet dispatches one unit — the probe that seeds the average — and
    from then on ``size()`` targets ``target_ms`` of work per dispatch,
    clamped to [1, ``max_units``].

    Sizing only changes *when* a unit runs, never what it computes, so
    any target (including the ``--batch-ms`` override) produces
    byte-identical results.
    """

    __slots__ = ("target_s", "max_units", "alpha", "_ema")

    def __init__(
        self,
        target_ms: float = DEFAULT_BATCH_TARGET_MS,
        max_units: int = MAX_BATCH_UNITS,
        alpha: float = 0.3,
    ) -> None:
        self.target_s = max(0.0, target_ms) / 1000.0
        self.max_units = max(1, max_units)
        self.alpha = alpha
        self._ema: dict[str, float] = {}

    def observe(self, stage: str, seconds: float) -> None:
        seconds = max(1e-6, seconds)
        previous = self._ema.get(stage)
        if previous is None:
            self._ema[stage] = seconds
        else:
            self._ema[stage] = (
                self.alpha * seconds + (1.0 - self.alpha) * previous
            )

    def unit_cost(self, stage: str) -> float | None:
        return self._ema.get(stage)

    def size(self, stage: str) -> int:
        if self.target_s <= 0.0:
            return 1  # batching disabled: one unit per round-trip
        ema = self._ema.get(stage)
        if ema is None:
            return 1  # probe dispatch seeds the average
        return max(1, min(self.max_units, int(self.target_s / ema)))


# ----------------------------------------------------------------------
# Structured failure reporting.


@dataclass
class UnitFailure:
    """One work unit that failed permanently (all retries exhausted)."""

    stage: str
    subject: str
    unit: str
    error: str
    """``repr()`` of the terminal exception."""
    trace: str
    """Traceback text (worker-side when the unit ran in a worker)."""
    attempts: int

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "subject": self.subject,
            "unit": self.unit,
            "error": self.error,
            "trace": self.trace,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UnitFailure":
        return cls(**data)


@dataclass
class FaultLedger:
    """Everything that went wrong (and was survived) during one run."""

    failures: list[UnitFailure] = field(default_factory=list)
    completed: int = 0
    retries: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    quarantined: int = 0
    resumed: int = 0
    batches: int = 0
    """Worker dispatches (each carries one or more units)."""
    warm_reuses: int = 0
    """Dispatches served by an already-warm worker — every one of these
    is a spawn a per-phase (or per-request) pool would have paid."""

    def ok(self) -> bool:
        return not self.failures

    def record(self, failure: UnitFailure) -> None:
        self.failures.append(failure)

    def absorb(self, other: "FaultLedger") -> None:
        """Fold another run's ledger into this one (wave aggregation)."""
        self.failures.extend(other.failures)
        self.completed += other.completed
        self.retries += other.retries
        self.pool_respawns += other.pool_respawns
        self.timeouts += other.timeouts
        self.quarantined += other.quarantined
        self.resumed += other.resumed
        self.batches += other.batches
        self.warm_reuses += other.warm_reuses

    def describe(self) -> str:
        """The CLI failure-summary table."""
        lines = ["-- fault ledger --"]
        if self.failures:
            rows = [("stage", "subject", "unit", "attempts", "error")]
            for f in self.failures:
                rows.append(
                    (f.stage, f.subject, f.unit or "-", str(f.attempts), f.error)
                )
            widths = [
                max(len(row[col]) for row in rows) for col in range(4)
            ]
            for row in rows:
                cells = [row[col].ljust(widths[col]) for col in range(4)]
                lines.append("  ".join(cells + [row[4]]))
        else:
            lines.append("no failed units")
        lines.append(
            f"completed={self.completed} retries={self.retries} "
            f"timeouts={self.timeouts} pool_respawns={self.pool_respawns} "
            f"quarantined={self.quarantined} resumed={self.resumed} "
            f"batches={self.batches} warm_reuses={self.warm_reuses}"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Canonical dict form (see :mod:`repro.narada.serial`)."""
        from repro.narada.serial import encode_fault_ledger

        return encode_fault_ledger(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultLedger":
        from repro.narada.serial import decode_fault_ledger

        return decode_fault_ledger(data)


# ----------------------------------------------------------------------
# Checkpointed resume: the completed-unit journal.


class RunLedger:
    """Crash-safe append-only journal of completed unit keys.

    One JSONL line per completed unit, flushed immediately so a killed
    run loses at most the in-flight units.  Loading tolerates a torn
    final line (the writer died mid-append) by ignoring it.
    """

    def __init__(self, path: str | pathlib.Path, resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self._done: set[str] = set()
        if resume:
            self._load()
        else:
            # A fresh (non-resume) run starts a fresh journal.
            try:
                self.path.unlink()
            except OSError:
                pass
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn final append from a killed run
            key = entry.get("key")
            if isinstance(key, str):
                self._done.add(key)

    @property
    def done(self) -> frozenset[str]:
        return frozenset(self._done)

    def has(self, key: str) -> bool:
        return key in self._done

    def mark_done(self, key: str, stage: str, subject: str) -> None:
        if key in self._done:
            return
        self._done.add(key)
        self._handle.write(
            json.dumps({"key": key, "stage": stage, "subject": subject}) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Retry policy + inline watchdog.


@dataclass(frozen=True)
class RetryPolicy:
    """Watchdog + retry/backoff parameters shared by both run modes."""

    unit_timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.05
    """Base backoff in seconds; attempt ``n`` sleeps ``backoff * 2**n``."""

    def backoff_seconds(self, failed_attempts: int) -> float:
        if self.backoff <= 0.0:
            return 0.0
        return self.backoff * (2.0 ** max(0, failed_attempts - 1))


@contextmanager
def watchdog(seconds: float | None):
    """SIGALRM-based wall-clock deadline for inline (jobs=1) units.

    Only armed on the main thread of a POSIX process — elsewhere the
    context is a no-op and inline units run unwatched (pooled units are
    always watched, by killing the worker).
    """
    usable = (
        seconds is not None
        and seconds > 0.0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _alarm(signum, frame):
        raise UnitTimeout(f"unit exceeded {seconds:.1f}s watchdog deadline")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Work units.


@dataclass
class PoolUnit:
    """One isolatable work unit.

    ``fn(*args, key, attempt)`` must be a module-level (picklable)
    function returning a picklable payload; ``inline_fn(unit)`` is the
    zero-serialization equivalent used when jobs=1.  ``key`` doubles as
    the resume-journal key and the fault-injection draw key.
    """

    key: str
    stage: str
    subject: str
    name: str
    fn: object = None
    args: tuple = ()
    attempts: int = 0
    not_before: float = 0.0


class _Worker:
    """Parent-side handle: one process, one pipe, one in-flight batch.

    ``batch`` is the list of units the worker is currently executing in
    order; ``cursor`` indexes the unit whose result has not arrived yet
    (the in-flight unit — the one a crash or deadline blames).
    ``dispatches`` counts completed round-trips, which is what marks a
    worker as *warm*: its process, imports, and per-process caches are
    already paid for.
    """

    __slots__ = ("process", "conn", "batch", "cursor", "started", "dispatches")

    def __init__(self, process: Process, conn) -> None:
        self.process = process
        self.conn = conn
        self.batch: list[PoolUnit] | None = None
        self.cursor: int = 0
        self.started: float = 0.0
        self.dispatches: int = 0

    @property
    def unit(self) -> PoolUnit | None:
        """The in-flight unit, or None when idle."""
        if self.batch is None or self.cursor >= len(self.batch):
            return None
        return self.batch[self.cursor]

    def remainder(self) -> list[PoolUnit]:
        """Units after the in-flight one: dispatched but never started."""
        if self.batch is None:
            return []
        return self.batch[self.cursor + 1 :]


def _pool_worker(conn) -> None:
    """Worker loop: one *batch* per message, one reply streamed per unit.

    Each ``("batch", [(fn, args), ...])`` message is executed in order,
    sending ``("ok", payload)`` or ``("err", repr, traceback)`` after
    every unit — so the parent's view of which unit is in flight is
    exact at all times.  Anything that escapes as an ordinary exception
    is reported with its traceback and the rest of the batch still runs;
    a hard death (``os._exit``, segfault, SIGTERM from the watchdog)
    closes the pipe mid-batch, which the parent reads as a crash of
    exactly the in-flight unit.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "exit":
            break
        _, tasks = message
        broken = False
        for fn, args in tasks:
            try:
                payload = fn(*args)
            except Exception as error:  # noqa: BLE001 — reported, not hidden
                reply = ("err", repr(error), traceback.format_exc())
            else:
                reply = ("ok", payload)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                broken = True
                break
        if broken:
            break
    try:
        conn.close()
    except OSError:
        pass


class FaultTolerantPool:
    """Process pool with per-unit crash isolation and watchdog kills.

    Dispatch is one *batch* of units per worker round-trip over a
    dedicated pipe (sized by :class:`BatchSizer` to amortize IPC under
    ~``batch_target_ms`` of compute), but the worker streams one result
    message per unit, so the parent always knows which unit each worker
    is running:

    * pipe EOF / worker death → blame exactly the in-flight unit,
      requeue the batch's not-yet-started remainder untouched, respawn
      one worker, retry only the blamed unit (bounded by the policy);
      results already streamed for earlier units in the batch are kept;
    * per-unit deadline exceeded → SIGTERM the worker, same blame and
      remainder-requeue as a crash (the deadline clock restarts as each
      unit's result arrives, so a batch never dilutes the watchdog);
    * ordinary exception → recorded per unit; the worker survives and
      finishes the rest of its batch.

    Results are assembled by unit identity in submission order, so the
    output is independent of completion order and of batch boundaries —
    the determinism contract of the orchestrator is preserved.

    The pool is long-lived by design: callers keep one pool across
    pipeline phases, :meth:`run` calls, and daemon requests.  Workers
    spawned for an earlier dispatch are reused (counted as
    ``warm_reuses`` in the ledger) instead of being respawned, and the
    batch sizer's cost model stays warm with them.
    """

    #: Parent-side poll granularity when watchdog deadlines are armed.
    _POLL_SECONDS = 0.1

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy,
        ledger: FaultLedger,
        on_complete=None,
        batch_target_ms: float = DEFAULT_BATCH_TARGET_MS,
        rebuild_after_deaths: int = DEFAULT_REBUILD_AFTER_DEATHS,
    ) -> None:
        self.jobs = max(1, jobs)
        self.policy = policy
        self.ledger = ledger
        self.on_complete = on_complete
        self.sizer = BatchSizer(target_ms=batch_target_ms)
        self.rebuild_after_deaths = max(1, rebuild_after_deaths)
        #: Worker deaths since the last successful unit; a long-lived
        #: (daemon) pool uses this to spot a wedged state — workers
        #: dying faster than they complete anything — and rebuild.
        self.consecutive_deaths = 0
        #: Full teardown-and-respawn cycles forced by the wedge guard.
        self.rebuilds = 0
        self._workers: list[_Worker] = []

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = Pipe()
        process = Process(target=_pool_worker, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_workers(self, needed: int) -> None:
        while len(self._workers) < min(self.jobs, needed):
            self._workers.append(self._spawn())

    def _discard_worker(self, worker: _Worker) -> None:
        if worker not in self._workers:  # already torn down by a rebuild
            return
        self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():  # pragma: no cover — stuck in kernel
            worker.process.kill()
            worker.process.join(timeout=1.0)

    def close(self) -> None:
        for worker in list(self._workers):
            try:
                worker.conn.send(("exit",))
            except OSError:
                pass
        for worker in list(self._workers):
            self._discard_worker(worker)

    def __enter__(self) -> "FaultTolerantPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- failure handling ----------------------------------------------

    def _handle_failure(
        self,
        unit: PoolUnit,
        pending: deque,
        error_repr: str,
        trace: str,
    ) -> None:
        unit.attempts += 1
        if unit.attempts <= self.policy.max_retries:
            self.ledger.retries += 1
            unit.not_before = time.monotonic() + self.policy.backoff_seconds(
                unit.attempts
            )
            pending.append(unit)
            return
        self.ledger.record(
            UnitFailure(
                stage=unit.stage,
                subject=unit.subject,
                unit=unit.name,
                error=error_repr,
                trace=trace,
                attempts=unit.attempts,
            )
        )

    def _respawn_after(self, worker: _Worker) -> None:
        self._discard_worker(worker)
        self.ledger.pool_respawns += 1
        self.consecutive_deaths += 1

    def _rebuild_if_wedged(self, pending: deque) -> int:
        """Tear down every worker once deaths outpace progress.

        A pool where ``rebuild_after_deaths`` workers died without a
        single unit completing in between is wedged — typically shared
        parent-side state (a poisoned pipe, leaked memory pressure)
        rather than one bad unit.  Rebuilding discards *all* workers,
        idle ones included; in-flight batches on the survivors are
        requeued from their cursor with attempt counts untouched (those
        units were interrupted, not at fault).  Returns how many
        in-flight units were requeued so the caller can fix its count.
        """
        if self.consecutive_deaths < self.rebuild_after_deaths:
            return 0
        requeued = 0
        for worker in list(self._workers):
            batch_rest = (
                worker.batch[worker.cursor :] if worker.batch is not None else []
            )
            worker.batch = None
            pending.extendleft(reversed(batch_rest))
            requeued += len(batch_rest)
            self._discard_worker(worker)
        self.rebuilds += 1
        self.consecutive_deaths = 0
        return requeued

    def _abort_in_flight(self) -> None:
        """Cancellation teardown: kill busy workers, keep idle ones warm.

        A cancelled run abandons its in-flight batches; the workers
        executing them are terminated (their pipes would otherwise hold
        stale replies that poison the next run on this shared pool).
        """
        for worker in list(self._workers):
            if worker.batch is not None:
                worker.batch = None
                self._discard_worker(worker)

    # -- the dispatch loop ---------------------------------------------

    def run(
        self, units: list[PoolUnit], cancel: CancelToken | None = None
    ) -> dict[str, object]:
        """Run every unit; return ``{unit.key: payload}`` for successes.

        Permanently failed units are absent from the result and present
        in the ledger — the caller degrades gracefully.  When ``cancel``
        fires (explicitly or by deadline) the loop stops at the next
        unit boundary, terminates in-flight workers, and raises
        :class:`RunCancelled`; results completed before the boundary
        were already delivered through ``on_complete``.
        """
        if not units:
            return {}
        results: dict[str, object] = {}
        pending: deque[PoolUnit] = deque(units)
        in_flight = 0
        while pending or in_flight:
            if cancel is not None and cancel.cancelled():
                self._abort_in_flight()
                raise RunCancelled(cancel.reason())
            now = time.monotonic()
            self._ensure_workers(len(pending) + in_flight)
            # Dispatch batches of ready units to idle workers.
            for worker in self._workers:
                if worker.batch is not None or not pending:
                    continue
                batch = self._take_batch(pending, now)
                if not batch:
                    break
                try:
                    worker.conn.send(
                        (
                            "batch",
                            [
                                (u.fn, u.args + (u.key, u.attempts))
                                for u in batch
                            ],
                        )
                    )
                except OSError:
                    self._respawn_after(worker)
                    pending.extendleft(reversed(batch))
                    in_flight -= self._rebuild_if_wedged(pending)
                    break
                worker.batch = batch
                worker.cursor = 0
                worker.started = now
                in_flight += len(batch)
                self.ledger.batches += 1
                if worker.dispatches > 0:
                    self.ledger.warm_reuses += 1
            busy = [w for w in self._workers if w.batch is not None]
            if not busy:
                # Everything pending is backing off; sleep until ready.
                wake = min(unit.not_before for unit in pending)
                time.sleep(max(0.0, min(wake - time.monotonic(), 1.0)))
                continue
            timeout = (
                self._POLL_SECONDS
                if self.policy.unit_timeout is not None or cancel is not None
                else 1.0
            )
            ready = connection.wait([w.conn for w in busy], timeout=timeout)
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                in_flight -= self._drain_replies(worker, pending, results)
            # Watchdog: kill workers whose in-flight unit blew its
            # deadline.  ``started`` restarts as each unit's result
            # arrives, so the deadline stays per-unit inside a batch.
            if self.policy.unit_timeout is not None:
                now = time.monotonic()
                for worker in list(self._workers):
                    unit = worker.unit
                    if unit is None:
                        continue
                    if now - worker.started <= self.policy.unit_timeout:
                        continue
                    in_flight -= self._fail_in_flight(
                        worker,
                        pending,
                        repr(
                            UnitTimeout(
                                f"unit exceeded {self.policy.unit_timeout:.1f}s "
                                f"watchdog deadline"
                            )
                        ),
                        timeout=True,
                    )
        return results

    def _drain_replies(
        self,
        worker: _Worker,
        pending: deque,
        results: dict[str, object],
    ) -> int:
        """Consume every queued reply from one worker; return resolved count.

        A batch's replies can arrive back-to-back, so after the first
        blocking ``recv`` the loop keeps draining while data is buffered
        — one wait() wake-up settles the whole backlog.
        """
        resolved = 0
        while True:
            unit = worker.unit
            if unit is None:
                break
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                # The worker died running exactly the in-flight unit.
                return resolved + self._fail_in_flight(
                    worker,
                    pending,
                    repr(WorkerCrash("worker process died mid-unit")),
                )
            now = time.monotonic()
            self.sizer.observe(unit.stage, now - worker.started)
            worker.started = now
            worker.cursor += 1
            resolved += 1
            if reply[0] == "ok":
                results[unit.key] = reply[1]
                self.ledger.completed += 1
                self.consecutive_deaths = 0  # forward progress: not wedged
                if self.on_complete is not None:
                    self.on_complete(unit, reply[1])
            else:
                self._handle_failure(unit, pending, reply[1], reply[2])
            if worker.unit is None:
                # Batch finished; the worker is warm and idle.
                worker.batch = None
                worker.dispatches += 1
                break
            if not worker.conn.poll():
                break
        return resolved

    def _fail_in_flight(
        self,
        worker: _Worker,
        pending: deque,
        error_repr: str,
        timeout: bool = False,
    ) -> int:
        """Blame the in-flight unit, requeue the rest of its batch.

        Used for both crash (pipe EOF) and watchdog kill: exactly one
        unit — the one the worker was executing — takes the failure and
        burns an attempt; units queued behind it in the batch were never
        started, so they go back to pending with their attempt counts
        untouched.  Returns how many in-flight units were resolved off
        the worker (blamed + requeued).
        """
        blamed = worker.unit
        remainder = worker.remainder()
        worker.batch = None
        if timeout:
            self.ledger.timeouts += 1
        self._respawn_after(worker)
        self._handle_failure(blamed, pending, error_repr, "")
        pending.extendleft(reversed(remainder))
        rebuilt = self._rebuild_if_wedged(pending)
        return 1 + len(remainder) + rebuilt

    def _take_batch(self, pending: deque, now: float) -> list[PoolUnit]:
        """Pop up to one dispatch's worth of backoff-ready units.

        The batch is sized for the stage of its first unit and stays
        stage-homogeneous (stages have different cost scales, and one
        EMA per stage keeps the model honest).
        """
        first = self._next_ready(pending, now)
        if first is None:
            return []
        batch = [first]
        want = self.sizer.size(first.stage)
        while len(batch) < want:
            unit = self._next_ready(pending, now, stage=first.stage)
            if unit is None:
                break
            batch.append(unit)
        return batch

    @staticmethod
    def _next_ready(
        pending: deque, now: float, stage: str | None = None
    ) -> PoolUnit | None:
        """Pop the first unit whose backoff elapsed (optionally by stage)."""
        for _ in range(len(pending)):
            unit = pending.popleft()
            if unit.not_before <= now and (
                stage is None or unit.stage == stage
            ):
                return unit
            pending.append(unit)
        return None


class InlineRunner:
    """jobs=1 analogue of the pool: same policy, ledger, and injection.

    Units run in-process (no pickling) under the SIGALRM watchdog;
    ordinary exceptions and injected crashes are retried with backoff
    and recorded as :class:`UnitFailure` when retries are exhausted.
    ``KeyboardInterrupt``/``SystemExit`` propagate — a user abort is not
    a unit fault.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        ledger: FaultLedger,
        injector: FaultInjector | None = None,
        on_complete=None,
    ) -> None:
        self.policy = policy
        self.ledger = ledger
        self.injector = injector
        self.on_complete = on_complete

    def run(
        self,
        units: list[PoolUnit],
        inline_fn,
        cancel: CancelToken | None = None,
    ) -> dict[str, object]:
        """Run every unit via ``inline_fn(unit)``; see pool.run()."""
        results: dict[str, object] = {}
        for unit in units:
            while True:
                if cancel is not None:
                    cancel.check()  # unit boundary (and between retries)
                try:
                    with watchdog(self.policy.unit_timeout):
                        if self.injector is not None:
                            self.injector.before_unit(
                                unit.key, unit.attempts, in_worker=False
                            )
                        payload = inline_fn(unit)
                except Exception as error:  # noqa: BLE001 — recorded below
                    trace = traceback.format_exc()
                    if isinstance(error, UnitTimeout):
                        self.ledger.timeouts += 1
                    unit.attempts += 1
                    if unit.attempts <= self.policy.max_retries:
                        self.ledger.retries += 1
                        time.sleep(self.policy.backoff_seconds(unit.attempts))
                        continue
                    self.ledger.record(
                        UnitFailure(
                            stage=unit.stage,
                            subject=unit.subject,
                            unit=unit.name,
                            error=repr(error),
                            trace=trace,
                            attempts=unit.attempts,
                        )
                    )
                    break
                else:
                    results[unit.key] = payload
                    self.ledger.completed += 1
                    if self.on_complete is not None:
                        self.on_complete(unit, payload)
                    break
        return results
