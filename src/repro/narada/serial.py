"""Stable serialization of pipeline artifacts.

The orchestrator moves ``SynthesisReport``/``DetectionReport``/
``FuzzReport`` values across two boundaries — worker processes and the
persistent artifact cache — so every report needs a faithful, *canonical*
dict form:

* **faithful** — ``from_dict(to_dict(r))`` reconstructs an object graph
  equivalent to ``r``, including the sharing structure that matters:
  plans and tests referencing the same ``MethodSummary``/``RacyPair``
  objects, and ``ObjectSlot`` identity (two occurrences of one slot in a
  plan must decode to one object, because slot identity *is* the paper's
  object-sharing constraint).
* **canonical** — the same pipeline result serializes to the same bytes
  no matter which process produced it.  Process-local artifacts
  (``ObjectSlot.slot_id`` from a global counter, set iteration order)
  are normalized away: shared objects are interned into tables in
  first-use order and every set is emitted sorted.

The codec groups shared objects into five intern tables (summaries,
slots, pairs, plans, tests); references between encoded values are
indices into those tables.  Tables only ever reference *earlier* tables
(pairs -> summaries, plans -> pairs/slots, tests -> plans/pairs), so
decoding is a single pass in table order.

Decoded packed traces round-trip the intern indexes, so a restored
seed trace digests identically to the original — which keeps the sweep
engine's :func:`repro.analysis.sweep.memo_key` stable across cache
replays and worker boundaries.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.analysis.model import AccessRecord, MethodSummary, WriteableEntry
from repro.analysis.paths import AccessPath
from repro.context.plan import (
    ObjectSlot,
    PlannedCall,
    SeedArg,
    SidePlan,
    SlotArg,
    TestPlan,
)
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.pairs.generator import PairSide, RacyPair
from repro.runtime.values import ObjRef, Value
from repro.synth.synthesizer import SynthesizedTest

#: Bump when the encoding changes shape; cache keys include it so stale
#: artifacts from older encodings are never decoded.
SERIAL_VERSION = 5

#: Top-level keys that legitimately differ between identical runs (wall
#: clock); stripped before hashing for determinism comparisons.
VOLATILE_KEYS = ("seconds",)


# ----------------------------------------------------------------------
# Leaf encoders.


def encode_value(value: Value) -> Any:
    """MiniJ runtime value -> JSON value (ObjRef gets a tagged dict)."""
    if isinstance(value, ObjRef):
        return {"$objref": [value.ref, value.class_name]}
    return value


def decode_value(data: Any) -> Value:
    if isinstance(data, dict):
        ref, class_name = data["$objref"]
        return ObjRef(ref, class_name)
    return data


def encode_path(path: AccessPath | None) -> list | None:
    return None if path is None else [path.root, list(path.fields)]


def decode_path(data: list | None) -> AccessPath | None:
    return None if data is None else AccessPath(data[0], tuple(data[1]))


def _encode_access(access: AccessRecord) -> dict:
    return {
        "label": access.label,
        "node_id": access.node_id,
        "kind": access.kind,
        "class_name": access.class_name,
        "field_name": access.field_name,
        "access_path": encode_path(access.access_path),
        "owner_classes": (
            None if access.owner_classes is None else list(access.owner_classes)
        ),
        "unprotected": access.unprotected,
        "writeable": access.writeable,
        "in_constructor": access.in_constructor,
        "value_is_ref": access.value_is_ref,
    }


def _decode_access(data: dict) -> AccessRecord:
    return AccessRecord(
        label=data["label"],
        node_id=data["node_id"],
        kind=data["kind"],
        class_name=data["class_name"],
        field_name=data["field_name"],
        access_path=decode_path(data["access_path"]),
        owner_classes=(
            None
            if data["owner_classes"] is None
            else tuple(data["owner_classes"])
        ),
        unprotected=data["unprotected"],
        writeable=data["writeable"],
        in_constructor=data["in_constructor"],
        value_is_ref=data["value_is_ref"],
    )


def _path_sort_key(encoded: list | None) -> str:
    return json.dumps(encoded)


def _encode_summary(summary: MethodSummary) -> dict:
    projection = sorted(
        [label, bits[0], bits[1]]
        for label, bits in summary.access_projection.items()
    )
    d_entries = []
    for label in sorted(summary.summaries):
        pairs = sorted(
            (
                [encode_path(lhs), encode_path(rhs)]
                for lhs, rhs in summary.summaries[label]
            ),
            key=lambda item: (_path_sort_key(item[0]), _path_sort_key(item[1])),
        )
        d_entries.append([label, pairs])
    return {
        "test_name": summary.test_name,
        "ordinal": summary.ordinal,
        "class_name": summary.class_name,
        "method": summary.method,
        "is_constructor": summary.is_constructor,
        "receiver_ref": summary.receiver_ref,
        "arg_refs": list(summary.arg_refs),
        "arg_classes": list(summary.arg_classes),
        "return_class": summary.return_class,
        "invoke_label": summary.invoke_label,
        "accesses": [_encode_access(a) for a in summary.accesses],
        "writeables": [
            {
                "lhs": encode_path(w.lhs),
                "rhs": encode_path(w.rhs),
                "label": w.label,
                "via": w.via,
            }
            for w in summary.writeables
        ],
        "access_projection": projection,
        "summaries": d_entries,
        "faulted": summary.faulted,
    }


def _decode_summary(data: dict) -> MethodSummary:
    return MethodSummary(
        test_name=data["test_name"],
        ordinal=data["ordinal"],
        class_name=data["class_name"],
        method=data["method"],
        is_constructor=data["is_constructor"],
        receiver_ref=data["receiver_ref"],
        arg_refs=tuple(data["arg_refs"]),
        arg_classes=tuple(data["arg_classes"]),
        return_class=data["return_class"],
        invoke_label=data["invoke_label"],
        accesses=[_decode_access(a) for a in data["accesses"]],
        writeables=[
            WriteableEntry(
                lhs=decode_path(w["lhs"]),
                rhs=decode_path(w["rhs"]),
                label=w["label"],
                via=w["via"],
            )
            for w in data["writeables"]
        ],
        access_projection={
            label: (writeable, unprotected)
            for label, writeable, unprotected in data["access_projection"]
        },
        summaries={
            label: {
                (decode_path(lhs), decode_path(rhs)) for lhs, rhs in pairs
            }
            for label, pairs in data["summaries"]
        },
        faulted=data["faulted"],
    )


def _encode_static_key(key: tuple) -> list:
    class_name, field_name, sites = key
    return [class_name, field_name, list(sites)]


def _decode_static_key(data: list) -> tuple:
    return (data[0], data[1], tuple(data[2]))


# ----------------------------------------------------------------------
# The interning codec.


class Codec:
    """Encodes/decodes a report object graph with shared-object tables."""

    TABLE_KEYS = ("summaries", "slots", "pairs", "plans", "tests")

    def __init__(self) -> None:
        self._encoded: dict[str, list] = {key: [] for key in self.TABLE_KEYS}
        self._index: dict[str, dict[int, int]] = {
            key: {} for key in self.TABLE_KEYS
        }
        self._content_index: dict[str, dict[str, int]] = {
            key: {} for key in self.TABLE_KEYS
        }
        self._decoded: dict[str, list] = {}

    # -- encoding ------------------------------------------------------

    def _intern(self, table: str, obj: object, build) -> int:
        """Assign ``obj`` an index in ``table``, building its dict once.

        The slot is reserved before ``build`` runs so indices follow
        first-use order even when building recurses into other tables.
        """
        key = id(obj)
        existing = self._index[table].get(key)
        if existing is not None:
            return existing
        index = len(self._encoded[table])
        self._index[table][key] = index
        self._encoded[table].append(None)
        self._encoded[table][index] = build(obj)
        return index

    def _intern_by_content(self, table: str, obj: object, build) -> int:
        """Intern by *encoded content*, not object identity.

        Value-like objects (summaries, pairs) may be one shared object in
        a serially-produced graph but N equal copies after per-worker
        decode; keying the table on canonical content makes both shapes
        serialize to identical bytes.
        """
        key = id(obj)
        existing = self._index[table].get(key)
        if existing is not None:
            return existing
        data = build(obj)
        content = canonical_json(data)
        index = self._content_index[table].get(content)
        if index is None:
            index = len(self._encoded[table])
            self._encoded[table].append(data)
            self._content_index[table][content] = index
        self._index[table][key] = index
        return index

    def encode_summary(self, summary: MethodSummary) -> int:
        return self._intern_by_content("summaries", summary, _encode_summary)

    def encode_slot(self, slot: ObjectSlot) -> int:
        # Identity interning on purpose: two distinct slots with equal
        # content are still distinct objects in a plan (the sharing
        # constraint), and must stay distinct table entries.
        return self._intern(
            "slots",
            slot,
            lambda s: {
                "class_name": s.class_name,
                "origin": s.origin,
                "note": s.note,
            },
        )

    def _encode_side(self, side: PairSide) -> dict:
        return {
            "summary": self.encode_summary(side.summary),
            "access": _encode_access(side.access),
        }

    def encode_pair(self, pair: RacyPair) -> int:
        def build(p: RacyPair) -> dict:
            return {
                "first": self._encode_side(p.first),
                "second": self._encode_side(p.second),
                "field": list(p.field),
                "same_site": p.same_site,
                "site_pairs": sorted(list(sp) for sp in p.site_pairs),
            }

        return self._intern_by_content("pairs", pair, build)

    def _encode_call(self, call: PlannedCall) -> dict:
        args = []
        for arg in call.args:
            if isinstance(arg, SeedArg):
                args.append(["seed", arg.index])
            else:
                args.append(["slot", self.encode_slot(arg.slot)])
        return {
            "summary": self.encode_summary(call.summary),
            "receiver": (
                None if call.receiver is None else self.encode_slot(call.receiver)
            ),
            "args": args,
            "produces": (
                None if call.produces is None else self.encode_slot(call.produces)
            ),
        }

    def _encode_side_plan(self, side: SidePlan) -> dict:
        return {
            "side": self._encode_side(side.side),
            "setter_calls": [self._encode_call(c) for c in side.setter_calls],
            "racy_call": self._encode_call(side.racy_call),
            "shared_depth": side.shared_depth,
            "full_context": side.full_context,
        }

    def encode_plan(self, plan: TestPlan) -> int:
        def build(p: TestPlan) -> dict:
            return {
                "pair": self.encode_pair(p.pair),
                "left": self._encode_side_plan(p.left),
                "right": self._encode_side_plan(p.right),
                "shared_slot": (
                    None
                    if p.shared_slot is None
                    else self.encode_slot(p.shared_slot)
                ),
                "receivers_shared": p.receivers_shared,
            }

        return self._intern("plans", plan, build)

    def encode_test(self, test: SynthesizedTest) -> int:
        def build(t: SynthesizedTest) -> dict:
            return {
                "name": t.name,
                "plan": self.encode_plan(t.plan),
                "covered_pairs": [self.encode_pair(p) for p in t.covered_pairs],
            }

        return self._intern("tests", test, build)

    def encode_fuzz_report(self, report) -> dict:
        """Encode one FuzzReport, interning its test in this codec."""
        return {
            "test": self.encode_test(report.test),
            "detected": {
                "races": [
                    self._encode_race(record) for record in report.detected
                ],
                "dynamic_count": report.detected.dynamic_count,
            },
            "reproduced": sorted(
                (_encode_static_key(k) for k in report.reproduced),
                key=json.dumps,
            ),
            "confirmed_raw": sorted(
                (_encode_static_key(k) for k in report.confirmed_raw),
                key=json.dumps,
            ),
            "random_runs": report.random_runs,
            "directed_attempts": report.directed_attempts,
            "deadlocks": report.deadlocks,
            "faults": report.faults,
            "timeouts": report.timeouts,
            "synthesis_failed": report.synthesis_failed,
            "constant_sites": sorted(report.constant_sites),
            "trace_events": report.trace_events,
            "packed_bytes": report.packed_bytes,
            "memo_hits": report.memo_hits,
            "memo_misses": report.memo_misses,
            "compressed_rows": report.compressed_rows,
            "repeat_blocks": report.repeat_blocks,
            "rows_skipped": report.rows_skipped,
            "budget_runs": report.budget_runs,
            "rank_score": report.rank_score,
            "failure_trace": report.failure_trace,
        }

    @staticmethod
    def _encode_access_info(info: AccessInfo) -> dict:
        return {
            "thread_id": info.thread_id,
            "node_id": info.node_id,
            "label": info.label,
            "kind": info.kind,
            "value": encode_value(info.value),
            "old_value": encode_value(info.old_value),
        }

    def _encode_race(self, record: RaceRecord) -> dict:
        return {
            "detector": record.detector,
            "class_name": record.class_name,
            "field_name": record.field_name,
            "address": list(record.address),
            "first": self._encode_access_info(record.first),
            "second": self._encode_access_info(record.second),
        }

    def tables(self) -> dict:
        """The shared-object tables, for embedding in the payload."""
        return {key: self._encoded[key] for key in self.TABLE_KEYS}

    # -- decoding ------------------------------------------------------

    @classmethod
    def from_tables(cls, payload: dict) -> "Codec":
        """Decode the intern tables of an encoded payload, in order."""
        tables = payload["tables"]
        codec = cls()
        codec._decoded["summaries"] = [
            _decode_summary(d) for d in tables.get("summaries", [])
        ]
        codec._decoded["slots"] = [
            ObjectSlot(
                class_name=d["class_name"], origin=d["origin"], note=d["note"]
            )
            for d in tables.get("slots", [])
        ]
        codec._decoded["pairs"] = [
            codec._decode_pair(d) for d in tables.get("pairs", [])
        ]
        codec._decoded["plans"] = [
            codec._decode_plan(d) for d in tables.get("plans", [])
        ]
        codec._decoded["tests"] = [
            codec._decode_test(d) for d in tables.get("tests", [])
        ]
        return codec

    def summary(self, index: int) -> MethodSummary:
        return self._decoded["summaries"][index]

    def slot(self, index: int | None) -> ObjectSlot | None:
        return None if index is None else self._decoded["slots"][index]

    def pair(self, index: int) -> RacyPair:
        return self._decoded["pairs"][index]

    def plan(self, index: int) -> TestPlan:
        return self._decoded["plans"][index]

    def test(self, index: int) -> SynthesizedTest:
        return self._decoded["tests"][index]

    def _decode_side(self, data: dict) -> PairSide:
        return PairSide(
            summary=self.summary(data["summary"]),
            access=_decode_access(data["access"]),
        )

    def _decode_pair(self, data: dict) -> RacyPair:
        return RacyPair(
            first=self._decode_side(data["first"]),
            second=self._decode_side(data["second"]),
            field=tuple(data["field"]),
            same_site=data["same_site"],
            site_pairs={tuple(sp) for sp in data["site_pairs"]},
        )

    def _decode_call(self, data: dict) -> PlannedCall:
        args: list = []
        for kind, value in data["args"]:
            if kind == "seed":
                args.append(SeedArg(value))
            else:
                args.append(SlotArg(self.slot(value)))
        return PlannedCall(
            summary=self.summary(data["summary"]),
            receiver=self.slot(data["receiver"]),
            args=args,
            produces=self.slot(data["produces"]),
        )

    def _decode_side_plan(self, data: dict) -> SidePlan:
        return SidePlan(
            side=self._decode_side(data["side"]),
            setter_calls=[self._decode_call(c) for c in data["setter_calls"]],
            racy_call=self._decode_call(data["racy_call"]),
            shared_depth=data["shared_depth"],
            full_context=data["full_context"],
        )

    def _decode_plan(self, data: dict) -> TestPlan:
        return TestPlan(
            pair=self.pair(data["pair"]),
            left=self._decode_side_plan(data["left"]),
            right=self._decode_side_plan(data["right"]),
            shared_slot=self.slot(data["shared_slot"]),
            receivers_shared=data["receivers_shared"],
        )

    def _decode_test(self, data: dict) -> SynthesizedTest:
        return SynthesizedTest(
            name=data["name"],
            plan=self.plan(data["plan"]),
            covered_pairs=[self.pair(i) for i in data["covered_pairs"]],
        )

    def decode_fuzz_report(self, data: dict):
        from repro.fuzz import FuzzReport

        race_set = RaceSet(dynamic_count=data["detected"]["dynamic_count"])
        for race in data["detected"]["races"]:
            race_set.races.append(self._decode_race(race))
        race_set._seen = {r.static_key() for r in race_set.races}
        return FuzzReport(
            test=self.test(data["test"]),
            detected=race_set,
            reproduced={_decode_static_key(k) for k in data["reproduced"]},
            confirmed_raw={
                _decode_static_key(k) for k in data["confirmed_raw"]
            },
            random_runs=data["random_runs"],
            directed_attempts=data["directed_attempts"],
            deadlocks=data["deadlocks"],
            faults=data["faults"],
            timeouts=data["timeouts"],
            synthesis_failed=data["synthesis_failed"],
            constant_sites=set(data["constant_sites"]),
            trace_events=data["trace_events"],
            packed_bytes=data["packed_bytes"],
            memo_hits=data["memo_hits"],
            memo_misses=data["memo_misses"],
            compressed_rows=data.get("compressed_rows", 0),
            repeat_blocks=data.get("repeat_blocks", 0),
            rows_skipped=data.get("rows_skipped", 0),
            budget_runs=data.get("budget_runs", 0),
            rank_score=data.get("rank_score", 0),
            failure_trace=data.get("failure_trace"),
        )

    @staticmethod
    def _decode_access_info(data: dict) -> AccessInfo:
        return AccessInfo(
            thread_id=data["thread_id"],
            node_id=data["node_id"],
            label=data["label"],
            kind=data["kind"],
            value=decode_value(data["value"]),
            old_value=decode_value(data["old_value"]),
        )

    def _decode_race(self, data: dict) -> RaceRecord:
        return RaceRecord(
            detector=data["detector"],
            class_name=data["class_name"],
            field_name=data["field_name"],
            address=tuple(data["address"]),
            first=self._decode_access_info(data["first"]),
            second=self._decode_access_info(data["second"]),
        )


# ----------------------------------------------------------------------
# Report-level entry points.


def encode_analysis(result) -> dict:
    """Encode an AnalysisResult (the stage-1 artifact)."""
    codec = Codec()
    order = [codec.encode_summary(s) for s in result.summaries]
    return {
        "kind": "analysis",
        "version": SERIAL_VERSION,
        "order": order,
        "tables": codec.tables(),
    }


def decode_analysis(data: dict):
    from repro.analysis.model import AnalysisResult

    codec = Codec.from_tables(data)
    return AnalysisResult([codec.summary(i) for i in data["order"]])


def encode_synthesis(report) -> dict:
    codec = Codec()
    pair_ids = [codec.encode_pair(p) for p in report.pairs]
    plan_ids = [codec.encode_plan(p) for p in report.plans]
    test_ids = [codec.encode_test(t) for t in report.tests]
    return {
        "kind": "synthesis",
        "version": SERIAL_VERSION,
        "class_name": report.class_name,
        "method_count": report.method_count,
        "loc": report.loc,
        "seconds": report.seconds,
        "pairs": pair_ids,
        "plans": plan_ids,
        "tests": test_ids,
        "verdicts": [v.to_dict() for v in report.verdicts],
        "tables": codec.tables(),
    }


def decode_synthesis(data: dict):
    from repro.narada.pipeline import SynthesisReport
    from repro.static.filter import PairVerdict

    codec = Codec.from_tables(data)
    return SynthesisReport(
        class_name=data["class_name"],
        method_count=data["method_count"],
        loc=data["loc"],
        pairs=[codec.pair(i) for i in data["pairs"]],
        plans=[codec.plan(i) for i in data["plans"]],
        tests=[codec.test(i) for i in data["tests"]],
        seconds=data["seconds"],
        verdicts=[
            PairVerdict.from_dict(v) for v in data.get("verdicts", ())
        ],
    )


def encode_detection(report) -> dict:
    codec = Codec()
    fuzz = [codec.encode_fuzz_report(fr) for fr in report.fuzz_reports]
    return {
        "kind": "detection",
        "version": SERIAL_VERSION,
        "class_name": report.class_name,
        "fuzz_reports": fuzz,
        "pruned_tests": report.pruned_tests,
        "tables": codec.tables(),
    }


def decode_detection(data: dict):
    from repro.narada.pipeline import DetectionReport

    codec = Codec.from_tables(data)
    report = DetectionReport(
        class_name=data["class_name"],
        pruned_tests=data.get("pruned_tests", 0),
    )
    for fuzz in data["fuzz_reports"]:
        report.add(codec.decode_fuzz_report(fuzz))
    return report


def encode_fuzz_bundle(report) -> dict:
    """Self-contained encoding of one FuzzReport (worker -> parent)."""
    codec = Codec()
    body = codec.encode_fuzz_report(report)
    return {
        "kind": "fuzz",
        "version": SERIAL_VERSION,
        "report": body,
        "tables": codec.tables(),
    }


def decode_fuzz_bundle(data: dict):
    codec = Codec.from_tables(data)
    return codec.decode_fuzz_report(data["report"])


def encode_static_facts(facts) -> dict:
    """Encoding of the lockset pre-filter facts (staticfilter stage)."""
    return {
        "kind": "staticfilter",
        "version": SERIAL_VERSION,
        "facts": facts.to_dict(),
    }


def decode_static_facts(data: dict):
    from repro.static.facts import StaticFacts

    return StaticFacts.from_dict(data["facts"])


def _encode_cell(payload) -> list:
    """Side-table cell -> tagged JSON value.

    Cells hold the rare non-integer payloads of a packed trace: invoke
    argument tuples / notify woken tuples (``vals``), fault message
    strings (``str``), and integers past 64 bits (``big``).
    """
    if isinstance(payload, tuple):
        return ["vals", [encode_value(v) for v in payload]]
    if isinstance(payload, str):
        return ["str", payload]
    return ["big", str(payload)]


def _decode_cell(data: list):
    tag, value = data
    if tag == "vals":
        return tuple(decode_value(v) for v in value)
    if tag == "str":
        return value
    return int(value)


def encode_packed_trace(packed) -> dict:
    """PackedTrace -> JSON dict (columns as plain int lists)."""
    return {
        "test_name": packed.test_name,
        "columns": {
            name: list(getattr(packed, name)) for name in packed.COLUMNS
        },
        "strtab": list(packed.strtab),
        "locktab": [sorted(locks) for locks in packed.locktab],
        "addrtab": [list(key) for key in packed.addrtab],
        "cells": [_encode_cell(c) for c in packed.cells],
    }


def decode_packed_trace(data: dict):
    from array import array

    from repro.trace.columnar import PackedTrace

    packed = PackedTrace(test_name=data["test_name"])
    for name in PackedTrace.COLUMNS:
        setattr(
            packed, name, array(PackedTrace._TYPECODES[name], data["columns"][name])
        )
    packed.strtab = list(data["strtab"])
    packed.locktab = [frozenset(locks) for locks in data["locktab"]]
    packed.addrtab = [tuple(key) for key in data["addrtab"]]
    packed.cells = [_decode_cell(c) for c in data["cells"]]
    # Rebuild the intern indexes so the decoded trace stays appendable
    # and digests/packs exactly like the original.
    packed._strid = {s: i for i, s in enumerate(packed.strtab)}
    packed._lockid = {locks: i for i, locks in enumerate(packed.locktab)}
    packed._addrid = {key: i for i, key in enumerate(packed.addrtab)}
    return packed


def encode_seed_traces(traces) -> dict:
    """Encode the seed-suite packed traces (the "seedtrace" artifact)."""
    return {
        "kind": "seedtrace",
        "version": SERIAL_VERSION,
        "traces": [encode_packed_trace(t) for t in traces],
    }


def decode_seed_traces(data: dict) -> list:
    return [decode_packed_trace(t) for t in data["traces"]]


def encode_test_bundle(test: SynthesizedTest) -> dict:
    """Self-contained encoding of one SynthesizedTest (parent -> worker)."""
    codec = Codec()
    index = codec.encode_test(test)
    return {
        "kind": "test",
        "version": SERIAL_VERSION,
        "test": index,
        "tables": codec.tables(),
    }


def decode_test_bundle(data: dict) -> SynthesizedTest:
    codec = Codec.from_tables(data)
    return codec.test(data["test"])


def encode_fault_ledger(ledger) -> dict:
    """Self-contained encoding of a FaultLedger (the run's fault report).

    Failures are emitted in recording order — it is chronology, not an
    artifact of scheduling, that the operator wants to read back — and
    the payload carries no shared-object tables: failures are flat
    strings by construction (exception reprs and traceback text).
    """
    return {
        "kind": "faults",
        "version": SERIAL_VERSION,
        "failures": [f.to_dict() for f in ledger.failures],
        "counters": {
            "completed": ledger.completed,
            "retries": ledger.retries,
            "pool_respawns": ledger.pool_respawns,
            "timeouts": ledger.timeouts,
            "quarantined": ledger.quarantined,
            "resumed": ledger.resumed,
            "batches": ledger.batches,
            "warm_reuses": ledger.warm_reuses,
        },
    }


def decode_fault_ledger(data: dict):
    from repro.narada.faults import FaultLedger, UnitFailure

    counters = data["counters"]
    return FaultLedger(
        failures=[UnitFailure.from_dict(f) for f in data["failures"]],
        completed=counters["completed"],
        retries=counters["retries"],
        pool_respawns=counters["pool_respawns"],
        timeouts=counters["timeouts"],
        quarantined=counters["quarantined"],
        resumed=counters["resumed"],
        # Batching-era counters; absent in pre-batching payloads.
        batches=counters.get("batches", 0),
        warm_reuses=counters.get("warm_reuses", 0),
    )


# ----------------------------------------------------------------------
# Daemon error frames.

#: Machine-readable daemon error codes.  ``busy``/``overloaded``/
#: ``draining`` are load-shed responses (the request was never started,
#: retrying is safe); ``deadline_exceeded`` means the request was
#: admitted but cancelled at its deadline; ``protocol`` covers framing
#: violations (torn/oversize frames, malformed JSON); ``bad_request``
#: and ``internal`` keep their CLI-era meanings.
ERROR_CODES = (
    "bad_request",
    "busy",
    "deadline_exceeded",
    "draining",
    "internal",
    "overloaded",
    "protocol",
)


def encode_error_frame(
    code: str, message: str, retry_after_s: float | None = None
) -> dict:
    """Structured daemon error response.

    Every shed/failure path through the daemon answers with this shape
    so clients can branch on ``error_code`` instead of parsing prose;
    ``retry_after_s`` (when present) is the server's EMA-based hint for
    when capacity is likely to free up.
    """
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code: {code!r}")
    frame: dict = {
        "ok": False,
        "kind": "error",
        "version": SERIAL_VERSION,
        "error_code": code,
        "error": message,
    }
    if retry_after_s is not None:
        frame["retry_after_s"] = round(max(0.0, retry_after_s), 3)
    return frame


# ----------------------------------------------------------------------
# Canonical bytes + digests.


def canonical_json(data: dict) -> str:
    """Deterministic JSON text for an encoded payload."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def report_digest(data: dict) -> str:
    """Content digest of an encoded report, ignoring volatile keys.

    Wall-clock fields (``seconds``) differ between otherwise identical
    runs; everything else must be bit-identical across worker counts and
    cache replays, which is exactly what this digest checks.
    """
    stripped = {k: v for k, v in data.items() if k not in VOLATILE_KEYS}
    return hashlib.sha256(canonical_json(stripped).encode()).hexdigest()
