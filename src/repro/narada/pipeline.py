"""The end-to-end Narada pipeline (Fig. 6 of the paper).

    sequential seed tests ──► Access Analyzer ──► Pair Generator
                                   │                   │
                                   ▼                   ▼
                             Context Deriver ──► Test Synthesizer ──► racy tests

plus the integration with the RaceFuzzer-style detector backend that the
paper's Table 5 evaluates.  The detector backend runs its whole stack
(FastTrack + Eraser + adjacency probe) as one fused sweep of the
analysis engine (:mod:`repro.analysis.sweep`); recorder interest sets
and fuzz memo digests are both derived there, so the pipeline layers
never hard-code per-detector event lists.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.analysis import AnalysisResult, analyze_traces
from repro.context import derive_plans
from repro.context.plan import TestPlan
from repro.fuzz import FuzzReport, RaceFuzzer
from repro.lang import ClassTable, load, pretty_class
from repro.pairs import RacyPair, generate_pairs
from repro.runtime import VM
from repro.synth import SynthesizedTest, TestSynthesizer
from repro.trace import ColumnarRecorder, PackedTrace


@dataclass
class SynthesisReport:
    """Table-4 shaped output for one analyzed class."""

    class_name: str
    method_count: int
    loc: int
    pairs: list[RacyPair]
    plans: list[TestPlan]
    tests: list[SynthesizedTest]
    seconds: float
    verdicts: list = field(default_factory=list)
    """Per-pair :class:`repro.static.filter.PairVerdict`, aligned with
    ``pairs``.  Empty when the static pre-filter was off."""

    @property
    def pair_count(self) -> int:
        return len(self.pairs)

    @property
    def pruned_pair_count(self) -> int:
        return sum(1 for v in self.verdicts if v.pruned)

    @property
    def test_count(self) -> int:
        return len(self.tests)

    def full_context_tests(self) -> list[SynthesizedTest]:
        return [t for t in self.tests if t.plan.full_context]

    def to_dict(self) -> dict:
        """Canonical dict form (see :mod:`repro.narada.serial`)."""
        from repro.narada.serial import encode_synthesis

        return encode_synthesis(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SynthesisReport":
        from repro.narada.serial import decode_synthesis

        return decode_synthesis(data)


@dataclass
class DetectionReport:
    """Table-5 shaped output for one analyzed class.

    The merged per-race view backing every aggregate property is
    memoized: building it walks every record of every fuzz report, and
    the table/CLI layers read several properties back to back.  Add fuzz
    reports through :meth:`add` (or call :meth:`invalidate` after
    mutating :attr:`fuzz_reports` directly) so the memo is dropped at
    the mutation point rather than silently serving stale counts.
    """

    class_name: str
    fuzz_reports: list[FuzzReport] = field(default_factory=list)
    pruned_tests: int = 0
    """Synthesized tests skipped because every covered pair was
    statically pruned (zero fuzz budget)."""
    _union_memo: dict | None = field(
        default=None, repr=False, compare=False
    )

    def add(self, report: FuzzReport) -> None:
        """Append a fuzz report and invalidate the merged-race memo."""
        self.fuzz_reports.append(report)
        self.invalidate()

    def invalidate(self) -> None:
        """Drop the memoized union after out-of-band mutation."""
        self._union_memo = None

    def _union_records(self):
        if self._union_memo is not None:
            return self._union_memo
        merged: dict[tuple, tuple] = {}
        for report in self.fuzz_reports:
            for record in report.detected:
                key = record.static_key()
                if key not in merged:
                    reproduced = key in report.reproduced
                    merged[key] = (record, reproduced, report.constant_sites)
                elif key in report.reproduced and not merged[key][1]:
                    merged[key] = (record, True, report.constant_sites)
        self._union_memo = merged
        return merged

    @property
    def detected(self) -> int:
        return len(self._union_records())

    @property
    def reproduced(self) -> int:
        return sum(1 for _, repro, _ in self._union_records().values() if repro)

    @property
    def harmful(self) -> int:
        return sum(
            1
            for record, repro, sites in self._union_records().values()
            if repro and not record.is_benign(sites)
        )

    @property
    def benign(self) -> int:
        return sum(
            1
            for record, repro, sites in self._union_records().values()
            if repro and record.is_benign(sites)
        )

    @property
    def manual_tp(self) -> int:
        """Unreproduced races flagged by the precise HB detector: races a
        human triage would confirm (the paper found 44/48 such)."""
        return sum(
            1
            for record, repro, _ in self._union_records().values()
            if not repro and record.detector == "fasttrack"
        )

    @property
    def manual_fp(self) -> int:
        """Unreproduced lockset-only reports: detector imprecision."""
        return sum(
            1
            for record, repro, _ in self._union_records().values()
            if not repro and record.detector != "fasttrack"
        )

    def races_per_test(self) -> list[int]:
        """Race count of each test (Figure 14's distribution input)."""
        return [len(report.detected) for report in self.fuzz_reports]

    def to_dict(self) -> dict:
        """Canonical dict form (see :mod:`repro.narada.serial`)."""
        from repro.narada.serial import encode_detection

        return encode_detection(self)

    @classmethod
    def from_dict(cls, data: dict) -> "DetectionReport":
        from repro.narada.serial import decode_detection

        return decode_detection(data)


class Narada:
    """The complete tool: library + seed suite in, racy tests out."""

    def __init__(
        self,
        source_or_table: str | ClassTable,
        seed: int = 0,
        rng_seed: int | None = None,
        static_filter: bool = True,
    ) -> None:
        if isinstance(source_or_table, str):
            self.table = load(source_or_table)
            self._source: str | None = source_or_table
        else:
            self.table = source_or_table
            self._source = None
        self.seed = seed
        self.rng_seed = rng_seed
        self.static_filter = static_filter
        self._rng = random.Random(rng_seed) if rng_seed is not None else None
        self._analysis: AnalysisResult | None = None
        self._traces: list[PackedTrace] | None = None
        self._static_facts = None

    def source_text(self) -> str:
        """Canonical program text for this table.

        The original source when the pipeline was built from one, else
        the pretty-printed program — in both cases text that reparses to
        a program with identical static site ids, so worker processes
        and cache keys can be derived from it.
        """
        if self._source is not None:
            return self._source
        from repro.lang.pretty import pretty_program

        return pretty_program(self.table.program)

    # ------------------------------------------------------------------
    # Stage 0/1: seed execution + trace analysis.

    def seed_test_names(self) -> list[str]:
        return [t.name for t in self.table.program.tests]

    def run_seed_suite(self) -> list[PackedTrace]:
        """Execute every seed test sequentially, recording packed traces.

        Recording goes straight into columnar storage — no intermediate
        ``Trace`` event list exists; downstream consumers either stream
        the columns or use the lazy object view.
        """
        if self._traces is not None:
            return self._traces
        traces: list[PackedTrace] = []
        for name in self.seed_test_names():
            vm = VM(self.table, seed=self.seed)
            # create() returns a spilling recorder when REPRO_SPILL_ROWS
            # is set, keeping million-event seed traces off the heap
            # with identical digests (trace/spill.py).
            recorder = ColumnarRecorder.create(name)
            vm.run_test(name, listeners=(recorder,))
            traces.append(recorder.packed)
        self._traces = traces
        return traces

    def analysis(self) -> AnalysisResult:
        if self._analysis is None:
            self._analysis = analyze_traces(self.run_seed_suite())
        return self._analysis

    def use_analysis(self, analysis: AnalysisResult) -> None:
        """Adopt a precomputed (e.g. cache-restored) analysis result."""
        self._analysis = analysis

    def use_seed_traces(self, traces: list[PackedTrace]) -> None:
        """Adopt precomputed (e.g. cache-restored) seed traces."""
        self._traces = traces

    # ------------------------------------------------------------------
    # Stage 2b: static lockset pre-filter.

    def static_facts(self):
        """Lockset facts for the program (lazy; cacheable stage)."""
        if self._static_facts is None:
            from repro.static.facts import analyze_program

            self._static_facts = analyze_program(self.table)
        return self._static_facts

    def use_static_facts(self, facts) -> None:
        """Adopt precomputed (e.g. cache-restored) static facts."""
        self._static_facts = facts

    # ------------------------------------------------------------------
    # Stages 2+3: pairs, context, synthesis.

    def synthesize_for_class(self, class_name: str) -> SynthesisReport:
        """Run the full synthesis pipeline for one analyzed class."""
        start = time.perf_counter()
        analysis = self.analysis()
        pairs = generate_pairs(
            analysis,
            target_class=class_name,
            facts=self.static_facts() if self.static_filter else None,
            static_filter=self.static_filter,
        )
        plans = derive_plans(pairs, analysis, self.table, rng=self._rng)
        tests = TestSynthesizer(
            self.table, name_prefix=f"{class_name}Racy"
        ).synthesize(plans)
        seconds = time.perf_counter() - start
        decl = self.table.program.class_decl(class_name)
        method_count = len(decl.methods) if decl else 0
        loc = len(pretty_class(decl).splitlines()) if decl else 0
        return SynthesisReport(
            class_name=class_name,
            method_count=method_count,
            loc=loc,
            pairs=list(pairs),
            plans=plans,
            tests=tests,
            seconds=seconds,
            verdicts=list(getattr(pairs, "verdicts", ())),
        )

    def synthesize_all(self, jobs: int = 1) -> list[SynthesisReport]:
        """Synthesize every seeded class, optionally fanning out.

        With ``jobs > 1`` each class pipeline runs in a worker process
        via the orchestrator; results are identical to the serial order.
        """
        classes = sorted(
            {s.class_name for s in self.analysis() if not self.table.is_builtin(s.class_name)}
        )
        if jobs <= 1:
            return [self.synthesize_for_class(name) for name in classes]
        from repro.narada.orchestrator import (
            PipelineConfig,
            PipelineOrchestrator,
            SubjectSpec,
        )

        source = self.source_text()
        specs = [
            SubjectSpec(name=name, source=source, target_class=name)
            for name in classes
        ]
        config = PipelineConfig(vm_seed=self.seed, rng_seed=self.rng_seed)
        with PipelineOrchestrator(jobs=jobs, config=config) as orch:
            return [o.synthesis for o in orch.run(specs, detect=False)]

    # ------------------------------------------------------------------
    # Detector integration (Table 5).

    def detect(
        self,
        report: SynthesisReport,
        random_runs: int = 8,
        directed: bool = True,
        jobs: int = 1,
    ) -> DetectionReport:
        """Fuzz every synthesized test of a class with detectors attached.

        With ``jobs > 1`` the per-test fuzz loop fans out over a process
        pool; schedule seeds depend only on (test name, run index), so
        the merged report is identical to the serial one.
        """
        if jobs > 1:
            from repro.narada.orchestrator import (
                PipelineConfig,
                PipelineOrchestrator,
                SubjectSpec,
            )

            spec = SubjectSpec(
                name=report.class_name,
                source=self.source_text(),
                target_class=report.class_name,
            )
            config = PipelineConfig(
                vm_seed=self.seed,
                rng_seed=self.rng_seed,
                random_runs=random_runs,
                directed=directed,
                static_filter=self.static_filter,
            )
            with PipelineOrchestrator(jobs=jobs, config=config) as orch:
                return orch.detect(spec, report)
        from repro.static.filter import allocate_budgets, verdict_index

        budgets = allocate_budgets(
            report.tests, verdict_index(report), random_runs
        )
        fuzzer = RaceFuzzer(
            self.table,
            random_runs=random_runs,
            vm_seed=self.seed,
            directed=directed,
        )
        detection = DetectionReport(class_name=report.class_name)
        for test in report.tests:
            budget = budgets[test.name]
            if budget.runs == 0:
                detection.pruned_tests += 1
                continue
            detection.add(
                fuzzer.fuzz(test, runs=budget.runs, rank_score=budget.score)
            )
        return detection
