"""The end-to-end Narada pipeline (Fig. 6 of the paper).

    sequential seed tests ──► Access Analyzer ──► Pair Generator
                                   │                   │
                                   ▼                   ▼
                             Context Deriver ──► Test Synthesizer ──► racy tests

plus the integration with the RaceFuzzer-style detector backend that the
paper's Table 5 evaluates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.analysis import AnalysisResult, analyze_traces
from repro.context import derive_plans
from repro.context.plan import TestPlan
from repro.fuzz import FuzzReport, RaceFuzzer
from repro.lang import ClassTable, load, pretty_class
from repro.pairs import RacyPair, generate_pairs
from repro.runtime import VM
from repro.synth import SynthesizedTest, TestSynthesizer
from repro.trace import Recorder, Trace


@dataclass
class SynthesisReport:
    """Table-4 shaped output for one analyzed class."""

    class_name: str
    method_count: int
    loc: int
    pairs: list[RacyPair]
    plans: list[TestPlan]
    tests: list[SynthesizedTest]
    seconds: float

    @property
    def pair_count(self) -> int:
        return len(self.pairs)

    @property
    def test_count(self) -> int:
        return len(self.tests)

    def full_context_tests(self) -> list[SynthesizedTest]:
        return [t for t in self.tests if t.plan.full_context]


@dataclass
class DetectionReport:
    """Table-5 shaped output for one analyzed class."""

    class_name: str
    fuzz_reports: list[FuzzReport] = field(default_factory=list)

    def _union_records(self):
        merged: dict[tuple, tuple] = {}
        for report in self.fuzz_reports:
            for record in report.detected:
                key = record.static_key()
                if key not in merged:
                    reproduced = key in report.reproduced
                    merged[key] = (record, reproduced, report.constant_sites)
                elif key in report.reproduced and not merged[key][1]:
                    merged[key] = (record, True, report.constant_sites)
        return merged

    @property
    def detected(self) -> int:
        return len(self._union_records())

    @property
    def reproduced(self) -> int:
        return sum(1 for _, repro, _ in self._union_records().values() if repro)

    @property
    def harmful(self) -> int:
        return sum(
            1
            for record, repro, sites in self._union_records().values()
            if repro and not record.is_benign(sites)
        )

    @property
    def benign(self) -> int:
        return sum(
            1
            for record, repro, sites in self._union_records().values()
            if repro and record.is_benign(sites)
        )

    @property
    def manual_tp(self) -> int:
        """Unreproduced races flagged by the precise HB detector: races a
        human triage would confirm (the paper found 44/48 such)."""
        return sum(
            1
            for record, repro, _ in self._union_records().values()
            if not repro and record.detector == "fasttrack"
        )

    @property
    def manual_fp(self) -> int:
        """Unreproduced lockset-only reports: detector imprecision."""
        return sum(
            1
            for record, repro, _ in self._union_records().values()
            if not repro and record.detector != "fasttrack"
        )

    def races_per_test(self) -> list[int]:
        """Race count of each test (Figure 14's distribution input)."""
        return [len(report.detected) for report in self.fuzz_reports]


class Narada:
    """The complete tool: library + seed suite in, racy tests out."""

    def __init__(
        self,
        source_or_table: str | ClassTable,
        seed: int = 0,
        rng_seed: int | None = None,
    ) -> None:
        if isinstance(source_or_table, str):
            self.table = load(source_or_table)
        else:
            self.table = source_or_table
        self.seed = seed
        self._rng = random.Random(rng_seed) if rng_seed is not None else None
        self._analysis: AnalysisResult | None = None
        self._traces: list[Trace] | None = None

    # ------------------------------------------------------------------
    # Stage 0/1: seed execution + trace analysis.

    def seed_test_names(self) -> list[str]:
        return [t.name for t in self.table.program.tests]

    def run_seed_suite(self) -> list[Trace]:
        """Execute every seed test sequentially and record its trace."""
        if self._traces is not None:
            return self._traces
        traces: list[Trace] = []
        for name in self.seed_test_names():
            vm = VM(self.table, seed=self.seed)
            recorder = Recorder(name)
            vm.run_test(name, listeners=(recorder,))
            traces.append(recorder.trace)
        self._traces = traces
        return traces

    def analysis(self) -> AnalysisResult:
        if self._analysis is None:
            self._analysis = analyze_traces(self.run_seed_suite())
        return self._analysis

    # ------------------------------------------------------------------
    # Stages 2+3: pairs, context, synthesis.

    def synthesize_for_class(self, class_name: str) -> SynthesisReport:
        """Run the full synthesis pipeline for one analyzed class."""
        start = time.perf_counter()
        analysis = self.analysis()
        pairs = generate_pairs(analysis, target_class=class_name)
        plans = derive_plans(pairs, analysis, self.table, rng=self._rng)
        tests = TestSynthesizer(
            self.table, name_prefix=f"{class_name}Racy"
        ).synthesize(plans)
        seconds = time.perf_counter() - start
        decl = self.table.program.class_decl(class_name)
        method_count = len(decl.methods) if decl else 0
        loc = len(pretty_class(decl).splitlines()) if decl else 0
        return SynthesisReport(
            class_name=class_name,
            method_count=method_count,
            loc=loc,
            pairs=pairs,
            plans=plans,
            tests=tests,
            seconds=seconds,
        )

    def synthesize_all(self) -> list[SynthesisReport]:
        classes = sorted(
            {s.class_name for s in self.analysis() if not self.table.is_builtin(s.class_name)}
        )
        return [self.synthesize_for_class(name) for name in classes]

    # ------------------------------------------------------------------
    # Detector integration (Table 5).

    def detect(
        self,
        report: SynthesisReport,
        random_runs: int = 8,
        directed: bool = True,
    ) -> DetectionReport:
        """Fuzz every synthesized test of a class with detectors attached."""
        fuzzer = RaceFuzzer(
            self.table,
            random_runs=random_runs,
            vm_seed=self.seed,
            directed=directed,
        )
        detection = DetectionReport(class_name=report.class_name)
        for test in report.tests:
            detection.fuzz_reports.append(fuzzer.fuzz(test))
        return detection
