"""Long-running pipeline service: ``repro serve`` and ``repro client``.

The batched pool (:mod:`repro.narada.faults`) makes one *run* cheap by
amortizing worker spawns and pipe round-trips inside it; this module
amortizes them across runs.  A daemon owns exactly one warm
:class:`FaultTolerantPool` plus the in-process memo caches (parsed
class tables, the batch-cost model) and the persistent artifact cache,
and serves ``detect`` / ``synthesize`` / ``corpus`` requests from many
concurrent clients over a unix or TCP socket — the pipeline as a
service instead of a one-shot CLI process.

Protocol
--------
Length-prefixed JSON: each frame is a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Requests are objects with
an ``op`` key (``ping`` / ``stats`` / ``synthesize`` / ``detect`` /
``corpus`` / ``shutdown``); responses always carry ``ok`` plus either
the op's result or ``error``.  A connection may issue any number of
requests back-to-back (the benchmark client does); the stock CLI client
sends one per connection.

Semantics
---------
* **Determinism** — requests run through the ordinary
  :class:`PipelineOrchestrator` with a per-request config, so a
  ``detect`` response's digests are byte-identical to the same workload
  run via ``repro run``/``repro corpus run`` directly: work units are
  pure functions of content, and neither the shared pool, the shared
  caches, nor request interleaving can reach them.
* **Isolation** — each request gets its own orchestrator and its own
  :class:`FaultLedger` (returned in the response and retained in the
  daemon's per-request run log); only the warm pool and caches are
  shared, and pipeline execution is serialized on an internal lock so
  concurrent clients queue rather than interleave half-runs.
* **Graceful drain** — SIGTERM/SIGINT stop the accept loop, let every
  in-flight request finish and send its response, then close the pool
  and unlink the socket.  Clients reconnect after a restart; the warm
  disk cache makes the replay cheap.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.narada.cache import ArtifactCache, default_cache_dir
from repro.narada.faults import (
    DEFAULT_REBUILD_AFTER_DEATHS,
    CancelToken,
    FaultLedger,
    FaultTolerantPool,
    RunCancelled,
)
from repro.narada.orchestrator import (
    PipelineConfig,
    PipelineOrchestrator,
    SubjectSpec,
    subject_specs,
)
from repro.narada.serial import encode_error_frame, encode_fault_ledger

#: Wire protocol version, echoed by ``ping`` so mismatched clients can
#: fail with a message instead of a decode error.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame; anything larger is a protocol error
#: (a corrupt length prefix would otherwise ask for gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Environment variable naming the default daemon socket path.
DAEMON_SOCKET_ENV = "REPRO_DAEMON_SOCKET"

#: How often an idle connection handler wakes to check for drain.
_IDLE_POLL_SECONDS = 0.5

#: Default per-frame recv deadline: once a frame's first byte arrives,
#: the rest must land within this window or the connection is torn down
#: (the slow-loris defence — a partial length prefix cannot pin a
#: handler thread).
DEFAULT_RECV_TIMEOUT_S = 30.0

#: Default bound on requests queued for the run lock; beyond it, new
#: pipeline requests are shed with a structured ``busy`` frame.
DEFAULT_MAX_QUEUE_DEPTH = 8


class ProtocolError(Exception):
    """Malformed frame or oversized payload on the wire."""


def default_socket_path() -> str:
    """``$REPRO_DAEMON_SOCKET`` or ``<cache root>/daemon.sock``."""
    env = os.environ.get(DAEMON_SOCKET_ENV)
    if env:
        return env
    return str(default_cache_dir() / "daemon.sock")


# ----------------------------------------------------------------------
# Framing.


def send_frame(sock: socket.socket, payload: dict) -> None:
    data = json.dumps(payload, separators=(",", ":")).encode()
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large ({len(data)} bytes)")
    sock.sendall(struct.pack(">I", len(data)) + data)


def _recv_exact(
    sock: socket.socket,
    count: int,
    deadline: float | None = None,
    started: bool = False,
) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a boundary.

    A ``socket.timeout`` before the first byte of a *frame* propagates
    (the caller's idle/drain poll).  Once a frame has started
    (``started`` — bytes arrived in an earlier call — or bytes arrived
    here), timeouts keep polling; with a ``deadline`` (monotonic clock)
    armed, breaching it raises :class:`ProtocolError` instead, so a
    sender dribbling one byte per minute cannot pin a handler thread.
    Deadline enforcement requires a socket timeout shorter than the
    deadline (the daemon polls at ``_IDLE_POLL_SECONDS``).
    """
    chunks = b""
    while len(chunks) < count:
        if deadline is not None and time.monotonic() >= deadline:
            raise ProtocolError(
                f"recv deadline exceeded mid-frame "
                f"({len(chunks)}/{count} bytes)"
            )
        try:
            chunk = sock.recv(count - len(chunks))
        except socket.timeout:
            if not chunks and not started and deadline is None:
                raise
            continue
        if not chunk:
            if chunks or started:
                raise ProtocolError("connection closed mid-frame")
            return None
        chunks += chunk
    return chunks


def recv_frame(
    sock: socket.socket, recv_timeout: float | None = None
) -> dict | None:
    """Read one frame; None on clean EOF before a frame starts.

    ``recv_timeout`` bounds the wall-clock spent receiving one frame,
    measured from its first byte — waiting for a frame to *start* is
    unbounded (that is the idle path; the daemon polls drain there).
    """
    first = _recv_exact(sock, 1)  # idle wait: socket.timeout propagates
    if first is None:
        return None
    deadline = (
        None if recv_timeout is None else time.monotonic() + recv_timeout
    )
    rest = _recv_exact(sock, 3, deadline, started=True)
    (length,) = struct.unpack(">I", first + rest)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds limit")
    body = b"" if length == 0 else _recv_exact(sock, length, deadline, started=True)
    try:
        payload = json.loads(body)
    except ValueError as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload is not an object")
    return payload


def parse_tcp(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the ``--tcp`` flag)."""
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"bad --tcp address {spec!r}; expected HOST:PORT")
    return host, int(port)


# ----------------------------------------------------------------------
# The daemon.


@dataclass
class RequestRecord:
    """Per-request run ledger entry kept by the daemon."""

    request_id: str
    op: str
    elapsed_s: float
    ok: bool
    ledger: dict | None = None

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "op": self.op,
            "elapsed_s": round(self.elapsed_s, 4),
            "ok": self.ok,
            "ledger": self.ledger,
        }


@dataclass
class DaemonStats:
    """Service-level counters, separate from any one request's ledger."""

    requests: int = 0
    errors: int = 0
    connections: int = 0
    #: Framing violations (torn frame, oversize length, undecodable
    #: JSON, recv-deadline breach); each one tears down its connection.
    protocol_errors: int = 0
    records: list[RequestRecord] = field(default_factory=list)

    #: Bound on retained per-request records (oldest dropped first).
    MAX_RECORDS = 256

    def record(self, rec: RequestRecord) -> None:
        self.records.append(rec)
        if len(self.records) > self.MAX_RECORDS:
            del self.records[: len(self.records) - self.MAX_RECORDS]


class AdmissionController:
    """Bounded wait-queue for the run lock, with retry-after estimation.

    Pipeline ops are serialized on the daemon's run lock; without a
    bound, a burst of clients each parks a handler thread on the lock
    forever.  This tracks how many requests are active-or-waiting and
    sheds beyond ``max_queue_depth`` with a ``busy`` frame carrying a
    retry hint derived from an EMA of recent run durations — the
    client's expected wait if it came back when a slot frees up.
    """

    def __init__(self, max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH) -> None:
        self.max_queue_depth = max(1, max_queue_depth)
        self._lock = threading.Lock()
        self.occupancy = 0  # requests holding or waiting on the run lock
        self.admitted = 0
        self.shed_busy = 0
        self.shed_overloaded = 0
        self.shed_draining = 0
        self.deadlines_exceeded = 0
        self.run_seconds_ema = 0.0

    def try_enter(self) -> bool:
        """Claim a queue slot; False (and a ``shed_busy`` tick) if full."""
        with self._lock:
            if self.occupancy >= self.max_queue_depth:
                self.shed_busy += 1
                return False
            self.occupancy += 1
            self.admitted += 1
            return True

    def leave(self) -> None:
        with self._lock:
            self.occupancy = max(0, self.occupancy - 1)

    def note_run_seconds(self, seconds: float) -> None:
        with self._lock:
            if self.run_seconds_ema == 0.0:
                self.run_seconds_ema = seconds
            else:
                self.run_seconds_ema += 0.3 * (seconds - self.run_seconds_ema)

    def retry_after(self) -> float:
        """Expected wait for a retrying client: queue depth × run EMA."""
        with self._lock:
            ema = self.run_seconds_ema or 0.1
            return max(0.05, self.occupancy * ema)

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "max_queue_depth": self.max_queue_depth,
                "occupancy": self.occupancy,
                "admitted": self.admitted,
                "shed_busy": self.shed_busy,
                "shed_overloaded": self.shed_overloaded,
                "shed_draining": self.shed_draining,
                "deadlines_exceeded": self.deadlines_exceeded,
                "run_seconds_ema": round(self.run_seconds_ema, 4),
            }


def _rss_mb(pid: int) -> float:
    """Resident set size of ``pid`` in MB via ``/proc`` (0.0 if gone)."""
    try:
        with open(f"/proc/{pid}/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    return 0.0


class ResourceGovernor:
    """RSS watchdog: shed work and recycle the pool above a memory budget.

    A background thread samples the daemon process's RSS plus every live
    pool worker's.  Above ``budget_mb`` it flips :attr:`shedding` (new
    pipeline requests get ``overloaded`` frames) and marks the pool for
    recycling (workers — the usual leak site for per-process memo caches
    — are discarded at the next safe point, i.e. under the run lock);
    below ~90% of budget it resumes admission.  The hysteresis stops it
    flapping at the boundary.
    """

    #: Resume admitting once RSS falls below this fraction of budget.
    RESUME_FRACTION = 0.9

    def __init__(
        self,
        budget_mb: float,
        poll_interval_s: float = 2.0,
    ) -> None:
        self.budget_mb = float(budget_mb)
        self.poll_interval_s = poll_interval_s
        self.shedding = False
        self.recycle_pending = False
        self.sheds = 0
        self.recycles = 0
        self.last_rss_mb = 0.0
        self._worker_pids = lambda: []  # wired by the daemon
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def sample_rss_mb(self) -> float:
        total = _rss_mb(os.getpid())
        for pid in self._worker_pids():
            total += _rss_mb(pid)
        return total

    def poll_once(self) -> None:
        """One watchdog tick (exposed for deterministic tests/benches)."""
        rss = self.sample_rss_mb()
        self.last_rss_mb = rss
        if rss > self.budget_mb:
            if not self.shedding:
                self.sheds += 1
            self.shedding = True
            self.recycle_pending = True
        elif rss < self.RESUME_FRACTION * self.budget_mb:
            self.shedding = False

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-governor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self.poll_once()

    def to_dict(self) -> dict:
        return {
            "budget_mb": self.budget_mb,
            "last_rss_mb": round(self.last_rss_mb, 1),
            "shedding": self.shedding,
            "recycle_pending": self.recycle_pending,
            "sheds": self.sheds,
            "recycles": self.recycles,
        }


class ReproDaemon:
    """One warm pool + caches behind a unix/TCP socket.

    Construct, then either drive :meth:`serve_forever` from a CLI entry
    (which installs signal handlers) or call :meth:`bind` /
    :meth:`serve_forever` / :meth:`initiate_drain` directly from tests.
    """

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        jobs: int = 2,
        cache: ArtifactCache | None = None,
        base_config: PipelineConfig | None = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        default_deadline_s: float | None = None,
        recv_timeout_s: float | None = DEFAULT_RECV_TIMEOUT_S,
        memory_budget_mb: float | None = None,
        max_consecutive_worker_deaths: int = DEFAULT_REBUILD_AFTER_DEATHS,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValueError("exactly one of socket_path / tcp is required")
        self.socket_path = socket_path
        self.tcp = tcp
        self.jobs = max(1, jobs)
        self.cache = cache
        self.base_config = (
            base_config if base_config is not None else PipelineConfig()
        )
        self.default_deadline_s = default_deadline_s
        self.recv_timeout_s = recv_timeout_s
        self.max_consecutive_worker_deaths = max(
            1, max_consecutive_worker_deaths
        )
        self.stats = DaemonStats()
        self.admission = AdmissionController(max_queue_depth)
        self.governor: ResourceGovernor | None = None
        if memory_budget_mb is not None:
            self.governor = ResourceGovernor(memory_budget_mb)
            self.governor._worker_pids = self._worker_pids
        self._pool: FaultTolerantPool | None = None
        self._listener: socket.socket | None = None
        self._run_lock = threading.Lock()  # serializes pipeline execution
        self._state_lock = threading.Lock()  # guards stats + request ids
        self._draining = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = time.monotonic()
        self._request_counter = 0
        self._bound_address: str | None = None

    def _worker_pids(self) -> list[int]:
        pool = self._pool
        if pool is None:
            return []
        return [
            w.process.pid
            for w in list(pool._workers)
            if w.process.pid is not None
        ]

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> str:
        """Human-readable bound address (for the startup banner)."""
        return self._bound_address or "<unbound>"

    def bind(self) -> None:
        if self.tcp is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.tcp)
            self._bound_address = "%s:%d" % listener.getsockname()[:2]
        else:
            path = pathlib.Path(self.socket_path)
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                path.unlink()  # stale socket from a dead daemon
            except OSError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(path))
            self._bound_address = str(path)
        listener.listen(16)
        # A bounded accept() lets the loop notice a drain requested from a
        # handler thread (closing the fd does not wake a blocked accept).
        listener.settimeout(0.5)
        self._listener = listener

    def _shared_pool(self) -> FaultTolerantPool | None:
        """The warm pool every request's orchestrator dispatches on."""
        if self.jobs <= 1:
            return None  # inline mode: no pool, no pickling
        if self._pool is None:
            self._pool = FaultTolerantPool(
                self.jobs,
                self.base_config.retry_policy(),
                FaultLedger(),
                batch_target_ms=self.base_config.batch_ms,
                rebuild_after_deaths=self.max_consecutive_worker_deaths,
            )
        return self._pool

    def serve_forever(self) -> None:
        """Accept loop; returns after :meth:`initiate_drain` completes.

        Each connection is handled on its own thread; pipeline work is
        serialized on the run lock, so concurrent clients queue for the
        warm pool rather than fighting over it.
        """
        if self._listener is None:
            self.bind()
        if self.governor is not None:
            self.governor.start()
        while not self._draining.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue  # re-check the drain flag
            except OSError:
                break  # listener closed by initiate_drain
            with self._state_lock:
                self.stats.connections += 1
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,), daemon=True
            )
            thread.start()
            # Prune finished handlers so a long-lived daemon's thread
            # list doesn't grow one entry per connection ever served.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(thread)
        # Drain: every in-flight request finishes and answers.
        for thread in self._threads:
            thread.join()
        self.close()

    def initiate_drain(self) -> None:
        """Stop accepting; let in-flight requests finish (signal-safe)."""
        self._draining.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    def close(self) -> None:
        self.initiate_drain()
        if self.governor is not None:
            self.governor.stop()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._listener = None
        if self.socket_path is not None:
            try:
                pathlib.Path(self.socket_path).unlink()
            except OSError:
                pass

    # -- connection handling -------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(_IDLE_POLL_SECONDS)
            while True:
                try:
                    request = recv_frame(conn, self.recv_timeout_s)
                except socket.timeout:
                    if self._draining.is_set():
                        break
                    continue
                except ProtocolError as error:
                    # The stream is desynced; answer with a structured
                    # error frame (best-effort — the peer may be the
                    # problem) and tear the connection down.
                    with self._state_lock:
                        self.stats.protocol_errors += 1
                    try:
                        send_frame(
                            conn, encode_error_frame("protocol", str(error))
                        )
                    except OSError:
                        pass
                    break
                if request is None:
                    break  # client closed cleanly
                response = self.handle_request(request)
                # A response send gets the same wall-clock bound as a
                # frame recv: a stalled client must not pin the handler.
                try:
                    conn.settimeout(self.recv_timeout_s)
                    send_frame(conn, response)
                    conn.settimeout(_IDLE_POLL_SECONDS)
                except OSError:
                    break
                if response.get("op") == "shutdown" or self._draining.is_set():
                    break

    def handle_request(self, request: dict) -> dict:
        """Execute one request object; always returns a response dict."""
        op = request.get("op")
        with self._state_lock:
            self._request_counter += 1
            request_id = f"r{self._request_counter:06d}"
            self.stats.requests += 1
        started = time.monotonic()
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            response = {
                "ok": False,
                "error": f"unknown op {op!r}",
                "ops": sorted(
                    name[4:] for name in dir(self) if name.startswith("_op_")
                ),
            }
        else:
            try:
                response = handler(request)
            except Exception as error:  # noqa: BLE001 — reported to client
                with self._state_lock:
                    self.stats.errors += 1
                response = {"ok": False, "error": repr(error)}
        elapsed = time.monotonic() - started
        response.setdefault("ok", True)
        response["op"] = op
        response["request_id"] = request_id
        response["elapsed_s"] = round(elapsed, 4)
        with self._state_lock:
            self.stats.record(
                RequestRecord(
                    request_id=request_id,
                    op=op if isinstance(op, str) else repr(op),
                    elapsed_s=elapsed,
                    ok=bool(response.get("ok")),
                    ledger=response.get("ledger"),
                )
            )
        return response

    # -- per-request pipeline plumbing ---------------------------------

    def _request_config(self, request: dict) -> PipelineConfig:
        """The per-request pipeline config over the daemon's base.

        Only deterministic pipeline parameters are per-request; the
        fault policy and batch target belong to the daemon operator.
        """
        base = self.base_config.to_dict()
        for key in ("vm_seed", "rng_seed", "random_runs", "directed"):
            if key in request:
                base[key] = request[key]
        if "runs" in request:  # CLI-friendly alias
            base["random_runs"] = request["runs"]
        return PipelineConfig.from_dict(base)

    def _specs_from(self, request: dict) -> list[SubjectSpec]:
        if "source" in request:
            from repro.lang import load

            source = request["source"]
            target = request.get("target_class")
            if target is None:
                names = load(source).class_names()
                if len(names) != 1:
                    raise ValueError(
                        f"target_class needed; source defines {names}"
                    )
                target = names[0]
            name = request.get("name", target)
            return [
                SubjectSpec(name=name, source=source, target_class=target)
            ]
        keys = request.get("subjects")
        if not keys:
            raise ValueError("request needs 'subjects' or 'source'")
        from repro.subjects import all_subjects, get_subject

        if keys == "all" or keys == ["all"]:
            return subject_specs(all_subjects())
        return subject_specs([get_subject(k) for k in keys])

    def _with_admission(self, request: dict, body) -> dict:
        """Admission-control a pipeline op; ``body(token)`` runs locked.

        The shed ladder, in order: ``draining`` (daemon is shutting
        down), ``overloaded`` (RSS governor above budget), ``busy``
        (admission queue full), ``deadline_exceeded`` (deadline expired
        while queued, or the run was cancelled at a unit boundary).
        Every rung answers with a structured error frame; only an
        admitted request ever touches the run lock or the pool.
        """
        if self._draining.is_set():
            self.admission.shed_draining += 1
            return encode_error_frame(
                "draining", "daemon is draining; retry after restart"
            )
        governor = self.governor
        if governor is not None and governor.shedding:
            self.admission.shed_overloaded += 1
            return encode_error_frame(
                "overloaded",
                f"memory budget exceeded (rss {governor.last_rss_mb:.0f}MB"
                f" > budget {governor.budget_mb:.0f}MB)",
                retry_after_s=self.admission.retry_after(),
            )
        deadline_s = request.get("deadline_s", self.default_deadline_s)
        token = CancelToken.after(
            float(deadline_s) if deadline_s is not None else None
        )
        if not self.admission.try_enter():
            return encode_error_frame(
                "busy",
                f"admission queue full "
                f"(depth {self.admission.max_queue_depth})",
                retry_after_s=self.admission.retry_after(),
            )
        try:
            remaining = token.remaining()
            acquired = (
                self._run_lock.acquire()
                if remaining is None
                else self._run_lock.acquire(timeout=remaining)
            )
            if not acquired:
                self.admission.deadlines_exceeded += 1
                return encode_error_frame(
                    "deadline_exceeded",
                    "deadline expired while queued for the run lock",
                    retry_after_s=self.admission.retry_after(),
                )
            started = time.monotonic()
            try:
                return body(token)
            finally:
                self.admission.note_run_seconds(time.monotonic() - started)
                self._post_run_maintenance()
                self._run_lock.release()
        except RunCancelled as cancelled:
            self.admission.deadlines_exceeded += 1
            return encode_error_frame(
                "deadline_exceeded", f"run cancelled: {cancelled}"
            )
        finally:
            self.admission.leave()

    def _post_run_maintenance(self) -> None:
        """Housekeeping at the only safe point: run lock held, pool idle."""
        governor = self.governor
        pool = self._pool
        if governor is not None and governor.recycle_pending:
            if pool is not None:
                for worker in list(pool._workers):
                    pool._discard_worker(worker)
            governor.recycle_pending = False
            governor.recycles += 1

    def _run_pipeline(
        self,
        specs: list[SubjectSpec],
        config: PipelineConfig,
        detect: bool,
        token: CancelToken | None = None,
    ):
        """One pipeline run on the shared warm pool (run lock held)."""
        orch = PipelineOrchestrator(
            jobs=self.jobs,
            cache=self.cache,
            config=config,
            pool=self._shared_pool(),
            cancel=token,
        )
        try:
            outcomes = orch.run(specs, detect=detect)
        finally:
            orch.close()  # borrowed pool survives; owned state drops
        return outcomes, orch.fault_ledger

    # -- ops -----------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started, 3),
            "jobs": self.jobs,
            "requests_served": self.stats.requests,
        }

    def _op_stats(self, request: dict) -> dict:
        cache_stats = None
        if self.cache is not None:
            cache_stats = {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "writes": self.cache.stats.writes,
                "quarantined": self.cache.stats.quarantined,
                "write_errors": self.cache.stats.write_errors,
                "evictions": self.cache.stats.evictions,
                "quarantine_dropped": self.cache.stats.quarantine_dropped,
                "quarantine_entries": self.cache.quarantine_count(),
                "max_bytes": self.cache.max_bytes,
            }
        pool = self._pool
        pool_stats = None
        if pool is not None:
            pool_stats = {
                "workers": len(pool._workers),
                "consecutive_deaths": pool.consecutive_deaths,
                "rebuilds": pool.rebuilds,
                "unit_cost_ema": {
                    stage: round(cost, 6)
                    for stage, cost in sorted(pool.sizer._ema.items())
                },
            }
        with self._state_lock:
            records = [r.to_dict() for r in self.stats.records[-20:]]
            totals = {
                "requests": self.stats.requests,
                "errors": self.stats.errors,
                "connections": self.stats.connections,
                "protocol_errors": self.stats.protocol_errors,
            }
        return {
            "ok": True,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "totals": totals,
            "cache": cache_stats,
            "pool": pool_stats,
            "admission": self.admission.to_dict(),
            "governor": (
                None if self.governor is None else self.governor.to_dict()
            ),
            "recent_requests": records,
        }

    def _op_synthesize(self, request: dict) -> dict:
        return self._pipeline_response(request, detect=False)

    def _op_detect(self, request: dict) -> dict:
        return self._pipeline_response(request, detect=True)

    def _pipeline_response(self, request: dict, detect: bool) -> dict:
        specs = self._specs_from(request)
        config = self._request_config(request)
        return self._with_admission(
            request,
            lambda token: self._pipeline_body(specs, config, detect, token),
        )

    def _pipeline_body(
        self, specs, config, detect: bool, token: CancelToken
    ) -> dict:
        outcomes, ledger = self._run_pipeline(
            specs, config, detect=detect, token=token
        )
        subjects = {}
        for outcome in outcomes:
            entry: dict = {"digest": outcome.digest()}
            if outcome.synthesis is not None:
                entry.update(
                    tests=outcome.synthesis.test_count,
                    pairs=outcome.synthesis.pair_count,
                    synthesis_cached=outcome.synthesis_cached,
                )
            if outcome.detection is not None:
                entry.update(
                    detected=outcome.detection.detected,
                    reproduced=outcome.detection.reproduced,
                    detection_cached=outcome.detection_cached,
                    partial=outcome.detection_partial,
                )
            if outcome.failures:
                entry["failures"] = [f.to_dict() for f in outcome.failures]
            subjects[outcome.spec.name] = entry
        return {
            "ok": True,
            "subjects": subjects,
            "ledger": encode_fault_ledger(ledger),
        }

    def _op_corpus(self, request: dict) -> dict:
        from repro.corpus import CorpusConfig, run_corpus, template_names

        templates = request.get("templates") or list(template_names())
        corpus_config = CorpusConfig(
            seed=int(request.get("seed", 0)),
            count=int(request.get("count", 20)),
            templates=tuple(templates),
            min_templates=int(request.get("min_templates", 2)),
            max_templates=int(request.get("max_templates", 4)),
        ).validate()
        config = self._request_config(request)
        batch_size = int(request.get("batch_size", 25))

        def body(token: CancelToken) -> dict:
            orch = PipelineOrchestrator(
                jobs=self.jobs,
                cache=self.cache,
                config=config,
                pool=self._shared_pool(),
                cancel=token,
            )
            try:
                result = run_corpus(corpus_config, orch, batch_size=batch_size)
            finally:
                orch.close()
            ledger = orch.fault_ledger
            return {
                "ok": True,
                "subjects": result.subjects,
                "recall": result.recall,
                "precision": result.precision,
                "pair_precision": result.pair_precision,
                "oracle_races": result.oracle_races,
                "detected_races": result.detected_races,
                "missed_races": result.missed_races,
                "failed_subjects": result.failed_subjects,
                "problems": result.problems(),
                "digests": result.digests,
                "ledger": encode_fault_ledger(ledger),
            }

        return self._with_admission(request, body)

    def _op_sleep(self, request: dict) -> dict:
        """Diagnostic: hold the run lock, sleeping cancellably.

        Exists for deterministic admission/deadline testing — a client
        can park the pipeline for a known duration and watch concurrent
        requests queue, shed, or hit their deadlines.
        """
        seconds = float(request.get("seconds", 0.1))

        def body(token: CancelToken) -> dict:
            end = time.monotonic() + seconds
            while True:
                token.check()  # cancellation boundary, like a pool unit
                left = end - time.monotonic()
                if left <= 0:
                    break
                time.sleep(min(0.02, left))
            return {"ok": True, "slept_s": seconds}

        return self._with_admission(request, body)

    def _op_shutdown(self, request: dict) -> dict:
        self.initiate_drain()
        return {"ok": True, "draining": True}


# ----------------------------------------------------------------------
# Client.


class DaemonClient:
    """Blocking client for the daemon protocol (one socket, N requests)."""

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float | None = None,
        retries: int = 0,
        retry_delay: float = 0.2,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValueError("exactly one of socket_path / tcp is required")
        self.socket_path = socket_path
        self.tcp = tcp
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_delay = retry_delay
        self._sock: socket.socket | None = None

    def connect(self) -> None:
        """Connect now (with bounded retries for a daemon still binding)."""
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                if self.tcp is not None:
                    sock = socket.create_connection(
                        self.tcp, timeout=self.timeout
                    )
                else:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.socket_path)
                self._sock = sock
                return
            except OSError as error:
                last_error = error
                if attempt < self.retries:
                    time.sleep(self.retry_delay * (attempt + 1))
        raise ConnectionError(
            f"cannot reach repro daemon at "
            f"{self.socket_path or '%s:%d' % self.tcp}: {last_error}"
        ) from last_error

    def request(self, payload: dict) -> dict:
        if self._sock is None:
            self.connect()
        send_frame(self._sock, payload)
        response = recv_frame(self._sock)
        if response is None:
            raise ConnectionError("daemon closed the connection mid-request")
        return response

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "DaemonClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
