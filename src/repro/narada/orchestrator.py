"""Parallel pipeline orchestrator with stage caching and fault tolerance.

The Fig. 6 pipeline is embarrassingly parallel at two granularities:

* **per subject** — seed execution, analysis, pair generation, context
  derivation and synthesis of one program are independent of every other
  program, and
* **per test** — the RaceFuzzer loop treats each synthesized test as an
  independent work unit.

The orchestrator fans both out over a process pool while keeping
results **bit-identical to the serial order**:

* work units are pure functions of ``(source text, target class,
  config)`` — never of pool scheduling.  Every fuzz schedule seed is
  derived from ``(test name, run index)`` (see
  :func:`repro.fuzz.racefuzzer.schedule_seed`), and each run's detector
  stack is replayed as one fused engine sweep keyed by
  :func:`repro.analysis.sweep.memo_key`, so a test fuzzes the same way
  whichever worker picks it up — and the same way on a retry;
* results are assembled in deterministic (subject, test) order from a
  key-addressed result map, so completion order cannot reorder them;
* reports cross the process boundary in the canonical dict form of
  :mod:`repro.narada.serial`;
* ``jobs=1`` bypasses the pool entirely — no pickling, no subprocesses —
  which keeps single-job runs debuggable and exactly as cheap as the old
  serial pipeline.

Every stage is backed by the persistent content-addressed
:class:`~repro.narada.cache.ArtifactCache`: analysis, synthesis,
per-test fuzz, and detection artifacts are keyed by (table digest,
stage config, code salt), so a rerun with unchanged subjects skips
straight to the first invalidated stage.

Since the fault-tolerance PR the execution substrate is
:mod:`repro.narada.faults`: worker death, hung units, and unit
exceptions are isolated per unit, retried with backoff, and — when
retries are exhausted — recorded as :class:`UnitFailure` entries in the
run's :class:`FaultLedger` while every other unit proceeds.  ``run()``
therefore returns *partial* results on a bad day instead of raising on
the first casualty; completed unit keys are journaled to a crash-safe
:class:`RunLedger` so an interrupted run can ``--resume`` past its
finished work.
"""

from __future__ import annotations

import functools
import hashlib
import pathlib
from dataclasses import dataclass, field

from repro.fuzz import RaceFuzzer
from repro.lang import ClassTable, load
from repro.narada.cache import ArtifactCache, stage_key, table_digest
from repro.narada.faults import (
    DEFAULT_BATCH_TARGET_MS,
    CancelToken,
    FaultInjector,
    FaultLedger,
    FaultTolerantPool,
    InlineRunner,
    PoolUnit,
    RetryPolicy,
    RunLedger,
    UnitExecutionError,
)
from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport
from repro.narada.serial import (
    canonical_json,
    decode_analysis,
    decode_detection,
    decode_fuzz_bundle,
    decode_seed_traces,
    decode_synthesis,
    encode_analysis,
    encode_detection,
    encode_fuzz_bundle,
    decode_static_facts,
    encode_seed_traces,
    encode_static_facts,
    encode_synthesis,
    encode_test_bundle,
    report_digest,
)
from repro.static.filter import allocate_budgets, verdict_index


@dataclass(frozen=True)
class SubjectSpec:
    """One unit of per-subject work: a program and its analyzed class."""

    name: str
    source: str
    target_class: str


@dataclass(frozen=True)
class PipelineConfig:
    """Everything a work unit's result may depend on (and nothing else).

    The fault-tolerance knobs (``unit_timeout``, ``max_retries``,
    ``retry_backoff``, ``fault_inject``) deliberately stay *out* of the
    per-stage cache-key configs below: how patiently a unit was babysat
    never changes what the unit computes, so toggling them must not
    invalidate artifacts.  ``batch_ms`` — the per-dispatch work target
    of the batched pool — stays out for the same reason: batch
    boundaries change when a unit runs, never what it computes.
    """

    vm_seed: int = 0
    rng_seed: int | None = None
    random_runs: int = 8
    directed: bool = True
    static_filter: bool = True
    unit_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    fault_inject: str | None = None
    batch_ms: float = DEFAULT_BATCH_TARGET_MS

    def analysis_config(self) -> dict:
        return {"vm_seed": self.vm_seed}

    def synthesis_config(self, target_class: str) -> dict:
        return {
            "vm_seed": self.vm_seed,
            "rng_seed": self.rng_seed,
            "target_class": target_class,
            "static_filter": self.static_filter,
        }

    def detection_config(self, target_class: str) -> dict:
        return {
            "synthesis": self.synthesis_config(target_class),
            "random_runs": self.random_runs,
            "directed": self.directed,
        }

    def retry_policy(self) -> RetryPolicy:
        return RetryPolicy(
            unit_timeout=self.unit_timeout,
            max_retries=self.max_retries,
            backoff=self.retry_backoff,
        )

    def injector(self) -> FaultInjector | None:
        """The configured (or env-keyed) fault injector, if any."""
        return FaultInjector.from_spec(self.fault_inject, self.unit_timeout)

    def to_dict(self) -> dict:
        return {
            "vm_seed": self.vm_seed,
            "rng_seed": self.rng_seed,
            "random_runs": self.random_runs,
            "directed": self.directed,
            "static_filter": self.static_filter,
            "unit_timeout": self.unit_timeout,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "fault_inject": self.fault_inject,
            "batch_ms": self.batch_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        return cls(**data)


@dataclass
class SubjectOutcome:
    """Pipeline results for one subject, plus cache/fault provenance.

    ``synthesis`` is None when the synthesis unit failed permanently
    (see :attr:`failures`); ``detection_partial`` marks a detection
    report that is missing the fuzz results of failed units but carries
    every successful one.
    """

    spec: SubjectSpec
    synthesis: SynthesisReport | None
    detection: DetectionReport | None = None
    synthesis_cached: bool = False
    detection_cached: bool = False
    detection_partial: bool = False
    failures: list = field(default_factory=list)
    _synthesis_dict: dict | None = field(default=None, repr=False)
    _detection_dict: dict | None = field(default=None, repr=False)

    @property
    def synthesis_dict(self) -> dict | None:
        if self._synthesis_dict is None and self.synthesis is not None:
            self._synthesis_dict = encode_synthesis(self.synthesis)
        return self._synthesis_dict

    @property
    def detection_dict(self) -> dict | None:
        if self._detection_dict is None and self.detection is not None:
            self._detection_dict = encode_detection(self.detection)
        return self._detection_dict

    def digest(self) -> str:
        """Content digest of this subject's serialized reports."""
        if self.synthesis is None:
            return "failed"
        parts = [report_digest(self.synthesis_dict)]
        if self.detection is not None:
            parts.append(report_digest(self.detection_dict))
        return "/".join(parts)


# ----------------------------------------------------------------------
# Work units.  Module-level so they are picklable by the process pool;
# the inline (jobs=1) path calls the *_unit functions directly and never
# serializes anything.  The trailing ``(unit_key, attempt)`` pair is the
# pool's dispatch envelope: it keys the (test-only) fault injector.


@functools.lru_cache(maxsize=128)
def _load_table(source: str) -> ClassTable:
    """Per-process table cache: pool workers are persistent across
    phases, waves, and daemon requests, so each worker parses a subject
    once however many tests it fuzzes.  Sized for corpus-scale waves —
    at 16 entries a 200-subject corpus run thrashed the cache and
    re-parsed tables the worker had already paid for."""
    return load(source)


def _synthesize_unit(
    source: str,
    target_class: str,
    config: PipelineConfig,
    cache_root: str | None,
) -> SynthesisReport:
    """Stages 0-3 for one subject, reusing cached stage-0/1 artifacts.

    Two cached stages feed this unit: ``seedtrace`` (the packed seed
    traces — stage 0) and ``analysis`` (the method summaries — stage 1).
    Both key on the analysis config since traces depend only on the VM
    seed.  A cached analysis skips seed execution entirely; a cached
    seedtrace alone still skips the (interpreter-bound) seed runs while
    the analyzer streams the restored columns.
    """
    table = _load_table(source)
    narada = Narada(
        table,
        seed=config.vm_seed,
        rng_seed=config.rng_seed,
        static_filter=config.static_filter,
    )
    cache = (
        ArtifactCache(cache_root, fault_injector=config.injector())
        if cache_root is not None
        else None
    )
    if cache is not None:
        dig = table_digest(table)
        analysis_key = stage_key(dig, "analysis", config.analysis_config())
        trace_key = stage_key(dig, "seedtrace", config.analysis_config())
        cached = cache.get("analysis", analysis_key)
        if cached is not None:
            narada.use_analysis(decode_analysis(cached))
        else:
            cached_traces = cache.get("seedtrace", trace_key)
            if cached_traces is not None:
                narada.use_seed_traces(decode_seed_traces(cached_traces))
        facts_key = None
        if config.static_filter:
            # The lockset facts depend only on the program text, so the
            # staticfilter stage keys on the table digest alone.
            facts_key = stage_key(dig, "staticfilter", {})
            cached_facts = cache.get("staticfilter", facts_key)
            if cached_facts is not None:
                narada.use_static_facts(decode_static_facts(cached_facts))
        report = narada.synthesize_for_class(target_class)
        if cached is None:
            cache.put("analysis", analysis_key, encode_analysis(narada.analysis()))
            if cache.get("seedtrace", trace_key) is None:
                cache.put(
                    "seedtrace",
                    trace_key,
                    encode_seed_traces(narada.run_seed_suite()),
                )
        if facts_key is not None and cache.get("staticfilter", facts_key) is None:
            cache.put(
                "staticfilter",
                facts_key,
                encode_static_facts(narada.static_facts()),
            )
        return report
    return narada.synthesize_for_class(target_class)


def _synthesize_worker(
    source: str,
    target_class: str,
    config: dict,
    cache_root: str | None,
    unit_key: str = "",
    attempt: int = 0,
) -> dict:
    cfg = PipelineConfig.from_dict(config)
    injector = cfg.injector()
    if injector is not None:
        injector.before_unit(unit_key, attempt, in_worker=True)
    report = _synthesize_unit(source, target_class, cfg, cache_root)
    return encode_synthesis(report)


def _fuzz_unit(
    table: ClassTable,
    test,
    config: PipelineConfig,
    runs: int | None = None,
    rank_score: int = 0,
):
    fuzzer = RaceFuzzer(
        table,
        random_runs=config.random_runs,
        vm_seed=config.vm_seed,
        directed=config.directed,
    )
    return fuzzer.fuzz(test, runs=runs, rank_score=rank_score)


def _fuzz_worker(
    source: str,
    test_bundle: dict,
    config: dict,
    runs: int | None = None,
    rank_score: int = 0,
    unit_key: str = "",
    attempt: int = 0,
) -> dict:
    from repro.narada.serial import decode_test_bundle

    cfg = PipelineConfig.from_dict(config)
    injector = cfg.injector()
    if injector is not None:
        injector.before_unit(unit_key, attempt, in_worker=True)
    table = _load_table(source)
    test = decode_test_bundle(test_bundle)
    report = _fuzz_unit(table, test, cfg, runs=runs, rank_score=rank_score)
    return encode_fuzz_bundle(report)


# ----------------------------------------------------------------------
# The orchestrator.


class PipelineOrchestrator:
    """Runs subject pipelines with fan-out, memoization, and determinism.

    Args:
        jobs: worker process count; ``1`` runs everything inline in this
            process with no pool and no serialization round-trips.
        cache: persistent artifact cache, or None to always recompute.
        config: the deterministic pipeline parameters (including the
            fault-tolerance policy).
        resume: skip units journaled as completed by a previous
            (interrupted) run of the same specs + config; requires a
            cache, since that is where the completed results live.
        run_dir: where the resume journal lives (default:
            ``<cache root>/runs``).
        pool: an externally owned :class:`FaultTolerantPool` to dispatch
            on instead of creating one.  The daemon uses this to share
            one warm pool (live workers, warm batch-cost model) across
            every request's orchestrator; a borrowed pool is never
            closed by :meth:`close`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ArtifactCache | None = None,
        config: PipelineConfig | None = None,
        resume: bool = False,
        run_dir: str | pathlib.Path | None = None,
        pool: FaultTolerantPool | None = None,
        cancel: CancelToken | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.config = config if config is not None else PipelineConfig()
        self.resume = resume
        self.run_dir = run_dir
        #: Cooperative cancellation: checked between phases and at every
        #: unit boundary inside the pool/inline runner.  The daemon sets
        #: this to the request's deadline token; a cancelled run raises
        #: :class:`RunCancelled` without poisoning the shared pool
        #: (idle workers stay warm, busy ones are respawned).
        self.cancel = cancel
        self.fault_ledger = FaultLedger()
        self._pool: FaultTolerantPool | None = pool
        self._owns_pool = pool is None
        if pool is not None:
            self.jobs = max(1, pool.jobs)
        if resume and cache is None:
            raise ValueError(
                "resume requires the artifact cache: completed units are "
                "replayed from it (run without --no-cache)"
            )
        if cache is not None:
            cache.fault_injector = self.config.injector()

    # -- lifecycle -----------------------------------------------------

    def _executor(self) -> FaultTolerantPool:
        if self._pool is None:
            self._pool = FaultTolerantPool(
                self.jobs,
                self.config.retry_policy(),
                self.fault_ledger,
                batch_target_ms=self.config.batch_ms,
            )
        else:
            # One warm pool serves every phase, wave, and (under the
            # daemon) request: point it at the current run's ledger and
            # retry policy without touching its live workers or its
            # batch-cost model.
            self._pool.ledger = self.fault_ledger
            self._pool.policy = self.config.retry_policy()
        return self._pool

    def close(self) -> None:
        if self._pool is not None and self._owns_pool:
            self._pool.close()
        self._pool = None
        self._owns_pool = True

    def __enter__(self) -> "PipelineOrchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cache plumbing ------------------------------------------------

    @property
    def _cache_root(self) -> str | None:
        return None if self.cache is None else str(self.cache.root)

    def _get(self, stage: str, key: str) -> dict | None:
        return None if self.cache is None else self.cache.get(stage, key)

    def _get_decoded(self, stage: str, key: str, decoder):
        """Cached ``(decoded, raw dict)`` or None; bad entries quarantine.

        The cache layer already quarantines unreadable JSON; this adds
        the same treatment for entries that parse but fail to *decode*
        (a structurally valid payload from a semantically incompatible
        writer) — recompute, never crash.
        """
        data = self._get(stage, key)
        if data is None:
            return None
        try:
            return decoder(data), data
        except Exception as error:  # noqa: BLE001 — quarantined below
            if self.cache is not None:
                self.cache.quarantine(stage, key, f"decode failure: {error!r}")
            return None

    def _put(self, stage: str, key: str, data: dict) -> None:
        if self.cache is not None:
            self.cache.put(stage, key, data)

    # -- fault plumbing ------------------------------------------------

    def _run_units(
        self, units: list[PoolUnit], inline_fn, on_complete=None
    ) -> dict[str, object]:
        """Execute units under the fault policy; ``{key: payload}``.

        ``on_complete(unit, payload)`` fires in the parent as each unit
        finishes — publication and journaling happen there, per unit,
        so a kill mid-batch checkpoints everything already completed.
        """
        if not units:
            return {}
        if self.jobs == 1:
            runner = InlineRunner(
                self.config.retry_policy(),
                self.fault_ledger,
                injector=self.config.injector(),
                on_complete=on_complete,
            )
            return runner.run(units, inline_fn, cancel=self.cancel)
        pool = self._executor()
        pool.on_complete = on_complete
        try:
            return pool.run(units, cancel=self.cancel)
        finally:
            pool.on_complete = None

    def _open_journal(self, digests: list[str]) -> RunLedger | None:
        """The resume journal for this (specs, config) identity."""
        if self.cache is None:
            return None
        ident = canonical_json(
            {
                "digests": sorted(digests),
                "config": {
                    "vm_seed": self.config.vm_seed,
                    "rng_seed": self.config.rng_seed,
                    "random_runs": self.config.random_runs,
                    "directed": self.config.directed,
                },
            }
        )
        run_id = hashlib.sha256(ident.encode()).hexdigest()[:16]
        base = (
            pathlib.Path(self.run_dir)
            if self.run_dir is not None
            else self.cache.root / "runs"
        )
        return RunLedger(base / f"run-{run_id}.jsonl", resume=self.resume)

    def _mark_done(
        self,
        journal: RunLedger | None,
        key: str,
        stage: str,
        subject: str,
        from_cache: bool = False,
    ) -> None:
        if journal is None:
            return
        if from_cache and self.resume and journal.has(key):
            self.fault_ledger.resumed += 1
        journal.mark_done(key, stage, subject)

    # -- synthesis phase -----------------------------------------------

    def synthesize(self, spec: SubjectSpec) -> SynthesisReport:
        """Synthesis for one subject (inline, cache-backed).

        Single-subject callers want the old raise-on-failure contract:
        a permanently failed unit raises :class:`UnitExecutionError`
        carrying the structured failure.
        """
        outcome = self.run([spec], detect=False)[0]
        if outcome.synthesis is None:
            raise UnitExecutionError(outcome.failures[0])
        return outcome.synthesis

    def _synthesis_phase(
        self,
        specs: list[SubjectSpec],
        keys: list[str],
        journal: RunLedger | None,
    ) -> list[tuple[SynthesisReport, dict | None, bool] | None]:
        """Per spec: (report, encoded dict when one exists, cache hit?),
        or None for a permanently failed synthesis unit."""
        results: list = [None] * len(specs)
        pending: list[tuple[int, PoolUnit]] = []
        spec_by_key: dict[str, SubjectSpec] = {}
        for i, spec in enumerate(specs):
            cached = self._get_decoded("synthesis", keys[i], decode_synthesis)
            if cached is not None:
                results[i] = (cached[0], cached[1], True)
                self._mark_done(
                    journal, keys[i], "synthesis", spec.name, from_cache=True
                )
            else:
                spec_by_key[keys[i]] = spec
                pending.append(
                    (
                        i,
                        PoolUnit(
                            key=keys[i],
                            stage="synthesis",
                            subject=spec.name,
                            name=spec.target_class,
                            fn=_synthesize_worker,
                            args=(
                                spec.source,
                                spec.target_class,
                                self.config.to_dict(),
                                self._cache_root,
                            ),
                        ),
                    )
                )
        if not pending:
            return results

        def inline_synthesis(unit: PoolUnit):
            spec = spec_by_key[unit.key]
            return _synthesize_unit(
                spec.source, spec.target_class, self.config, self._cache_root
            )

        index_by_key = {unit.key: i for i, unit in pending}

        def on_complete(unit: PoolUnit, payload) -> None:
            if isinstance(payload, dict):
                report, data = decode_synthesis(payload), payload
            else:
                report, data = payload, encode_synthesis(payload)
            self._put("synthesis", unit.key, data)
            self._mark_done(journal, unit.key, "synthesis", unit.subject)
            results[index_by_key[unit.key]] = (report, data, False)

        self._run_units(
            [u for _, u in pending], inline_synthesis, on_complete
        )
        return results

    # -- detection phase -----------------------------------------------

    def _fuzzunit_key(
        self, digest: str, target_class: str, test_name: str, runs: int
    ) -> str:
        """Content address of one test's fuzz artifact.

        Finer-grained than the per-subject ``detection`` stage: these
        per-test entries are what lets an interrupted or partially
        failed detection phase resume without re-fuzzing finished tests.
        ``runs`` is the test's allocated fuzz budget — a budgeted fuzz
        computes a different artifact than a full one, so it must be
        part of the address.
        """
        config = dict(self.config.detection_config(target_class))
        config["test"] = test_name
        config["budget_runs"] = runs
        return stage_key(digest, "fuzzunit", config)

    def _detection_phase(
        self,
        specs: list[SubjectSpec],
        keys: list[str],
        syntheses: list[SynthesisReport | None],
        digests: list[str],
        journal: RunLedger | None,
    ) -> list[tuple[DetectionReport, dict | None, bool, bool] | None]:
        """Per spec: (report, encoded dict, cache hit?, partial?), or
        None when the subject had no synthesis to detect against."""
        results: list = [None] * len(specs)
        config_dict = self.config.to_dict()
        pending: list[tuple[int, object, PoolUnit]] = []
        reports: dict[int, dict[str, object]] = {}
        budgets_by_spec: dict[int, dict] = {}
        for i, spec in enumerate(specs):
            if syntheses[i] is None:
                continue  # synthesis failed; nothing to fuzz
            cached = self._get_decoded("detection", keys[i], decode_detection)
            if cached is not None:
                results[i] = (cached[0], cached[1], True, False)
                self._mark_done(
                    journal, keys[i], "detection", spec.name, from_cache=True
                )
                continue
            reports[i] = {}
            budgets = allocate_budgets(
                syntheses[i].tests,
                verdict_index(syntheses[i]),
                self.config.random_runs,
            )
            budgets_by_spec[i] = budgets
            for test in syntheses[i].tests:
                budget = budgets[test.name]
                if budget.runs == 0:
                    continue  # all covered pairs statically pruned
                ukey = self._fuzzunit_key(
                    digests[i], spec.target_class, test.name, budget.runs
                )
                unit_cached = self._get_decoded(
                    "fuzzunit", ukey, decode_fuzz_bundle
                )
                if unit_cached is not None:
                    reports[i][test.name] = unit_cached[0]
                    self._mark_done(
                        journal, ukey, "fuzz", spec.name, from_cache=True
                    )
                    continue
                unit = PoolUnit(
                    key=ukey,
                    stage="fuzz",
                    subject=spec.name,
                    name=test.name,
                )
                if self.jobs > 1:
                    unit.fn = _fuzz_worker
                    unit.args = (
                        spec.source,
                        encode_test_bundle(test),
                        config_dict,
                        budget.runs,
                        budget.score,
                    )
                pending.append((i, test, unit))

        meta = {u.key: (i, t) for i, t, u in pending}

        def inline_fuzz(unit: PoolUnit):
            i, test = meta[unit.key]
            budget = budgets_by_spec[i][test.name]
            return _fuzz_unit(
                _load_table(specs[i].source),
                test,
                self.config,
                runs=budget.runs,
                rank_score=budget.score,
            )

        def on_complete(unit: PoolUnit, payload) -> None:
            i, test = meta[unit.key]
            if isinstance(payload, dict):
                fuzz, data = decode_fuzz_bundle(payload), payload
            else:
                fuzz, data = payload, None
            if self.cache is not None:
                self._put(
                    "fuzzunit", unit.key, data or encode_fuzz_bundle(fuzz)
                )
            self._mark_done(journal, unit.key, "fuzz", unit.subject)
            reports[i][test.name] = fuzz

        self._run_units([u for _, _, u in pending], inline_fuzz, on_complete)
        for i, per_test in reports.items():
            detection = DetectionReport(class_name=specs[i].target_class)
            complete = True
            for test in syntheses[i].tests:
                if budgets_by_spec[i][test.name].runs == 0:
                    detection.pruned_tests += 1
                    continue
                fuzz = per_test.get(test.name)
                if fuzz is None:
                    complete = False
                    continue
                detection.add(fuzz)
            if complete:
                data = (
                    encode_detection(detection)
                    if self.cache is not None
                    else None
                )
                if data is not None:
                    self._put("detection", keys[i], data)
                self._mark_done(journal, keys[i], "detection", specs[i].name)
                results[i] = (detection, data, False, False)
            else:
                # Graceful degradation: every successful test's fuzz
                # report is kept; the subject-level artifact is NOT
                # cached, so a later clean run recomputes the holes
                # instead of replaying a partial result forever.
                results[i] = (detection, None, False, True)
        return results

    def detect(
        self, spec: SubjectSpec, synthesis: SynthesisReport
    ) -> DetectionReport:
        """Detection for one already-synthesized subject.

        Like :meth:`synthesize`, the single-subject API keeps the
        raise-on-failure contract of the serial fuzz loop.
        """
        self.fault_ledger = FaultLedger()
        digest = table_digest(spec.source)
        key = stage_key(
            digest,
            "detection",
            self.config.detection_config(spec.target_class),
        )
        journal = self._open_journal([digest])
        try:
            result = self._detection_phase(
                [spec], [key], [synthesis], [digest], journal
            )[0]
        finally:
            if journal is not None:
                journal.close()
        if result is None or result[3]:
            mine = [
                f for f in self.fault_ledger.failures if f.subject == spec.name
            ]
            raise UnitExecutionError(mine[0])
        return result[0]

    # -- the whole pipeline --------------------------------------------

    def run(
        self, specs: list[SubjectSpec], detect: bool = True
    ) -> list[SubjectOutcome]:
        """Run the pipeline for every spec; results follow spec order.

        Unit failures do not abort the run: the returned outcomes carry
        whatever completed (``synthesis``/``detection`` may be None or
        partial) and :attr:`fault_ledger` carries the structured record
        of everything that failed, was retried, timed out, was
        quarantined, or was skipped via ``resume``.
        """
        ledger = self.fault_ledger = FaultLedger()
        quarantined_before = (
            self.cache.stats.quarantined if self.cache is not None else 0
        )
        digests = [table_digest(spec.source) for spec in specs]
        journal = self._open_journal(digests)
        try:
            if self.cancel is not None:
                self.cancel.check()  # phase boundary
            synth_keys = [
                stage_key(
                    digests[i],
                    "synthesis",
                    self.config.synthesis_config(spec.target_class),
                )
                for i, spec in enumerate(specs)
            ]
            synthesis = self._synthesis_phase(specs, synth_keys, journal)
            outcomes = [
                SubjectOutcome(
                    spec=spec,
                    synthesis=synthesis[i][0] if synthesis[i] else None,
                    synthesis_cached=bool(synthesis[i] and synthesis[i][2]),
                    _synthesis_dict=synthesis[i][1] if synthesis[i] else None,
                )
                for i, spec in enumerate(specs)
            ]
            if detect:
                if self.cancel is not None:
                    self.cancel.check()  # phase boundary
                detect_keys = [
                    stage_key(
                        digests[i],
                        "detection",
                        self.config.detection_config(spec.target_class),
                    )
                    for i, spec in enumerate(specs)
                ]
                detections = self._detection_phase(
                    specs,
                    detect_keys,
                    [o.synthesis for o in outcomes],
                    digests,
                    journal,
                )
                for outcome, result in zip(outcomes, detections):
                    if result is None:
                        continue
                    report, data, hit, partial = result
                    outcome.detection = report
                    outcome.detection_cached = hit
                    outcome.detection_partial = partial
                    outcome._detection_dict = data
        finally:
            if journal is not None:
                journal.close()
            if self.cache is not None:
                ledger.quarantined += (
                    self.cache.stats.quarantined - quarantined_before
                )
        for outcome in outcomes:
            outcome.failures = [
                f for f in ledger.failures if f.subject == outcome.spec.name
            ]
        return outcomes


    def run_stream(
        self,
        specs: list[SubjectSpec],
        detect: bool = True,
        batch_size: int = 25,
    ):
        """Corpus-scale :meth:`run`: yield outcomes in spec order, in waves.

        ``run`` holds every subject's synthesis and fuzz artifacts alive
        until the whole list finishes — fine for nine subjects, hostile
        to hundreds.  This generator cuts the spec list into waves of
        ``batch_size``, runs each wave through the normal (cached,
        fault-tolerant, deterministic) ``run``, and yields outcomes as
        each wave completes, so a caller that scores-and-drops keeps at
        most one wave's reports in memory.

        Results are identical to one big ``run``: work units are pure
        functions of (source, target class, config), so batch boundaries
        cannot change what any unit computes — only when it runs.  The
        per-``run`` fault ledgers are absorbed into one aggregate, left
        on :attr:`fault_ledger` when the stream is exhausted.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        aggregate = FaultLedger()
        for start in range(0, len(specs), batch_size):
            yield from self.run(specs[start : start + batch_size], detect=detect)
            aggregate.absorb(self.fault_ledger)
        self.fault_ledger = aggregate


def subject_specs(subjects=None) -> list[SubjectSpec]:
    """Specs for the built-in paper subjects (all nine by default)."""
    from repro.subjects import all_subjects

    chosen = all_subjects() if subjects is None else list(subjects)
    return [
        SubjectSpec(name=s.key, source=s.source, target_class=s.class_name)
        for s in chosen
    ]
