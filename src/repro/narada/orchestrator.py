"""Parallel pipeline orchestrator with stage-level artifact caching.

The Fig. 6 pipeline is embarrassingly parallel at two granularities:

* **per subject** — seed execution, analysis, pair generation, context
  derivation and synthesis of one program are independent of every other
  program, and
* **per test** — the RaceFuzzer loop treats each synthesized test as an
  independent work unit.

The orchestrator fans both out over a ``concurrent.futures`` process
pool while keeping results **bit-identical to the serial order**:

* work units are pure functions of ``(source text, target class,
  config)`` — never of pool scheduling.  Every fuzz schedule seed is
  derived from ``(test name, run index)`` (see
  :func:`repro.fuzz.racefuzzer.schedule_seed`), and each run's detector
  stack is replayed as one fused engine sweep keyed by
  :func:`repro.analysis.sweep.memo_key`, so a test fuzzes the same way
  whichever worker picks it up;
* tasks are submitted and collected in deterministic (subject, test)
  order, and reports cross the process boundary in the canonical dict
  form of :mod:`repro.narada.serial`;
* ``jobs=1`` bypasses the pool entirely — no pickling, no subprocesses —
  which keeps single-job runs debuggable and exactly as cheap as the old
  serial pipeline.

Every stage is backed by the persistent content-addressed
:class:`~repro.narada.cache.ArtifactCache`: analysis, synthesis, and
detection artifacts are keyed by (table digest, stage config, code
salt), so a rerun with unchanged subjects skips straight to the first
invalidated stage.
"""

from __future__ import annotations

import functools
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.fuzz import RaceFuzzer
from repro.lang import ClassTable, load
from repro.narada.cache import ArtifactCache, stage_key, table_digest
from repro.narada.pipeline import DetectionReport, Narada, SynthesisReport
from repro.narada.serial import (
    decode_analysis,
    decode_fuzz_bundle,
    decode_seed_traces,
    decode_synthesis,
    encode_analysis,
    encode_detection,
    encode_fuzz_bundle,
    encode_seed_traces,
    encode_synthesis,
    encode_test_bundle,
    report_digest,
)


@dataclass(frozen=True)
class SubjectSpec:
    """One unit of per-subject work: a program and its analyzed class."""

    name: str
    source: str
    target_class: str


@dataclass(frozen=True)
class PipelineConfig:
    """Everything a work unit's result may depend on (and nothing else)."""

    vm_seed: int = 0
    rng_seed: int | None = None
    random_runs: int = 8
    directed: bool = True

    def analysis_config(self) -> dict:
        return {"vm_seed": self.vm_seed}

    def synthesis_config(self, target_class: str) -> dict:
        return {
            "vm_seed": self.vm_seed,
            "rng_seed": self.rng_seed,
            "target_class": target_class,
        }

    def detection_config(self, target_class: str) -> dict:
        return {
            "synthesis": self.synthesis_config(target_class),
            "random_runs": self.random_runs,
            "directed": self.directed,
        }

    def to_dict(self) -> dict:
        return {
            "vm_seed": self.vm_seed,
            "rng_seed": self.rng_seed,
            "random_runs": self.random_runs,
            "directed": self.directed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineConfig":
        return cls(**data)


@dataclass
class SubjectOutcome:
    """Pipeline results for one subject, plus cache provenance."""

    spec: SubjectSpec
    synthesis: SynthesisReport
    detection: DetectionReport | None = None
    synthesis_cached: bool = False
    detection_cached: bool = False
    _synthesis_dict: dict | None = field(default=None, repr=False)
    _detection_dict: dict | None = field(default=None, repr=False)

    @property
    def synthesis_dict(self) -> dict:
        if self._synthesis_dict is None:
            self._synthesis_dict = encode_synthesis(self.synthesis)
        return self._synthesis_dict

    @property
    def detection_dict(self) -> dict | None:
        if self._detection_dict is None and self.detection is not None:
            self._detection_dict = encode_detection(self.detection)
        return self._detection_dict

    def digest(self) -> str:
        """Content digest of this subject's serialized reports."""
        parts = [report_digest(self.synthesis_dict)]
        if self.detection is not None:
            parts.append(report_digest(self.detection_dict))
        return "/".join(parts)


# ----------------------------------------------------------------------
# Work units.  Module-level so they are picklable by the process pool;
# the inline (jobs=1) path calls the *_unit functions directly and never
# serializes anything.


@functools.lru_cache(maxsize=16)
def _load_table(source: str) -> ClassTable:
    """Per-process table cache: pool workers are reused across tasks, so
    each worker parses a subject once however many tests it fuzzes."""
    return load(source)


def _synthesize_unit(
    source: str,
    target_class: str,
    config: PipelineConfig,
    cache_root: str | None,
) -> SynthesisReport:
    """Stages 0-3 for one subject, reusing cached stage-0/1 artifacts.

    Two cached stages feed this unit: ``seedtrace`` (the packed seed
    traces — stage 0) and ``analysis`` (the method summaries — stage 1).
    Both key on the analysis config since traces depend only on the VM
    seed.  A cached analysis skips seed execution entirely; a cached
    seedtrace alone still skips the (interpreter-bound) seed runs while
    the analyzer streams the restored columns.
    """
    table = _load_table(source)
    narada = Narada(table, seed=config.vm_seed, rng_seed=config.rng_seed)
    cache = ArtifactCache(cache_root) if cache_root is not None else None
    if cache is not None:
        dig = table_digest(table)
        analysis_key = stage_key(dig, "analysis", config.analysis_config())
        trace_key = stage_key(dig, "seedtrace", config.analysis_config())
        cached = cache.get("analysis", analysis_key)
        if cached is not None:
            narada.use_analysis(decode_analysis(cached))
        else:
            cached_traces = cache.get("seedtrace", trace_key)
            if cached_traces is not None:
                narada.use_seed_traces(decode_seed_traces(cached_traces))
        report = narada.synthesize_for_class(target_class)
        if cached is None:
            cache.put("analysis", analysis_key, encode_analysis(narada.analysis()))
            if cache.get("seedtrace", trace_key) is None:
                cache.put(
                    "seedtrace",
                    trace_key,
                    encode_seed_traces(narada.run_seed_suite()),
                )
        return report
    return narada.synthesize_for_class(target_class)


def _synthesize_worker(
    source: str, target_class: str, config: dict, cache_root: str | None
) -> dict:
    report = _synthesize_unit(
        source, target_class, PipelineConfig.from_dict(config), cache_root
    )
    return encode_synthesis(report)


def _fuzz_unit(table: ClassTable, test, config: PipelineConfig):
    fuzzer = RaceFuzzer(
        table,
        random_runs=config.random_runs,
        vm_seed=config.vm_seed,
        directed=config.directed,
    )
    return fuzzer.fuzz(test)


def _fuzz_worker(source: str, test_bundle: dict, config: dict) -> dict:
    from repro.narada.serial import decode_test_bundle

    table = _load_table(source)
    test = decode_test_bundle(test_bundle)
    report = _fuzz_unit(table, test, PipelineConfig.from_dict(config))
    return encode_fuzz_bundle(report)


# ----------------------------------------------------------------------
# The orchestrator.


class PipelineOrchestrator:
    """Runs subject pipelines with fan-out, memoization, and determinism.

    Args:
        jobs: worker process count; ``1`` runs everything inline in this
            process with no pool and no serialization round-trips.
        cache: persistent artifact cache, or None to always recompute.
        config: the deterministic pipeline parameters.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ArtifactCache | None = None,
        config: PipelineConfig | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        self.config = config if config is not None else PipelineConfig()
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle -----------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "PipelineOrchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cache plumbing ------------------------------------------------

    @property
    def _cache_root(self) -> str | None:
        return None if self.cache is None else str(self.cache.root)

    def _get(self, stage: str, key: str) -> dict | None:
        return None if self.cache is None else self.cache.get(stage, key)

    def _put(self, stage: str, key: str, data: dict) -> None:
        if self.cache is not None:
            self.cache.put(stage, key, data)

    # -- synthesis phase -----------------------------------------------

    def synthesize(self, spec: SubjectSpec) -> SynthesisReport:
        """Synthesis for one subject (inline, cache-backed)."""
        return self.run([spec], detect=False)[0].synthesis

    def _synthesis_phase(
        self, specs: list[SubjectSpec], keys: list[str]
    ) -> list[tuple[SynthesisReport, dict | None, bool]]:
        """Per spec: (report, encoded dict when one exists, cache hit?)."""
        results: list = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            cached = self._get("synthesis", keys[i])
            if cached is not None:
                results[i] = (decode_synthesis(cached), cached, True)
            else:
                pending.append(i)
        if pending and self.jobs == 1:
            for i in pending:
                report = _synthesize_unit(
                    specs[i].source,
                    specs[i].target_class,
                    self.config,
                    self._cache_root,
                )
                results[i] = (report, None, False)
        elif pending:
            futures: list[tuple[int, Future]] = [
                (
                    i,
                    self._executor().submit(
                        _synthesize_worker,
                        specs[i].source,
                        specs[i].target_class,
                        self.config.to_dict(),
                        self._cache_root,
                    ),
                )
                for i in pending
            ]
            for i, future in futures:
                data = future.result()
                results[i] = (decode_synthesis(data), data, False)
        for i in pending:
            report, data, _ = results[i]
            if data is None:
                data = encode_synthesis(report)
                results[i] = (report, data, False)
            self._put("synthesis", keys[i], data)
        return results

    # -- detection phase -----------------------------------------------

    def _detection_phase(
        self,
        specs: list[SubjectSpec],
        keys: list[str],
        syntheses: list[SynthesisReport],
    ) -> list[tuple[DetectionReport, dict | None, bool]]:
        results: list = [None] * len(specs)
        pending: list[int] = []
        for i, spec in enumerate(specs):
            cached = self._get("detection", keys[i])
            if cached is not None:
                from repro.narada.serial import decode_detection

                results[i] = (decode_detection(cached), cached, True)
            else:
                pending.append(i)
        if pending and self.jobs == 1:
            for i in pending:
                table = _load_table(specs[i].source)
                detection = DetectionReport(class_name=specs[i].target_class)
                for test in syntheses[i].tests:
                    detection.add(_fuzz_unit(table, test, self.config))
                results[i] = (detection, None, False)
        elif pending:
            # One task per synthesized test, submitted and joined in
            # (subject, test) order — scheduling cannot reorder results.
            futures: list[tuple[int, list[Future]]] = []
            config_dict = self.config.to_dict()
            for i in pending:
                per_test = [
                    self._executor().submit(
                        _fuzz_worker,
                        specs[i].source,
                        encode_test_bundle(test),
                        config_dict,
                    )
                    for test in syntheses[i].tests
                ]
                futures.append((i, per_test))
            for i, per_test in futures:
                detection = DetectionReport(class_name=specs[i].target_class)
                for future in per_test:
                    detection.add(decode_fuzz_bundle(future.result()))
                results[i] = (detection, None, False)
        for i in pending:
            detection, data, _ = results[i]
            if data is None:
                data = encode_detection(detection)
                results[i] = (detection, data, False)
            self._put("detection", keys[i], data)
        return results

    def detect(
        self, spec: SubjectSpec, synthesis: SynthesisReport
    ) -> DetectionReport:
        """Detection for one already-synthesized subject."""
        key = stage_key(
            table_digest(spec.source),
            "detection",
            self.config.detection_config(spec.target_class),
        )
        return self._detection_phase([spec], [key], [synthesis])[0][0]

    # -- the whole pipeline --------------------------------------------

    def run(
        self, specs: list[SubjectSpec], detect: bool = True
    ) -> list[SubjectOutcome]:
        """Run the pipeline for every spec; results follow spec order."""
        digests = [table_digest(spec.source) for spec in specs]
        synth_keys = [
            stage_key(
                digests[i],
                "synthesis",
                self.config.synthesis_config(spec.target_class),
            )
            for i, spec in enumerate(specs)
        ]
        synthesis = self._synthesis_phase(specs, synth_keys)
        outcomes = [
            SubjectOutcome(
                spec=spec,
                synthesis=synthesis[i][0],
                synthesis_cached=synthesis[i][2],
                _synthesis_dict=synthesis[i][1],
            )
            for i, spec in enumerate(specs)
        ]
        if detect:
            detect_keys = [
                stage_key(
                    digests[i],
                    "detection",
                    self.config.detection_config(spec.target_class),
                )
                for i, spec in enumerate(specs)
            ]
            detections = self._detection_phase(
                specs, detect_keys, [o.synthesis for o in outcomes]
            )
            for outcome, (report, data, hit) in zip(outcomes, detections):
                outcome.detection = report
                outcome.detection_cached = hit
                outcome._detection_dict = data
        return outcomes


def subject_specs(subjects=None) -> list[SubjectSpec]:
    """Specs for the built-in paper subjects (all nine by default)."""
    from repro.subjects import all_subjects

    chosen = all_subjects() if subjects is None else list(subjects)
    return [
        SubjectSpec(name=s.key, source=s.source, target_class=s.class_name)
        for s in chosen
    ]
