"""FastTrack (Flanagan & Freund, PLDI 2009): precise HB race detection.

Implements the epoch-optimized happens-before algorithm:

* per-thread vector clocks ``C_t``, per-lock clocks ``L_m``;
* per-variable write *epoch* ``W_x`` and adaptive read state — a single
  epoch ``R_x`` in the common same-epoch/exclusive case, inflated to a
  full read vector clock only after concurrent reads (the paper's
  "read-shared" state);
* synchronization: lock release copies ``C_t`` into ``L_m``; acquire
  joins it back; fork/join transfer clocks between parent and child.

Races are reported with both access sites; the auxiliary per-variable
"last writer / last readers" bookkeeping exists only to make reports
informative (the algorithm itself needs just the epochs).

Hot-path notes (see DESIGN.md, "Performance architecture"): epochs are
stored as two plain ints (tid, time) rather than Epoch objects, so the
same-epoch case — by far the most frequent in real traces — is a pair
of int comparisons with zero allocation.  Raw access events stand in
for AccessInfo until a race is actually reported, and lock-release
clocks are O(1) copy-on-write snapshots.  The reported race set is
bit-for-bit the same as the unoptimized detector's: every check and
every last-access pointer update is preserved, only their cost changed.
"""

from __future__ import annotations

from repro.analysis.sweep import KernelSpec, SummarySpec, run_sweep
from repro.detect.clock import VectorClock
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.columnar import OP_READ, OP_WRITE
from repro.trace.events import (
    AccessEvent,
    Event,
    ForkEvent,
    JoinEvent,
    LockEvent,
    ReadEvent,
    UnlockEvent,
    WriteEvent,
)


class _VarState:
    """Per-address detector state; epochs unpacked into plain ints."""

    __slots__ = ("write_tid", "write_time", "read_tid", "read_time",
                 "read_clock", "last_write", "last_reads")

    def __init__(self) -> None:
        self.write_tid = -1
        self.write_time = 0
        self.read_tid = -1
        self.read_time = 0
        self.read_clock: VectorClock | None = None  # inflated read-shared state
        self.last_write: AccessEvent | None = None
        self.last_reads: dict[int, AccessEvent] = {}


# Sweep-kernel fragments (see analysis/sweep.py for the placeholder
# contract).  These are the feed_packed access rules verbatim: the
# epoch checks read ``VectorClock._times`` directly via the sweep's
# shared ``times_get``, and per-variable state lives in the shared
# per-address slot list.
_READ_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
if P_var.write_time > times_get(P_var.write_tid, 0) and P_var.last_write is not None:
    P_report(packed, P_var.last_write, i)
if P_var.read_clock is not None:
    P_var.read_clock.set_time(tid, my_time)
elif P_var.read_tid == tid:
    P_var.read_time = my_time
elif P_var.read_time <= times_get(P_var.read_tid, 0):
    P_var.read_tid = tid
    P_var.read_time = my_time
else:
    P_var.read_clock = VectorClock({P_var.read_tid: P_var.read_time, tid: my_time})
P_var.last_reads[tid] = i
"""

_WRITE_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
if P_var.write_time > times_get(P_var.write_tid, 0) and P_var.last_write is not None:
    P_report(packed, P_var.last_write, i)
if P_var.read_clock is not None:
    if not P_var.read_clock.leq(clock):
        for P_reader_tid, P_read_row in P_var.last_reads.items():
            if P_reader_tid != tid and P_var.read_clock.time_of(P_reader_tid) > times_get(P_reader_tid, 0):
                P_report(packed, P_read_row, i)
    P_var.read_clock = None
    P_var.last_reads = {tid: P_var.last_reads[tid]} if tid in P_var.last_reads else {}
elif P_var.read_time > times_get(P_var.read_tid, 0):
    P_previous = P_var.last_reads.get(P_var.read_tid)
    if P_previous is not None and tids[P_previous] != tid:
        P_report(packed, P_previous, i)
P_var.write_tid = tid
P_var.write_time = my_time
P_var.last_write = i
"""


def _fingerprint_var(var: "_VarState | None", canon) -> tuple | None:
    """Canonical form of one per-address state (block-summary hook)."""
    if var is None:
        return None
    read_clock = var.read_clock
    return (
        var.write_tid, var.write_time, var.read_tid, var.read_time,
        None if read_clock is None
        else tuple(sorted(read_clock._times.items())),
        canon(var.last_write),
        tuple(sorted(
            (tid, canon(row)) for tid, row in var.last_reads.items()
        )),
    )


def _shift_var(var: "_VarState", lo: int, hi: int, delta: int) -> "_VarState":
    """Shift stored row refs in ``[lo, hi)`` by ``delta`` (in place)."""
    last_write = var.last_write
    if last_write is not None and lo <= last_write < hi:
        var.last_write = last_write + delta
    last_reads = var.last_reads
    for tid, row in last_reads.items():
        if lo <= row < hi:
            last_reads[tid] = row + delta
    return var


class FastTrackDetector:
    """Epoch-based happens-before race detector."""

    name = "fasttrack"

    #: Event kinds this detector consumes (see Listener.interests).
    interests = (ReadEvent, WriteEvent, LockEvent, UnlockEvent,
                 ForkEvent, JoinEvent)

    def __init__(self) -> None:
        self.races = RaceSet()
        self._threads: dict[int, VectorClock] = {}
        self._locks: dict[int, VectorClock] = {}
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}
        self._handlers = {
            ReadEvent: self._on_read,
            WriteEvent: self._on_write,
            LockEvent: self._on_lock,
            UnlockEvent: self._on_unlock,
            ForkEvent: self._on_fork,
            JoinEvent: self._on_join,
        }

    # ------------------------------------------------------------------
    # Clock plumbing.

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def on_event(self, event: Event) -> None:
        handler = self._handlers.get(event.__class__)
        if handler is not None:
            handler(event)

    def _on_lock(self, event: LockEvent) -> None:
        lock_clock = self._locks.get(event.obj)
        if lock_clock is not None:
            self._clock(event.thread_id).join(lock_clock)

    def _on_unlock(self, event: UnlockEvent) -> None:
        clock = self._clock(event.thread_id)
        self._locks[event.obj] = clock.snapshot()
        clock.tick(event.thread_id)

    def _on_fork(self, event: ForkEvent) -> None:
        parent = self._clock(event.thread_id)
        child = self._clock(event.child_thread)
        child.join(parent)
        parent.tick(event.thread_id)

    def _on_join(self, event: JoinEvent) -> None:
        child = self._clock(event.child_thread)
        self._clock(event.thread_id).join(child)
        child.tick(event.child_thread)

    # ------------------------------------------------------------------
    # Access rules.

    def _on_read(self, event: ReadEvent) -> None:
        tid = event.thread_id
        clock = self._threads.get(tid)
        if clock is None:
            clock = self._clock(tid)
        var = self._vars.get(event.address())
        if var is None:
            var = self._vars[event.address()] = _VarState()
        time_of = clock.time_of

        # Write-read check first: W_x ⪯ C_t, as two int lookups.
        if var.write_time > time_of(var.write_tid) and var.last_write is not None:
            self._report(event, var.last_write, event)

        my_time = time_of(tid)
        if var.read_clock is not None:
            var.read_clock.set_time(tid, my_time)
        elif var.read_tid == tid:
            # Same-epoch / same-thread fast path: R_x stays an epoch.
            var.read_time = my_time
        elif var.read_time <= time_of(var.read_tid):
            var.read_tid = tid
            var.read_time = my_time
        else:
            # Concurrent reads: inflate to a read vector clock.
            var.read_clock = VectorClock(
                {var.read_tid: var.read_time, tid: my_time}
            )
        var.last_reads[tid] = event

    def _on_write(self, event: WriteEvent) -> None:
        tid = event.thread_id
        clock = self._threads.get(tid)
        if clock is None:
            clock = self._clock(tid)
        var = self._vars.get(event.address())
        if var is None:
            var = self._vars[event.address()] = _VarState()
        time_of = clock.time_of

        if var.write_time > time_of(var.write_tid) and var.last_write is not None:
            self._report(event, var.last_write, event)

        if var.read_clock is not None:
            if not var.read_clock.leq(clock):
                for reader_tid, read_event in var.last_reads.items():
                    if reader_tid == tid:
                        continue
                    if var.read_clock.time_of(reader_tid) > time_of(reader_tid):
                        self._report(event, read_event, event)
            var.read_clock = None
            var.last_reads = (
                {tid: var.last_reads[tid]} if tid in var.last_reads else {}
            )
        elif var.read_time > time_of(var.read_tid):
            previous = var.last_reads.get(var.read_tid)
            if previous is not None and previous.thread_id != tid:
                self._report(event, previous, event)

        var.write_tid = tid
        var.write_time = time_of(tid)
        var.last_write = event

    # ------------------------------------------------------------------
    # Sweep-engine pass protocol (see analysis/sweep.py and DESIGN.md §9).

    def kernel_spec(self, packed) -> KernelSpec:
        return KernelSpec(
            needs_clock=True,
            fragments={OP_READ: _READ_FRAGMENT, OP_WRITE: _WRITE_FRAGMENT},
            env={"Var": _VarState, "report": self._report_rows},
            summary=SummarySpec(
                fingerprint_entry=_fingerprint_var,
                shift_entry=_shift_var,
                fingerprint_extra=self._summary_extra,
                counters=self._summary_counters,
                scale=self._summary_scale,
            ),
        )

    # Block-summary hooks (see SummarySpec / DESIGN.md §13): the
    # fragments above read only signature columns plus order-invariant
    # label comparisons on their hot paths; recording a statically new
    # race grows ``races._seen`` and therefore breaks convergence, so
    # the only effect a skipped occurrence can have is the
    # ``dynamic_count`` bump scaled here.

    def _summary_extra(self, touched, canon) -> int:
        return len(self.races._seen)

    def _summary_counters(self) -> tuple:
        return (self.races.dynamic_count,)

    def _summary_scale(self, deltas, times) -> None:
        self.races.dynamic_count += deltas[0] * times

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch-consume rows of a :class:`PackedTrace`.

        Semantically identical to replaying ``on_event`` over the
        reconstructed events, but runs as a singleton sweep of the
        fused analysis engine: the access rules from
        :data:`_READ_FRAGMENT` / :data:`_WRITE_FRAGMENT` are inlined
        into the generated sweep loop — no event objects, no handler
        dispatch, per-variable state keyed on the interned address id.
        Feed a given detector instance through exactly one protocol —
        packed var-state rows and object var-state events do not mix.
        """
        run_sweep((self,), packed, start=start, stop=stop)

    # ------------------------------------------------------------------

    def _report(
        self, event: AccessEvent, previous: AccessEvent, current: AccessEvent
    ) -> None:
        if self.races.count_duplicate(
            event.class_name, event.field_name, previous.node_id, current.node_id
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=AccessInfo.from_event(previous),
                second=AccessInfo.from_event(current),
            )
        )

    def _report_rows(self, packed, prev_row: int, cur_row: int) -> None:
        """Report a race between two packed access rows (cold path)."""
        class_name = packed.strtab[packed.cls[cur_row]]
        field_name = packed.strtab[packed.fld[cur_row]]
        if self.races.count_duplicate(
            class_name, field_name, packed.node[prev_row], packed.node[cur_row]
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=class_name,
                field_name=field_name,
                address=packed.address_at(cur_row),
                first=AccessInfo.from_packed_row(packed, prev_row),
                second=AccessInfo.from_packed_row(packed, cur_row),
            )
        )


__all__ = ["FastTrackDetector"]
