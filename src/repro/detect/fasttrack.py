"""FastTrack (Flanagan & Freund, PLDI 2009): precise HB race detection.

Implements the epoch-optimized happens-before algorithm:

* per-thread vector clocks ``C_t``, per-lock clocks ``L_m``;
* per-variable write *epoch* ``W_x`` and adaptive read state — a single
  epoch ``R_x`` in the common same-epoch/exclusive case, inflated to a
  full read vector clock only after concurrent reads (the paper's
  "read-shared" state);
* synchronization: lock release copies ``C_t`` into ``L_m``; acquire
  joins it back; fork/join transfer clocks between parent and child.

Races are reported with both access sites; the auxiliary per-variable
"last writer / last readers" bookkeeping exists only to make reports
informative (the algorithm itself needs just the epochs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detect.clock import EPOCH_ZERO, Epoch, VectorClock
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.events import (
    AccessEvent,
    Event,
    ForkEvent,
    JoinEvent,
    LockEvent,
    ReadEvent,
    UnlockEvent,
    WriteEvent,
)


@dataclass
class _VarState:
    write_epoch: Epoch = EPOCH_ZERO
    read_epoch: Epoch = EPOCH_ZERO
    read_clock: VectorClock | None = None  # inflated read-shared state
    last_write: AccessInfo | None = None
    last_reads: dict[int, AccessInfo] = field(default_factory=dict)


class FastTrackDetector:
    """Epoch-based happens-before race detector."""

    name = "fasttrack"

    def __init__(self) -> None:
        self.races = RaceSet()
        self._threads: dict[int, VectorClock] = {}
        self._locks: dict[int, VectorClock] = {}
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}

    # ------------------------------------------------------------------
    # Clock plumbing.

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def on_event(self, event: Event) -> None:
        if isinstance(event, ReadEvent):
            self._on_read(event)
        elif isinstance(event, WriteEvent):
            self._on_write(event)
        elif isinstance(event, LockEvent):
            lock_clock = self._locks.get(event.obj)
            if lock_clock is not None:
                self._clock(event.thread_id).join(lock_clock)
        elif isinstance(event, UnlockEvent):
            clock = self._clock(event.thread_id)
            self._locks[event.obj] = clock.copy()
            clock.tick(event.thread_id)
        elif isinstance(event, ForkEvent):
            parent = self._clock(event.thread_id)
            child = self._clock(event.child_thread)
            child.join(parent)
            parent.tick(event.thread_id)
        elif isinstance(event, JoinEvent):
            child = self._clock(event.child_thread)
            self._clock(event.thread_id).join(child)
            child.tick(event.child_thread)

    # ------------------------------------------------------------------
    # Access rules.

    def _on_read(self, event: ReadEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.setdefault(event.address(), _VarState())
        info = self._info(event, "R")

        if not var.write_epoch.leq_vc(clock) and var.last_write is not None:
            self._report(event, var.last_write, info)

        my_epoch = Epoch(tid, clock.time_of(tid))
        if var.read_clock is not None:
            var.read_clock._times[tid] = my_epoch.time  # noqa: SLF001
        elif var.read_epoch.tid == tid or var.read_epoch.leq_vc(clock):
            var.read_epoch = my_epoch
        else:
            # Concurrent reads: inflate to a read vector clock.
            var.read_clock = VectorClock(
                {var.read_epoch.tid: var.read_epoch.time, tid: my_epoch.time}
            )
        var.last_reads[tid] = info

    def _on_write(self, event: WriteEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.setdefault(event.address(), _VarState())
        info = self._info(event, "W")

        if not var.write_epoch.leq_vc(clock) and var.last_write is not None:
            self._report(event, var.last_write, info)

        if var.read_clock is not None:
            if not var.read_clock.leq(clock):
                for reader_tid, read_info in var.last_reads.items():
                    if reader_tid == tid:
                        continue
                    if var.read_clock.time_of(reader_tid) > clock.time_of(reader_tid):
                        self._report(event, read_info, info)
            var.read_clock = None
            var.last_reads = {info.thread_id: var.last_reads[tid]} if tid in var.last_reads else {}
        elif not var.read_epoch.leq_vc(clock):
            previous = var.last_reads.get(var.read_epoch.tid)
            if previous is not None and previous.thread_id != tid:
                self._report(event, previous, info)

        var.write_epoch = Epoch(tid, clock.time_of(tid))
        var.last_write = info

    # ------------------------------------------------------------------

    @staticmethod
    def _info(event: AccessEvent, kind: str) -> AccessInfo:
        return AccessInfo(
            thread_id=event.thread_id,
            node_id=event.node_id,
            label=event.label,
            kind=kind,
            value=event.value,
            old_value=event.old_value if isinstance(event, WriteEvent) else None,
        )

    def _report(
        self, event: AccessEvent, previous: AccessInfo, current: AccessInfo
    ) -> None:
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=previous,
                second=current,
            )
        )


__all__ = ["FastTrackDetector"]
