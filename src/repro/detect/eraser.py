"""The Eraser lockset algorithm (Savage et al., TOCS 1997).

Narada's pair criterion — "the intersection of the held lock objects for
any two shared memory accesses is empty" — *is* Eraser's invariant, which
the paper points out explicitly (§1).  We implement the full detector,
including the state machine that suppresses initialization and
read-shared false positives:

    VIRGIN -> EXCLUSIVE(t) -> SHARED (reads only) -> SHARED_MODIFIED

Lockset refinement ``C(v) := C(v) ∩ locks_held`` starts when the second
thread touches the variable; an empty lockset in SHARED_MODIFIED reports
a race.  Because our access events carry the held-lock snapshot, no lock
bookkeeping is needed here.

On the hot path the detector keeps raw access events and defers all
AccessInfo construction to report time; the owner-thread EXCLUSIVE case
returns after two comparisons.
"""

from __future__ import annotations

import enum

from repro.analysis.sweep import KernelSpec, SummarySpec, run_sweep
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.columnar import OP_READ, OP_WRITE
from repro.trace.events import AccessEvent, Event, ReadEvent, WriteEvent


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


_VIRGIN = _State.VIRGIN
_EXCLUSIVE = _State.EXCLUSIVE
_SHARED = _State.SHARED
_SHARED_MODIFIED = _State.SHARED_MODIFIED


class _VarState:
    __slots__ = ("state", "owner", "lockset", "last_by_thread")

    def __init__(self) -> None:
        self.state = _VIRGIN
        self.owner = -1
        self.lockset: frozenset[int] | None = None
        #: Most recent access event per thread, for reporting racy pairs.
        self.last_by_thread: dict[int, AccessEvent] = {}


# Sweep-kernel fragments (see analysis/sweep.py): the :meth:`_transition`
# state machine inlined over raw columns; per-variable state lives in
# the shared per-address slot list and remembers row indices.
_READ_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
P_state = P_var.state
if P_state is P_EXCLUSIVE:
    if tid != P_var.owner:
        P_var.lockset = locktab[lcks[i]]
        P_var.state = P_SHARED
        P_check(packed, P_var, i, False)
elif P_state is P_VIRGIN:
    P_var.state = P_EXCLUSIVE
    P_var.owner = tid
else:
    P_lockset = P_var.lockset
    if P_lockset:
        P_var.lockset = P_lockset & locktab[lcks[i]]
    P_check(packed, P_var, i, False)
P_var.last_by_thread[tid] = i
"""

_WRITE_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
P_state = P_var.state
if P_state is P_EXCLUSIVE:
    if tid != P_var.owner:
        P_var.lockset = locktab[lcks[i]]
        P_var.state = P_SHARED_MODIFIED
        P_check(packed, P_var, i, True)
elif P_state is P_VIRGIN:
    P_var.state = P_EXCLUSIVE
    P_var.owner = tid
else:
    P_lockset = P_var.lockset
    if P_lockset:
        P_var.lockset = P_lockset & locktab[lcks[i]]
    if P_state is P_SHARED:
        P_var.state = P_SHARED_MODIFIED
    P_check(packed, P_var, i, True)
P_var.last_by_thread[tid] = i
"""


def _fingerprint_var(var: "_VarState | None", canon) -> tuple | None:
    """Canonical form of one per-address state (block-summary hook)."""
    if var is None:
        return None
    return (
        var.state, var.owner, var.lockset,
        tuple(sorted(
            (tid, canon(row)) for tid, row in var.last_by_thread.items()
        )),
    )


def _shift_var(var: "_VarState", lo: int, hi: int, delta: int) -> "_VarState":
    """Shift stored row refs in ``[lo, hi)`` by ``delta`` (in place)."""
    last_by_thread = var.last_by_thread
    for tid, row in last_by_thread.items():
        if lo <= row < hi:
            last_by_thread[tid] = row + delta
    return var


class EraserDetector:
    """Lockset-based dynamic race detector."""

    name = "eraser"

    #: Event kinds this detector consumes (see Listener.interests).
    interests = (ReadEvent, WriteEvent)

    def __init__(self) -> None:
        self.races = RaceSet()
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}

    def on_event(self, event: Event) -> None:
        cls = event.__class__
        if cls is not ReadEvent and cls is not WriteEvent:
            return
        var = self._vars.get(event.address())
        if var is None:
            var = self._vars[event.address()] = _VarState()
        self._transition(var, event, cls is WriteEvent)
        var.last_by_thread[event.thread_id] = event

    # ------------------------------------------------------------------
    # Sweep-engine pass protocol (see analysis/sweep.py and DESIGN.md §9).

    def kernel_spec(self, packed) -> KernelSpec:
        return KernelSpec(
            fragments={OP_READ: _READ_FRAGMENT, OP_WRITE: _WRITE_FRAGMENT},
            env={
                "Var": _VarState,
                "check": self._check_row,
                "VIRGIN": _VIRGIN,
                "EXCLUSIVE": _EXCLUSIVE,
                "SHARED": _SHARED,
                "SHARED_MODIFIED": _SHARED_MODIFIED,
            },
            summary=SummarySpec(
                fingerprint_entry=_fingerprint_var,
                shift_entry=_shift_var,
                fingerprint_extra=self._summary_extra,
                counters=self._summary_counters,
                scale=self._summary_scale,
            ),
        )

    # Block-summary hooks (see SummarySpec / DESIGN.md §13).  The
    # ``labels[a] > labels[b]`` recency pick in :meth:`_check_row` is
    # an order comparison (labels increase with row index), so it is
    # invariant under the engine's ref shifting.

    def _summary_extra(self, touched, canon) -> int:
        return len(self.races._seen)

    def _summary_counters(self) -> tuple:
        return (self.races.dynamic_count,)

    def _summary_scale(self, deltas, times) -> None:
        self.races.dynamic_count += deltas[0] * times

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch-consume rows of a :class:`PackedTrace`.

        Runs as a singleton sweep of the fused analysis engine; the
        fragments above are the :meth:`_transition` state machine.  Do
        not mix packed and object feeding on one detector instance.
        """
        run_sweep((self,), packed, start=start, stop=stop)

    def _check_row(self, packed, var: _VarState, row: int, is_write: bool) -> None:
        """Row-index twin of :meth:`_check` (cold reporting path)."""
        if var.state is not _SHARED_MODIFIED:
            return
        if var.lockset:
            return
        ops = packed.op
        labels = packed.label
        tid = packed.tid[row]
        previous: int | None = None
        for other_tid, access in var.last_by_thread.items():
            if other_tid == tid:
                continue
            if not is_write and ops[access] == OP_READ:
                continue
            if previous is None or labels[access] > labels[previous]:
                previous = access
        if previous is None:
            return
        class_name = packed.strtab[packed.cls[row]]
        field_name = packed.strtab[packed.fld[row]]
        if self.races.count_duplicate(
            class_name, field_name, packed.node[previous], packed.node[row]
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=class_name,
                field_name=field_name,
                address=packed.address_at(row),
                first=AccessInfo.from_packed_row(packed, previous),
                second=AccessInfo.from_packed_row(packed, row),
            )
        )

    # ------------------------------------------------------------------

    def _transition(self, var: _VarState, event: AccessEvent, is_write: bool) -> None:
        tid = event.thread_id
        state = var.state

        if state is _EXCLUSIVE:
            if tid == var.owner:
                return
            # Second thread: start refining the lockset.
            var.lockset = event.locks_held
            var.state = _SHARED_MODIFIED if is_write else _SHARED
            self._check(var, event, is_write)
            return
        if state is _VIRGIN:
            var.state = _EXCLUSIVE
            var.owner = tid
            return

        assert var.lockset is not None
        var.lockset = var.lockset & event.locks_held
        if state is _SHARED and is_write:
            var.state = _SHARED_MODIFIED
        self._check(var, event, is_write)

    def _check(self, var: _VarState, event: AccessEvent, is_write: bool) -> None:
        if var.state is not _SHARED_MODIFIED:
            return
        if var.lockset:
            return
        # Pair the empty-lockset access with the most recent conflicting
        # access made by any *other* thread.
        tid = event.thread_id
        previous: AccessEvent | None = None
        for other_tid, access in var.last_by_thread.items():
            if other_tid == tid:
                continue
            if not is_write and access.__class__ is ReadEvent:
                continue
            if previous is None or access.label > previous.label:
                previous = access
        if previous is None:
            return
        if self.races.count_duplicate(
            event.class_name, event.field_name, previous.node_id, event.node_id
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=AccessInfo.from_event(previous),
                second=AccessInfo.from_event(event),
            )
        )


__all__ = ["EraserDetector"]
