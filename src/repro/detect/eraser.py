"""The Eraser lockset algorithm (Savage et al., TOCS 1997).

Narada's pair criterion — "the intersection of the held lock objects for
any two shared memory accesses is empty" — *is* Eraser's invariant, which
the paper points out explicitly (§1).  We implement the full detector,
including the state machine that suppresses initialization and
read-shared false positives:

    VIRGIN -> EXCLUSIVE(t) -> SHARED (reads only) -> SHARED_MODIFIED

Lockset refinement ``C(v) := C(v) ∩ locks_held`` starts when the second
thread touches the variable; an empty lockset in SHARED_MODIFIED reports
a race.  Because our access events carry the held-lock snapshot, no lock
bookkeeping is needed here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.events import AccessEvent, Event, WriteEvent


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _VarState:
    state: _State = _State.VIRGIN
    owner: int = -1
    lockset: frozenset[int] | None = None
    #: Most recent access per thread, for reporting racy pairs.
    last_by_thread: dict[int, AccessInfo] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.last_by_thread is None:
            self.last_by_thread = {}


class EraserDetector:
    """Lockset-based dynamic race detector."""

    name = "eraser"

    def __init__(self) -> None:
        self.races = RaceSet()
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}

    def on_event(self, event: Event) -> None:
        if not isinstance(event, AccessEvent):
            return
        address = event.address()
        var = self._vars.setdefault(address, _VarState())
        info = AccessInfo(
            thread_id=event.thread_id,
            node_id=event.node_id,
            label=event.label,
            kind="W" if isinstance(event, WriteEvent) else "R",
            value=event.value,
            old_value=event.old_value if isinstance(event, WriteEvent) else None,
        )
        self._transition(var, event, info)
        var.last_by_thread[event.thread_id] = info

    # ------------------------------------------------------------------

    def _transition(self, var: _VarState, event: AccessEvent, info: AccessInfo) -> None:
        is_write = isinstance(event, WriteEvent)
        tid = event.thread_id

        if var.state is _State.VIRGIN:
            var.state = _State.EXCLUSIVE
            var.owner = tid
            return
        if var.state is _State.EXCLUSIVE:
            if tid == var.owner:
                return
            # Second thread: start refining the lockset.
            var.lockset = event.locks_held
            var.state = _State.SHARED_MODIFIED if is_write else _State.SHARED
            self._check(var, event, info)
            return

        assert var.lockset is not None
        var.lockset = var.lockset & event.locks_held
        if var.state is _State.SHARED and is_write:
            var.state = _State.SHARED_MODIFIED
        self._check(var, event, info)

    def _check(self, var: _VarState, event: AccessEvent, info: AccessInfo) -> None:
        if var.state is not _State.SHARED_MODIFIED:
            return
        if var.lockset:
            return
        # Pair the empty-lockset access with the most recent conflicting
        # access made by any *other* thread.
        previous = None
        for tid, access in var.last_by_thread.items():
            if tid == info.thread_id:
                continue
            if access.kind == "R" and info.kind == "R":
                continue
            if previous is None or access.label > previous.label:
                previous = access
        if previous is None:
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=previous,
                second=info,
            )
        )


__all__ = ["EraserDetector"]
