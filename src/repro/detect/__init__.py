"""Dynamic race detectors: Eraser lockset, Djit+, FastTrack."""

from repro.detect.clock import EPOCH_ZERO, Epoch, VectorClock
from repro.detect.djit import DjitDetector
from repro.detect.eraser import EraserDetector
from repro.detect.fasttrack import FastTrackDetector
from repro.detect.report import (
    AccessInfo,
    RaceRecord,
    RaceSet,
    collect_constant_write_sites,
)

__all__ = [
    "AccessInfo",
    "DjitDetector",
    "EPOCH_ZERO",
    "Epoch",
    "EraserDetector",
    "FastTrackDetector",
    "RaceRecord",
    "RaceSet",
    "VectorClock",
    "collect_constant_write_sites",
]
