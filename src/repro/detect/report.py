"""Race records, deduplication, and harmful/benign classification.

The paper (Table 5) counts *races* as distinct racing access pairs, then
classifies reproduced ones as harmful or benign by inspection; the 62
benign races in their C6 come from a ``reset`` method writing constants.
We automate that judgment: a race is classified *benign* when both sides
are writes of equal values from *constant-write sites* (field assignments
whose right-hand side is a literal — the reset pattern), or when both
writes demonstrably changed nothing (stored the value already present on
both sides).  Everything else — in particular same-value writes produced
from prior reads, i.e. lost updates — is *harmful*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.runtime.values import Value, show_value, values_equal
from repro.trace.events import WriteEvent


def collect_constant_write_sites(program: ast.Program) -> set[int]:
    """Node ids of field writes whose right-hand side is a literal.

    These are the "reset to constant" sites whose same-value write-write
    races the paper triages as benign.
    """
    sites: set[int] = set()

    def walk(node) -> None:
        if isinstance(node, ast.AssignField) and isinstance(
            node.value, (ast.IntLit, ast.BoolLit, ast.NullLit)
        ):
            sites.add(node.node_id)
        for value in vars(node).values():
            if isinstance(value, (ast.Stmt, ast.Expr)):
                walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.Stmt, ast.Expr)):
                        walk(item)

    for cls in program.classes:
        for method in cls.methods:
            walk(method.body)
    return sites


@dataclass(frozen=True)
class AccessInfo:
    """One side of a reported race."""

    thread_id: int
    node_id: int
    label: int
    kind: str  # "R" | "W"
    value: Value = None
    old_value: Value = None

    @classmethod
    def from_event(cls, event) -> "AccessInfo":
        """Build the report-side view of a raw access event.

        The detectors keep raw events on their hot paths and only
        materialize AccessInfo when a race is actually reported.
        """
        is_write = isinstance(event, WriteEvent)
        return cls(
            thread_id=event.thread_id,
            node_id=event.node_id,
            label=event.label,
            kind="W" if is_write else "R",
            value=event.value,
            old_value=event.old_value if is_write else None,
        )

    @classmethod
    def from_packed_row(cls, packed, row: int) -> "AccessInfo":
        """Build the report-side view of one packed access row.

        The columnar counterpart of :meth:`from_event`: the detectors'
        ``feed_packed`` loops keep row indices in their per-variable
        state and only materialize AccessInfo when a race is reported.
        """
        from repro.trace.columnar import OP_WRITE

        is_write = packed.op[row] == OP_WRITE
        return cls(
            thread_id=packed.tid[row],
            node_id=packed.node[row],
            label=packed.label[row],
            kind="W" if is_write else "R",
            value=packed.value_at(row),
            old_value=packed.old_value_at(row) if is_write else None,
        )


@dataclass(frozen=True)
class RaceRecord:
    """A race between two accesses to the same memory address."""

    detector: str
    class_name: str
    field_name: str
    address: tuple[int, str, int | None]
    first: AccessInfo
    second: AccessInfo

    def static_key(self) -> tuple:
        """Identity used to count distinct races (field + site pair)."""
        sites = tuple(sorted((self.first.node_id, self.second.node_id)))
        return (self.class_name, self.field_name, sites)

    def is_benign(self, constant_sites: set[int] | None = None) -> bool:
        """Automated version of the paper's manual harmful/benign triage.

        Args:
            constant_sites: node ids of constant-RHS field writes (see
                :func:`collect_constant_write_sites`); when omitted, only
                the provably-no-op criterion applies.
        """
        first, second = self.first, self.second
        if first.kind != "W" or second.kind != "W":
            return False
        if not values_equal(first.value, second.value):
            return False
        if constant_sites is not None:
            if first.node_id in constant_sites and second.node_id in constant_sites:
                return True
        # Both writes stored the value already present: a true no-op.
        return values_equal(first.value, first.old_value) and values_equal(
            second.value, second.old_value
        )

    def describe(self, constant_sites: set[int] | None = None) -> str:
        verdict = "benign" if self.is_benign(constant_sites) else "harmful"
        return (
            f"[{self.detector}] race on {self.class_name}.{self.field_name} "
            f"({verdict}): t{self.first.thread_id} {self.first.kind}"
            f"={show_value(self.first.value)} @site{self.first.node_id} vs "
            f"t{self.second.thread_id} {self.second.kind}"
            f"={show_value(self.second.value)} @site{self.second.node_id}"
        )


@dataclass
class RaceSet:
    """Collected races with static deduplication."""

    races: list[RaceRecord] = field(default_factory=list)
    _seen: set[tuple] = field(default_factory=set)
    dynamic_count: int = 0

    def add(self, record: RaceRecord) -> bool:
        """Record a race; returns True when it is statically new."""
        self.dynamic_count += 1
        key = record.static_key()
        if key in self._seen:
            return False
        self._seen.add(key)
        self.races.append(record)
        return True

    def count_duplicate(
        self, class_name: str, field_name: str, site_a: int, site_b: int
    ) -> bool:
        """Hot-path dedup check, avoiding record construction.

        When a race with this static identity has already been recorded,
        count the dynamic occurrence and return True; the caller can then
        skip materializing AccessInfo/RaceRecord objects entirely.  On
        heavily racy traces nearly every access re-reports the same
        static race, so this is the common case for the detectors.
        """
        sites = (site_a, site_b) if site_a <= site_b else (site_b, site_a)
        if (class_name, field_name, sites) in self._seen:
            self.dynamic_count += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self.races)

    def __iter__(self):
        return iter(self.races)

    def static_keys(self) -> set[tuple]:
        return set(self._seen)

    def harmful(self, constant_sites: set[int] | None = None) -> list[RaceRecord]:
        return [r for r in self.races if not r.is_benign(constant_sites)]

    def benign(self, constant_sites: set[int] | None = None) -> list[RaceRecord]:
        return [r for r in self.races if r.is_benign(constant_sites)]

    def merge(self, other: "RaceSet") -> None:
        for record in other.races:
            self.add(record)
