"""Vector clocks and epochs for happens-before race detection.

Shared by the Djit+ and FastTrack detectors.  A :class:`VectorClock` is
a sparse mapping thread-id -> logical time; an :class:`Epoch` is the
FastTrack compression of "one thread's time" (c@t in the paper's
notation).

Clocks are copy-on-write: :meth:`VectorClock.snapshot` returns an O(1)
frozen view sharing the underlying dict, and the next mutation of
either side copies.  Detectors snapshot a thread clock at every lock
release, so this turns the per-release deep copy into a no-op except
when the thread's clock actually advances afterwards — which it does
via ``tick``, but a snapshot that is immediately replaced by a newer
one (the common re-release pattern) never pays for a copy of its own.
"""

from __future__ import annotations

from dataclasses import dataclass


class VectorClock:
    """A sparse vector clock over thread ids.

    Missing entries are zero.  Instances are mutable; use
    :meth:`snapshot` (O(1), copy-on-write) or :meth:`copy` (eager) to
    store an immutable point-in-time view (e.g. lock release clocks).
    """

    __slots__ = ("_times", "_frozen")

    def __init__(self, times: dict[int, int] | None = None) -> None:
        self._times = dict(times) if times else {}
        self._frozen = False

    def time_of(self, tid: int) -> int:
        return self._times.get(tid, 0)

    def _thaw(self) -> None:
        """Make this clock safely mutable (copy a shared dict)."""
        if self._frozen:
            self._times = dict(self._times)
            self._frozen = False

    def tick(self, tid: int) -> None:
        """Increment this clock's component for ``tid``."""
        self._thaw()
        self._times[tid] = self._times.get(tid, 0) + 1

    def set_time(self, tid: int, time: int) -> None:
        """Set one component directly (detector bookkeeping)."""
        self._thaw()
        self._times[tid] = time

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place.

        Skips the copy-on-write materialization entirely when ``other``
        adds nothing — the common case when a thread reacquires a lock
        it released last.
        """
        other_times = other._times
        mine = self._times
        if mine is other_times:
            return
        for tid, time in other_times.items():
            if time > mine.get(tid, 0):
                break
        else:
            return
        if self._frozen:
            mine = self._times = dict(mine)
            self._frozen = False
        for tid, time in other_times.items():
            if time > mine.get(tid, 0):
                mine[tid] = time

    def snapshot(self) -> "VectorClock":
        """An O(1) frozen view of the current state.

        Both this clock and the returned view keep sharing the backing
        dict until one of them is mutated, at which point the mutating
        side copies.
        """
        self._frozen = True
        view = VectorClock.__new__(VectorClock)
        view._times = self._times
        view._frozen = True
        return view

    def copy(self) -> "VectorClock":
        return VectorClock(self._times)

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise <= (the happens-before test)."""
        other_times = other._times
        if self._times is other_times:
            return True
        return all(
            time <= other_times.get(tid, 0) for tid, time in self._times.items()
        )

    def items(self):
        return self._times.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self._times) | set(other._times)
        return all(self.time_of(k) == other.time_of(k) for k in keys)

    def __hash__(self):  # pragma: no cover - clocks are not hashable keys
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"t{t}:{c}" for t, c in sorted(self._times.items()))
        return f"VC({inner})"


@dataclass(frozen=True)
class Epoch:
    """FastTrack's c@t: one component of a vector clock."""

    tid: int
    time: int

    def leq_vc(self, clock: VectorClock) -> bool:
        """c@t ⪯ V  ⇔  c <= V[t]."""
        return self.time <= clock.time_of(self.tid)

    def __repr__(self) -> str:
        return f"{self.time}@t{self.tid}"


#: The bottom epoch (never racy, precedes everything).
EPOCH_ZERO = Epoch(tid=-1, time=0)
