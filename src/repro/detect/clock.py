"""Vector clocks and epochs for happens-before race detection.

Shared by the Djit+ and FastTrack detectors.  A :class:`VectorClock` is
a sparse mapping thread-id -> logical time; an :class:`Epoch` is the
FastTrack compression of "one thread's time" (c@t in the paper's
notation).
"""

from __future__ import annotations

from dataclasses import dataclass


class VectorClock:
    """A sparse vector clock over thread ids.

    Missing entries are zero.  Instances are mutable; use :meth:`copy`
    before storing snapshots (e.g. lock release clocks).
    """

    __slots__ = ("_times",)

    def __init__(self, times: dict[int, int] | None = None) -> None:
        self._times = dict(times) if times else {}

    def time_of(self, tid: int) -> int:
        return self._times.get(tid, 0)

    def tick(self, tid: int) -> None:
        """Increment this clock's component for ``tid``."""
        self._times[tid] = self._times.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        for tid, time in other._times.items():
            if time > self._times.get(tid, 0):
                self._times[tid] = time

    def copy(self) -> "VectorClock":
        return VectorClock(self._times)

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise <= (the happens-before test)."""
        return all(
            time <= other._times.get(tid, 0) for tid, time in self._times.items()
        )

    def items(self):
        return self._times.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self._times) | set(other._times)
        return all(self.time_of(k) == other.time_of(k) for k in keys)

    def __hash__(self):  # pragma: no cover - clocks are not hashable keys
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"t{t}:{c}" for t, c in sorted(self._times.items()))
        return f"VC({inner})"


@dataclass(frozen=True)
class Epoch:
    """FastTrack's c@t: one component of a vector clock."""

    tid: int
    time: int

    def leq_vc(self, clock: VectorClock) -> bool:
        """c@t ⪯ V  ⇔  c <= V[t]."""
        return self.time <= clock.time_of(self.tid)

    def __repr__(self) -> str:
        return f"{self.time}@t{self.tid}"


#: The bottom epoch (never racy, precedes everything).
EPOCH_ZERO = Epoch(tid=-1, time=0)
