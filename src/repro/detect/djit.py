"""Djit+ (Pozniansky & Schuster, PPoPP 2003): full-vector-clock HB
race detection.

The unoptimized ancestor of FastTrack: every variable keeps a complete
read vector clock and write vector clock.  Kept as an independent
detector both for the ablation benchmark (FastTrack must report exactly
the same races, faster bookkeeping) and as an oracle in the detector
equivalence property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detect.clock import VectorClock
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.events import (
    AccessEvent,
    Event,
    ForkEvent,
    JoinEvent,
    LockEvent,
    ReadEvent,
    UnlockEvent,
    WriteEvent,
)


@dataclass
class _VarState:
    reads: VectorClock = field(default_factory=VectorClock)
    writes: VectorClock = field(default_factory=VectorClock)
    last_writes: dict[int, AccessInfo] = field(default_factory=dict)
    last_reads: dict[int, AccessInfo] = field(default_factory=dict)


class DjitDetector:
    """Vector-clock happens-before race detector (Djit+)."""

    name = "djit+"

    def __init__(self) -> None:
        self.races = RaceSet()
        self._threads: dict[int, VectorClock] = {}
        self._locks: dict[int, VectorClock] = {}
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def on_event(self, event: Event) -> None:
        if isinstance(event, ReadEvent):
            self._on_read(event)
        elif isinstance(event, WriteEvent):
            self._on_write(event)
        elif isinstance(event, LockEvent):
            lock_clock = self._locks.get(event.obj)
            if lock_clock is not None:
                self._clock(event.thread_id).join(lock_clock)
        elif isinstance(event, UnlockEvent):
            clock = self._clock(event.thread_id)
            self._locks[event.obj] = clock.copy()
            clock.tick(event.thread_id)
        elif isinstance(event, ForkEvent):
            parent = self._clock(event.thread_id)
            self._clock(event.child_thread).join(parent)
            parent.tick(event.thread_id)
        elif isinstance(event, JoinEvent):
            self._clock(event.thread_id).join(self._clock(event.child_thread))
            self._clock(event.child_thread).tick(event.child_thread)

    # ------------------------------------------------------------------

    def _on_read(self, event: ReadEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.setdefault(event.address(), _VarState())
        info = _info(event, "R")
        # A read races with every write not ordered before us.
        for writer_tid, write_time in var.writes.items():
            if writer_tid != tid and write_time > clock.time_of(writer_tid):
                previous = var.last_writes.get(writer_tid)
                if previous is not None:
                    self._report(event, previous, info)
        var.reads._times[tid] = clock.time_of(tid)  # noqa: SLF001
        var.last_reads[tid] = info

    def _on_write(self, event: WriteEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.setdefault(event.address(), _VarState())
        info = _info(event, "W")
        for writer_tid, write_time in var.writes.items():
            if writer_tid != tid and write_time > clock.time_of(writer_tid):
                previous = var.last_writes.get(writer_tid)
                if previous is not None:
                    self._report(event, previous, info)
        for reader_tid, read_time in var.reads.items():
            if reader_tid != tid and read_time > clock.time_of(reader_tid):
                previous = var.last_reads.get(reader_tid)
                if previous is not None:
                    self._report(event, previous, info)
        var.writes._times[tid] = clock.time_of(tid)  # noqa: SLF001
        var.last_writes[tid] = info

    def _report(
        self, event: AccessEvent, previous: AccessInfo, current: AccessInfo
    ) -> None:
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=previous,
                second=current,
            )
        )


def _info(event: AccessEvent, kind: str) -> AccessInfo:
    return AccessInfo(
        thread_id=event.thread_id,
        node_id=event.node_id,
        label=event.label,
        kind=kind,
        value=event.value,
        old_value=event.old_value if isinstance(event, WriteEvent) else None,
    )


__all__ = ["DjitDetector"]
