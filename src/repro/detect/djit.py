"""Djit+ (Pozniansky & Schuster, PPoPP 2003): full-vector-clock HB
race detection.

The unoptimized ancestor of FastTrack: every variable keeps a complete
read vector clock and write vector clock.  Kept as an independent
detector both for the ablation benchmark (FastTrack must report exactly
the same races, faster bookkeeping) and as an oracle in the detector
equivalence property tests.

The same hot-path treatment as FastTrack applies (handler table, raw
events until report time, copy-on-write release snapshots) — but the
per-variable state intentionally stays full vector clocks.
"""

from __future__ import annotations

from repro.analysis.sweep import KernelSpec, SummarySpec, run_sweep
from repro.detect.clock import VectorClock
from repro.detect.report import AccessInfo, RaceRecord, RaceSet
from repro.trace.columnar import OP_READ, OP_WRITE
from repro.trace.events import (
    AccessEvent,
    Event,
    ForkEvent,
    JoinEvent,
    LockEvent,
    ReadEvent,
    UnlockEvent,
    WriteEvent,
)


class _VarState:
    __slots__ = ("reads", "writes", "last_writes", "last_reads")

    def __init__(self) -> None:
        self.reads = VectorClock()
        self.writes = VectorClock()
        self.last_writes: dict[int, AccessEvent] = {}
        self.last_reads: dict[int, AccessEvent] = {}


# Sweep-kernel fragments (see analysis/sweep.py): the full-vector-clock
# access rules over raw columns, with the same direct
# ``VectorClock._times`` reads as the object path's ``time_of`` checks.
_READ_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
for P_writer_tid, P_write_time in P_var.writes._times.items():
    if P_writer_tid != tid and P_write_time > times_get(P_writer_tid, 0):
        P_previous = P_var.last_writes.get(P_writer_tid)
        if P_previous is not None:
            P_report(packed, P_previous, i)
P_var.reads.set_time(tid, my_time)
P_var.last_reads[tid] = i
"""

_WRITE_FRAGMENT = """\
P_var = slot[SLOT]
if P_var is None:
    P_var = slot[SLOT] = P_Var()
for P_writer_tid, P_write_time in P_var.writes._times.items():
    if P_writer_tid != tid and P_write_time > times_get(P_writer_tid, 0):
        P_previous = P_var.last_writes.get(P_writer_tid)
        if P_previous is not None:
            P_report(packed, P_previous, i)
for P_reader_tid, P_read_time in P_var.reads._times.items():
    if P_reader_tid != tid and P_read_time > times_get(P_reader_tid, 0):
        P_previous = P_var.last_reads.get(P_reader_tid)
        if P_previous is not None:
            P_report(packed, P_previous, i)
P_var.writes.set_time(tid, my_time)
P_var.last_writes[tid] = i
"""


def _fingerprint_var(var: "_VarState | None", canon) -> tuple | None:
    """Canonical form of one per-address state (block-summary hook)."""
    if var is None:
        return None
    return (
        tuple(sorted(var.reads._times.items())),
        tuple(sorted(var.writes._times.items())),
        tuple(sorted(
            (tid, canon(row)) for tid, row in var.last_writes.items()
        )),
        tuple(sorted(
            (tid, canon(row)) for tid, row in var.last_reads.items()
        )),
    )


def _shift_var(var: "_VarState", lo: int, hi: int, delta: int) -> "_VarState":
    """Shift stored row refs in ``[lo, hi)`` by ``delta`` (in place)."""
    for refs in (var.last_writes, var.last_reads):
        for tid, row in refs.items():
            if lo <= row < hi:
                refs[tid] = row + delta
    return var


class DjitDetector:
    """Vector-clock happens-before race detector (Djit+)."""

    name = "djit+"

    #: Event kinds this detector consumes (see Listener.interests).
    interests = (ReadEvent, WriteEvent, LockEvent, UnlockEvent,
                 ForkEvent, JoinEvent)

    def __init__(self) -> None:
        self.races = RaceSet()
        self._threads: dict[int, VectorClock] = {}
        self._locks: dict[int, VectorClock] = {}
        self._vars: dict[tuple[int, str, int | None], _VarState] = {}
        self._handlers = {
            ReadEvent: self._on_read,
            WriteEvent: self._on_write,
            LockEvent: self._on_lock,
            UnlockEvent: self._on_unlock,
            ForkEvent: self._on_fork,
            JoinEvent: self._on_join,
        }

    def _clock(self, tid: int) -> VectorClock:
        clock = self._threads.get(tid)
        if clock is None:
            clock = VectorClock({tid: 1})
            self._threads[tid] = clock
        return clock

    def on_event(self, event: Event) -> None:
        handler = self._handlers.get(event.__class__)
        if handler is not None:
            handler(event)

    def _on_lock(self, event: LockEvent) -> None:
        lock_clock = self._locks.get(event.obj)
        if lock_clock is not None:
            self._clock(event.thread_id).join(lock_clock)

    def _on_unlock(self, event: UnlockEvent) -> None:
        clock = self._clock(event.thread_id)
        self._locks[event.obj] = clock.snapshot()
        clock.tick(event.thread_id)

    def _on_fork(self, event: ForkEvent) -> None:
        parent = self._clock(event.thread_id)
        self._clock(event.child_thread).join(parent)
        parent.tick(event.thread_id)

    def _on_join(self, event: JoinEvent) -> None:
        self._clock(event.thread_id).join(self._clock(event.child_thread))
        self._clock(event.child_thread).tick(event.child_thread)

    # ------------------------------------------------------------------

    def _on_read(self, event: ReadEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.get(event.address())
        if var is None:
            var = self._vars[event.address()] = _VarState()
        time_of = clock.time_of
        # A read races with every write not ordered before us.
        for writer_tid, write_time in var.writes.items():
            if writer_tid != tid and write_time > time_of(writer_tid):
                previous = var.last_writes.get(writer_tid)
                if previous is not None:
                    self._report(event, previous, event)
        var.reads.set_time(tid, time_of(tid))
        var.last_reads[tid] = event

    def _on_write(self, event: WriteEvent) -> None:
        tid = event.thread_id
        clock = self._clock(tid)
        var = self._vars.get(event.address())
        if var is None:
            var = self._vars[event.address()] = _VarState()
        time_of = clock.time_of
        for writer_tid, write_time in var.writes.items():
            if writer_tid != tid and write_time > time_of(writer_tid):
                previous = var.last_writes.get(writer_tid)
                if previous is not None:
                    self._report(event, previous, event)
        for reader_tid, read_time in var.reads.items():
            if reader_tid != tid and read_time > time_of(reader_tid):
                previous = var.last_reads.get(reader_tid)
                if previous is not None:
                    self._report(event, previous, event)
        var.writes.set_time(tid, time_of(tid))
        var.last_writes[tid] = event

    # ------------------------------------------------------------------
    # Sweep-engine pass protocol (see analysis/sweep.py and DESIGN.md §9).

    def kernel_spec(self, packed) -> KernelSpec:
        return KernelSpec(
            needs_clock=True,
            fragments={OP_READ: _READ_FRAGMENT, OP_WRITE: _WRITE_FRAGMENT},
            env={"Var": _VarState, "report": self._report_rows},
            summary=SummarySpec(
                fingerprint_entry=_fingerprint_var,
                shift_entry=_shift_var,
                fingerprint_extra=self._summary_extra,
                counters=self._summary_counters,
                scale=self._summary_scale,
            ),
        )

    # Block-summary hooks (see SummarySpec / DESIGN.md §13).

    def _summary_extra(self, touched, canon) -> int:
        return len(self.races._seen)

    def _summary_counters(self) -> tuple:
        return (self.races.dynamic_count,)

    def _summary_scale(self, deltas, times) -> None:
        self.races.dynamic_count += deltas[0] * times

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch-consume rows of a :class:`PackedTrace`.

        Runs as a singleton sweep of the fused analysis engine, with
        the full-vector-clock access rules from the fragments above.
        Do not mix packed and object feeding on one detector instance.
        """
        run_sweep((self,), packed, start=start, stop=stop)

    def _report_rows(self, packed, prev_row: int, cur_row: int) -> None:
        """Report a race between two packed access rows (cold path)."""
        class_name = packed.strtab[packed.cls[cur_row]]
        field_name = packed.strtab[packed.fld[cur_row]]
        if self.races.count_duplicate(
            class_name, field_name, packed.node[prev_row], packed.node[cur_row]
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=class_name,
                field_name=field_name,
                address=packed.address_at(cur_row),
                first=AccessInfo.from_packed_row(packed, prev_row),
                second=AccessInfo.from_packed_row(packed, cur_row),
            )
        )

    def _report(
        self, event: AccessEvent, previous: AccessEvent, current: AccessEvent
    ) -> None:
        if self.races.count_duplicate(
            event.class_name, event.field_name, previous.node_id, current.node_id
        ):
            return
        self.races.add(
            RaceRecord(
                detector=self.name,
                class_name=event.class_name,
                field_name=event.field_name,
                address=event.address(),
                first=AccessInfo.from_event(previous),
                second=AccessInfo.from_event(current),
            )
        )


__all__ = ["DjitDetector"]
