"""Access paths rooted at the paper's synthesized ``I`` variables.

Section 3.2 of the paper rewrites each library method so the receiver and
every parameter are captured in fresh variables ``I_i`` at entry; the
``src`` operator then names any object the method touches as a field path
rooted at one of these, e.g. ``I1.x.o``.  An :class:`AccessPath` is our
representation of such a name:

* root ``RECEIVER`` (the paper's ``I_this``) — the invocation's receiver,
* root ``i >= 1`` — the i-th parameter,
* root ``RETURN`` (the paper's ``I_r``) — the value returned to the
  client (used by the *return* rule of Fig. 9).

Paths are immutable and hashable so they can key the context-derivation
tables.  The absence of a path (the paper's ⊥) is represented as None
throughout the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Root index of the receiver (the paper's ``I_this``).
RECEIVER = 0

#: Root index of the returned value (the paper's ``I_r``).
RETURN = -1


@dataclass(frozen=True)
class AccessPath:
    """A field path rooted at a synthesized ``I`` variable.

    Attributes:
        root: RECEIVER, RETURN, or a 1-based parameter index.
        fields: the field names walked from the root, in order.
    """

    root: int
    fields: tuple[str, ...] = ()

    def dot(self, field_name: str) -> "AccessPath":
        """The paper's ``⊕``: append one field to the path."""
        return AccessPath(self.root, self.fields + (field_name,))

    def owner(self) -> "AccessPath":
        """The path to the object owning the final field.

        Only valid for non-empty paths (``I1.x.o`` -> ``I1.x``).
        """
        if not self.fields:
            raise ValueError(f"{self} has no owner prefix")
        return AccessPath(self.root, self.fields[:-1])

    def last_field(self) -> str:
        if not self.fields:
            raise ValueError(f"{self} names a root, not a field")
        return self.fields[-1]

    def prefixes(self) -> list["AccessPath"]:
        """All proper prefixes, longest first (for prefix fallback, §4)."""
        return [
            AccessPath(self.root, self.fields[:k])
            for k in range(len(self.fields) - 1, -1, -1)
        ]

    @property
    def depth(self) -> int:
        return len(self.fields)

    def is_receiver_root(self) -> bool:
        return self.root == RECEIVER

    def is_return_root(self) -> bool:
        return self.root == RETURN

    def __str__(self) -> str:
        if self.root == RECEIVER:
            name = "Ithis"
        elif self.root == RETURN:
            name = "Iret"
        else:
            name = f"I{self.root}"
        return ".".join([name, *self.fields])


def receiver_path(*fields: str) -> AccessPath:
    """Convenience constructor: a path rooted at the receiver."""
    return AccessPath(RECEIVER, tuple(fields))


def param_path(index: int, *fields: str) -> AccessPath:
    """Convenience constructor: a path rooted at parameter ``index``."""
    if index < 1:
        raise ValueError("parameter indices are 1-based")
    return AccessPath(index, tuple(fields))


def return_path(*fields: str) -> AccessPath:
    """Convenience constructor: a path rooted at the return value."""
    return AccessPath(RETURN, tuple(fields))
