"""Stage 1 of Narada: analysis of sequential execution traces (§3.1-3.2).

Also home of the fused sweep engine (:mod:`repro.analysis.sweep`) that
runs every packed-trace analysis pass — detectors, probes, coverage,
lock-order — in a single decoded traversal.
"""

from repro.analysis.analyzer import SequentialTraceAnalyzer, analyze_traces
from repro.analysis.sweep import (
    AnalysisPass,
    KernelSpec,
    UnknownPassError,
    interest_union,
    memo_key,
    registered_passes,
    resolve_pass,
    run_sweep,
)
from repro.analysis.model import (
    AccessRecord,
    AnalysisResult,
    MethodSummary,
    WriteableEntry,
)
from repro.analysis.paths import (
    RECEIVER,
    RETURN,
    AccessPath,
    param_path,
    receiver_path,
    return_path,
)

__all__ = [
    "RECEIVER",
    "RETURN",
    "AccessPath",
    "AccessRecord",
    "AnalysisPass",
    "AnalysisResult",
    "KernelSpec",
    "MethodSummary",
    "SequentialTraceAnalyzer",
    "UnknownPassError",
    "WriteableEntry",
    "analyze_traces",
    "interest_union",
    "memo_key",
    "param_path",
    "receiver_path",
    "registered_passes",
    "resolve_pass",
    "return_path",
    "run_sweep",
]
