"""Stage 1 of Narada: analysis of sequential execution traces (§3.1-3.2)."""

from repro.analysis.analyzer import SequentialTraceAnalyzer, analyze_traces
from repro.analysis.model import (
    AccessRecord,
    AnalysisResult,
    MethodSummary,
    WriteableEntry,
)
from repro.analysis.paths import (
    RECEIVER,
    RETURN,
    AccessPath,
    param_path,
    receiver_path,
    return_path,
)

__all__ = [
    "RECEIVER",
    "RETURN",
    "AccessPath",
    "AccessRecord",
    "AnalysisResult",
    "MethodSummary",
    "SequentialTraceAnalyzer",
    "WriteableEntry",
    "analyze_traces",
    "param_path",
    "receiver_path",
    "return_path",
]
