"""The Access Analyzer: Fig. 7 + Fig. 9 of the paper over concrete traces.

The paper evaluates its inference rules over a three-address trace with a
*symbolic* heap ``H`` because the rules are stated statically.  Our traces
carry concrete object references, which lets us realize the same
abstraction directly (and exactly as the paper's implementation does —
§4 describes the same lazy bootstrapping):

* **R bootstrapping / controllability** — at each client invocation the
  receiver and reference arguments become controllable (C); an object
  first seen as the value of a field *read from a controllable owner*
  lazily inherits C ("for an unseen variable, we assign the flags based
  on its owner state", §4); objects allocated inside library code during
  the invocation are not controllable (NC), which includes everything
  ``rand()`` produces.
* **aliasing / bind** — two paths alias iff they reach the same concrete
  reference; field writes update a shadow field graph so later ``src``
  queries see current aliasing, exactly like the paper's deep ``bind``.
* **src** — breadth-first search from the invocation's ``I`` roots
  (receiver, parameters) through the shadow field graph to the queried
  object; ties prefer the receiver and then lower parameter indices.
* **A / unprotected / writeable** — per Fig. 7: a read is unprotected
  iff its owner is controllable and the accessing thread does not hold
  the owner's monitor; a write additionally is *writeable* iff both the
  owner and the written value are controllable references.
* **D / return rule** — per Fig. 9: writes record ``src(owner)⊕f ↢
  src(value)``; returns record ``Iret.p ↢ src(content)`` for every
  controllable field path of the returned object.

Each client invocation is summarized independently (the *invoke* rule
starts from an empty abstraction), so controllability never leaks
between invocations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.model import (
    AccessRecord,
    AnalysisResult,
    MethodSummary,
    WriteableEntry,
)
from repro.analysis.paths import RETURN, AccessPath, RECEIVER
from repro.runtime.values import ObjRef, Value

if TYPE_CHECKING:
    from repro.trace.columnar import PackedTrace
from repro.trace.events import (
    AllocEvent,
    Event,
    FaultEvent,
    InvokeEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    WriteEvent,
)

#: Bound on the BFS depth of ``src`` queries and on the field paths
#: enumerated by the return rule.
MAX_PATH_DEPTH = 8
RETURN_RULE_DEPTH = 3


@dataclass
class _Segment:
    """Open state while scanning the events of one client invocation."""

    summary: MethodSummary
    call_index: int
    #: I-variable roots: root index -> concrete heap ref.
    roots: dict[int, int] = field(default_factory=dict)
    #: Runtime class of each I root (for owner-class chains).
    root_classes: dict[int, str] = field(default_factory=dict)
    #: Controllability flags per heap ref (True = C).  Lazily grown.
    controllable: dict[int, bool] = field(default_factory=dict)
    #: Shadow field graph: owner ref -> {field name -> value}.
    fields: dict[int, dict[str, Value]] = field(default_factory=dict)

    def flag(self, ref: int) -> bool:
        """Controllability of a ref; unseen objects default to NC."""
        return self.controllable.get(ref, False)

    def set_field(self, owner: int, field_name: str, value: Value) -> None:
        self.fields.setdefault(owner, {})[field_name] = value

    def src(self, target: int) -> AccessPath | None:
        """Shortest I-rooted path reaching ``target`` (the paper's src).

        Returns None (the paper's ⊥) when the object is not reachable
        from the invocation's receiver or parameters.
        """
        found = self.src_with_classes(target)
        return found[0] if found else None

    def src_with_classes(
        self, target: int
    ) -> tuple[AccessPath, tuple[str, ...]] | None:
        """Like :meth:`src`, also returning the runtime classes of the
        objects along the path (root object first, target last)."""
        starts: list[tuple[int, AccessPath]] = []
        if RECEIVER in self.roots:
            starts.append((self.roots[RECEIVER], AccessPath(RECEIVER)))
        for index in sorted(k for k in self.roots if k > 0):
            starts.append((self.roots[index], AccessPath(index)))

        queue: deque[tuple[int, AccessPath, tuple[str, ...]]] = deque()
        seen: set[int] = set()
        for ref, path in starts:
            classes = (self.root_classes.get(path.root, "?"),)
            if ref == target:
                return path, classes
            if ref not in seen:
                seen.add(ref)
                queue.append((ref, path, classes))
        while queue:
            ref, path, classes = queue.popleft()
            if path.depth >= MAX_PATH_DEPTH:
                continue
            for field_name, value in self.fields.get(ref, {}).items():
                if not isinstance(value, ObjRef):
                    continue
                extended = classes + (value.class_name,)
                if value.ref == target:
                    return path.dot(field_name), extended
                if value.ref not in seen:
                    seen.add(value.ref)
                    queue.append((value.ref, path.dot(field_name), extended))
        return None


class SequentialTraceAnalyzer:
    """Turns sequential seed traces into per-invocation method summaries."""

    def __init__(self, strict_unprotected: bool = False) -> None:
        """
        Args:
            strict_unprotected: ablation switch.  The paper deliberately
                treats an access as unprotected whenever the *owner's*
                monitor is not held, even if some other lock is (§1, §4:
                "even if a lock is held ... our definition identifies the
                potential for a race when the lock objects differ").
                With strict_unprotected=True, holding *any* lock
                protects an access — which blinds the analysis to the
                wrong-mutex bugs of C1/C2.
        """
        self._result = AnalysisResult()
        self._strict_unprotected = strict_unprotected

    def _is_unprotected(self, owner_controllable: bool, obj: int,
                        locks_held: frozenset[int]) -> bool:
        if not owner_controllable:
            return False
        if self._strict_unprotected:
            return not locks_held
        return obj not in locks_held

    def analyze(self, trace: "Trace | PackedTrace") -> AnalysisResult:
        """Analyze one sequential trace; may be called repeatedly.

        Accepts the classic :class:`Trace` or a columnar
        :class:`~repro.trace.columnar.PackedTrace` — only iteration and
        ``test_name`` are used, and the packed lazy view reconstructs
        events equal to the recorded ones.
        """
        segment: _Segment | None = None
        ordinal = 0
        for event in trace:
            if isinstance(event, InvokeEvent) and event.from_client:
                if segment is None:
                    segment = self._open_segment(event, trace.test_name, ordinal)
                    ordinal += 1
                continue
            if segment is None:
                continue
            if isinstance(event, AllocEvent):
                # Fig. 7 alloc rule: library-allocated objects are NC.
                segment.controllable.setdefault(event.ref, not event.in_library)
            elif isinstance(event, ReadEvent):
                self._apply_read(segment, event)
            elif isinstance(event, WriteEvent):
                self._apply_write(segment, event)
            elif isinstance(event, ReturnEvent):
                if event.to_client and event.returning_call_index == segment.call_index:
                    self._apply_return(segment, event)
                    self._result.summaries.append(segment.summary)
                    segment = None
            elif isinstance(event, FaultEvent):
                segment.summary.faulted = True
                self._result.summaries.append(segment.summary)
                segment = None
        if segment is not None:
            # Trace ended mid-invocation (timeout); keep what we learned.
            segment.summary.faulted = True
            self._result.summaries.append(segment.summary)
        return self._result

    def analyze_all(self, traces: "list[Trace | PackedTrace]") -> AnalysisResult:
        for trace in traces:
            self.analyze(trace)
        return self._result

    @property
    def result(self) -> AnalysisResult:
        return self._result

    # ------------------------------------------------------------------
    # Rules.

    def _open_segment(
        self, event: InvokeEvent, test_name: str, ordinal: int
    ) -> _Segment:
        arg_refs = tuple(
            a.ref if isinstance(a, ObjRef) else None for a in event.args
        )
        summary = MethodSummary(
            test_name=test_name,
            ordinal=ordinal,
            class_name=event.class_name,
            method=event.method,
            is_constructor=event.is_constructor,
            receiver_ref=event.receiver,
            arg_refs=arg_refs,
            arg_classes=tuple(
                a.class_name if isinstance(a, ObjRef) else None for a in event.args
            ),
            invoke_label=event.label,
        )
        segment = _Segment(summary=summary, call_index=event.new_call_index)
        # R bootstrapping: receiver and reference arguments are C.
        segment.roots[RECEIVER] = event.receiver
        segment.root_classes[RECEIVER] = event.class_name
        segment.controllable[event.receiver] = True
        for index, (ref, cls) in enumerate(
            zip(arg_refs, summary.arg_classes), start=1
        ):
            if ref is not None:
                segment.roots[index] = ref
                segment.root_classes[index] = cls or "?"
                segment.controllable[ref] = True
        return segment

    def _apply_read(self, segment: _Segment, event: ReadEvent) -> None:
        owner_c = segment.flag(event.obj)
        # Lazy R: the value of a field read from a controllable owner
        # inherits controllability.
        if isinstance(event.value, ObjRef):
            segment.controllable.setdefault(event.value.ref, owner_c)
        found = segment.src_with_classes(event.obj)
        owner_path, owner_classes = found if found else (None, None)
        access_path = owner_path.dot(event.field_name) if owner_path else None
        unprotected = self._is_unprotected(owner_c, event.obj, event.locks_held)
        segment.set_field(event.obj, event.field_name, event.value)

        summary = segment.summary
        summary.access_projection[event.label] = (False, unprotected)
        summary.summaries[event.label] = {(None, access_path)}
        summary.accesses.append(
            AccessRecord(
                label=event.label,
                node_id=event.node_id,
                kind="R",
                class_name=event.class_name,
                field_name=event.field_name,
                access_path=access_path,
                owner_classes=owner_classes,
                unprotected=unprotected,
                writeable=False,
                in_constructor=event.in_constructor,
                value_is_ref=isinstance(event.value, ObjRef),
            )
        )

    def _apply_write(self, segment: _Segment, event: WriteEvent) -> None:
        owner_c = segment.flag(event.obj)
        value_c = isinstance(event.value, ObjRef) and segment.flag(event.value.ref)
        # src is evaluated on the pre-write heap (the paper computes D
        # before bind re-establishes aliasing).
        found = segment.src_with_classes(event.obj)
        owner_path, owner_classes = found if found else (None, None)
        value_path = (
            segment.src(event.value.ref) if isinstance(event.value, ObjRef) else None
        )
        access_path = owner_path.dot(event.field_name) if owner_path else None
        segment.set_field(event.obj, event.field_name, event.value)

        writeable = owner_c and value_c
        unprotected = self._is_unprotected(owner_c, event.obj, event.locks_held)
        summary = segment.summary
        summary.access_projection[event.label] = (writeable, unprotected)
        summary.summaries[event.label] = {(access_path, value_path)}
        summary.accesses.append(
            AccessRecord(
                label=event.label,
                node_id=event.node_id,
                kind="W",
                class_name=event.class_name,
                field_name=event.field_name,
                access_path=access_path,
                owner_classes=owner_classes,
                unprotected=unprotected,
                writeable=writeable,
                in_constructor=event.in_constructor,
                value_is_ref=isinstance(event.value, ObjRef),
            )
        )
        if writeable and access_path is not None and value_path is not None:
            summary.writeables.append(
                WriteableEntry(
                    lhs=access_path, rhs=value_path, label=event.label, via="write"
                )
            )

    def _apply_return(self, segment: _Segment, event: ReturnEvent) -> None:
        """Fig. 9 return rule: expose controllable state of the result."""
        if not isinstance(event.value, ObjRef):
            return
        summary = segment.summary
        summary.return_class = event.value.class_name
        entries: set[tuple[AccessPath | None, AccessPath | None]] = set()

        # Degenerate case: the returned object itself is client-known.
        self_src = segment.src(event.value.ref)
        if self_src is not None:
            entries.add((AccessPath(RETURN), self_src))

        for path, content_ref in self._reachable_paths(segment, event.value.ref):
            if not segment.flag(content_ref):
                continue
            content_src = segment.src(content_ref)
            if content_src is None:
                continue
            ret_path = AccessPath(RETURN, path)
            entries.add((ret_path, content_src))
            summary.writeables.append(
                WriteableEntry(
                    lhs=ret_path, rhs=content_src, label=event.label, via="return"
                )
            )
        if entries:
            summary.access_projection[event.label] = (True, False)
            summary.summaries[event.label] = entries

    @staticmethod
    def _reachable_paths(segment: _Segment, root: int):
        """Field paths (depth-limited, cycle-safe) from ``root`` through
        the shadow field graph, yielding (path, content ref)."""
        results: list[tuple[tuple[str, ...], int]] = []
        stack: list[tuple[int, tuple[str, ...]]] = [(root, ())]
        visited: set[int] = {root}
        while stack:
            ref, path = stack.pop()
            if len(path) >= RETURN_RULE_DEPTH:
                continue
            for field_name, value in segment.fields.get(ref, {}).items():
                if not isinstance(value, ObjRef):
                    continue
                new_path = path + (field_name,)
                results.append((new_path, value.ref))
                if value.ref not in visited:
                    visited.add(value.ref)
                    stack.append((value.ref, new_path))
        return results


def analyze_traces(traces: "list[Trace | PackedTrace]") -> AnalysisResult:
    """Analyze sequential seed traces into method summaries."""
    return SequentialTraceAnalyzer().analyze_all(traces)
