"""Data model produced by the sequential-trace analysis.

One :class:`MethodSummary` is produced per *client invocation* in the
seed trace (the paper analyzes each client invocation against a fresh
heap abstraction, Fig. 7 *invoke* rule).  A summary carries:

* ``accesses`` — every field access the invocation performed, with its
  resolved access path, and the paper's *writeable*/*unprotected* bits,
* ``writeables`` — the entries of ``D`` usable for context derivation:
  "calling this method assigns the object named by ``rhs`` into the
  location named by ``lhs``",
* ``A``/``D`` — the raw per-label projections, kept for fidelity with
  the paper's worked examples (§3.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.paths import AccessPath


@dataclass(frozen=True)
class AccessRecord:
    """One dynamic field access observed during a client invocation.

    Attributes:
        label: dynamic trace label.
        node_id: static site.
        kind: "R" or "W".
        class_name: runtime class of the accessed object.
        field_name: accessed field ("elem" for array slots).
        access_path: ``src(owner) ⊕ field`` — the client-relative name of
            the access, or None when the owner is not reachable from the
            invocation's receiver/parameters (the paper's ⊥).
        owner_classes: runtime classes of the objects along the owner
            chain of ``access_path`` (root object first, the accessed
            owner last); None iff ``access_path`` is None.  The context
            deriver uses these to type intermediate setter goals.
        unprotected: owner controllable and its monitor not held (§3.1).
        writeable: write with controllable owner and controllable value.
        in_constructor: access happened under a constructor frame
            (discarded when building racing pairs, §4).
        value_is_ref: the accessed value is an object reference.
    """

    label: int
    node_id: int
    kind: str
    class_name: str
    field_name: str
    access_path: AccessPath | None
    owner_classes: tuple[str, ...] | None
    unprotected: bool
    writeable: bool
    in_constructor: bool
    value_is_ref: bool

    @property
    def is_write(self) -> bool:
        return self.kind == "W"

    def field_id(self) -> tuple[str, str]:
        """Static identity of the accessed field."""
        return (self.class_name, self.field_name)

    def describe(self) -> str:
        lock = "unprot" if self.unprotected else "prot"
        path = str(self.access_path) if self.access_path else "⊥"
        return (
            f"{self.kind} {self.class_name}.{self.field_name} ({path}, {lock})"
            f"{' [ctor]' if self.in_constructor else ''}"
        )


@dataclass(frozen=True)
class WriteableEntry:
    """A ``D`` entry usable for context setting: ``lhs ↢ rhs``.

    Invoking the summarized method assigns the object the client passes
    at ``rhs`` into the location ``lhs``.  ``via`` records whether the
    entry came from a *write* inside the method or from the *return*
    rule (the client obtains an object whose ``lhs`` field is the
    argument named by ``rhs``).
    """

    lhs: AccessPath
    rhs: AccessPath
    label: int
    via: str  # "write" | "return"


@dataclass
class MethodSummary:
    """Everything learned from one client invocation in a seed trace."""

    test_name: str
    ordinal: int
    """Index of this invocation among the trace's client invocations."""
    class_name: str
    method: str
    is_constructor: bool
    receiver_ref: int
    arg_refs: tuple[int | None, ...]
    """Heap refs of reference-typed arguments (None for primitives)."""
    arg_classes: tuple[str | None, ...] = ()
    """Runtime classes of reference arguments (None for primitives)."""
    return_class: str | None = None
    """Runtime class of the returned object, when a reference."""
    invoke_label: int = -1
    accesses: list[AccessRecord] = field(default_factory=list)
    writeables: list[WriteableEntry] = field(default_factory=list)
    access_projection: dict[int, tuple[bool, bool]] = field(default_factory=dict)
    """The paper's ``A``: label -> (writeable, unprotected)."""
    summaries: dict[int, set[tuple[AccessPath | None, AccessPath | None]]] = field(
        default_factory=dict
    )
    """The paper's ``D``: label -> set of (lhs, rhs) path pairs."""
    faulted: bool = False

    def method_id(self) -> tuple[str, str]:
        return (self.class_name, self.method)

    def unprotected_accesses(self) -> list[AccessRecord]:
        """Unprotected, non-constructor accesses (pair-generation input)."""
        return [
            a
            for a in self.accesses
            if a.unprotected and not a.in_constructor
        ]

    def describe(self) -> str:
        head = f"{self.class_name}.{self.method} (test {self.test_name}, #{self.ordinal})"
        lines = [head]
        for access in self.accesses:
            lines.append(f"  {access.describe()}")
        for entry in self.writeables:
            lines.append(f"  set {entry.lhs} <- {entry.rhs} [{entry.via}]")
        return "\n".join(lines)


@dataclass
class AnalysisResult:
    """All method summaries extracted from one or more seed traces."""

    summaries: list[MethodSummary] = field(default_factory=list)

    def __iter__(self):
        return iter(self.summaries)

    def __len__(self) -> int:
        return len(self.summaries)

    def for_method(self, class_name: str, method: str) -> list[MethodSummary]:
        return [
            s
            for s in self.summaries
            if s.class_name == class_name and s.method == method
        ]

    def for_class(self, class_name: str) -> list[MethodSummary]:
        return [s for s in self.summaries if s.class_name == class_name]

    def methods_seen(self) -> set[tuple[str, str]]:
        return {s.method_id() for s in self.summaries}

    def all_accesses(self) -> list[tuple[MethodSummary, AccessRecord]]:
        return [(s, a) for s in self.summaries for a in s.accesses]

    def all_writeables(self) -> list[tuple[MethodSummary, WriteableEntry]]:
        return [(s, w) for s in self.summaries for w in s.writeables]

    def merge(self, other: "AnalysisResult") -> "AnalysisResult":
        return AnalysisResult(self.summaries + other.summaries)
