"""The fused single-sweep analysis engine over packed traces.

Every packed-trace consumer — the race detectors, the adjacency and
coverage probes, the GoodLock lock-order analysis — used to carry its
own hand-rolled ``feed_packed`` loop: k passes over a trace meant k
copies of the opcode dispatch, the column indexing, and the per-thread
clock caching.  This module replaces them with **one** sweep driver
that decodes each row once and dispatches to every registered pass.

Architecture (DESIGN.md §9):

* An **analysis pass** is any object with a ``name``, a declared
  ``interests`` tuple of event classes (the same attribute the live
  listener protocol uses), and a ``kernel_spec(packed)`` method
  returning a :class:`KernelSpec`.  Passes keep their results on the
  instance (``races``, ``confirmed``, ``units``, ...) or expose them
  via ``finish()``.
* A :class:`KernelSpec` describes how the pass consumes rows: either
  **source fragments** (per-opcode Python statements, inlined into a
  generated sweep function) or **handlers** (per-opcode callables, for
  cold passes where codegen is not worth it).  Fragments of every pass
  in a sweep are fused into a single generated loop — one opcode
  branch, one ``tid``/``adr`` decode, one clock lookup per row — and
  compiled once per pass-class tuple.
* Passes that need happens-before clocks (``needs_clock``) share one
  clock store per sweep: FastTrack and Djit+ evolve identical thread
  and lock clocks, so the fused sweep maintains them once.
* Fragment passes that key state on the access address share one
  per-address **slot list**: the driver resolves ``adr`` to a slot
  once and each pass reads ``slot[k]``, replacing k per-pass dict
  lookups with one.

Fragment contract: placeholder ``P_`` prefixes are rewritten to a
per-pass prefix, ``SLOT`` to the pass's slot index, and ``OP_*`` tokens
to their opcode literals.  Fragments may use the shared driver locals
``i``, ``tid``, ``adr``, ``my_time`` (access rows of clocked sweeps),
``clock``, ``times_get``, ``packed``, and any column local they
mention (``ops``, ``tids``, ``nodes``, ``lcks``, ``locktab``, ...).
The fragment/handler opcode set and the fragment text must be a
function of the pass *class* (kernels are cached per class tuple);
per-instance state enters through :attr:`KernelSpec.env`.

Determinism: a fused sweep produces bit-identical per-pass results to
running each pass standalone — pass states are disjoint (the shared
clock store is an identical-evolution merge, not an approximation) —
and the standalone sweep is bit-identical to the old per-detector
loops (gated by tests/detect/test_packed_equivalence.py and
tests/analysis/test_sweep_engine.py).
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass, field

# NB: VectorClock is imported lazily inside kernel compilation; importing
# repro.detect here would cycle (the detectors import this module).

__all__ = [
    "AnalysisPass",
    "KernelSpec",
    "SummarySpec",
    "SweepStats",
    "UnknownPassError",
    "create_pass",
    "interest_union",
    "memo_key",
    "register_pass",
    "registered_passes",
    "resolve_pass",
    "run_sweep",
]


@dataclass
class SummarySpec:
    """How one pass's state is summarized across a repeated block.

    The block-skipping sweep (DESIGN.md §13) replays the first two
    occurrences of a :class:`~repro.trace.compressed.RepeatSeg`, takes
    a canonical fingerprint of every pass's touched state after each,
    and — when the fingerprints agree — applies the second
    occurrence's counter deltas ``count - 2`` times and shifts stored
    row references into the final occurrence instead of replaying.  A
    pass opts in by attaching a ``SummarySpec`` to its
    :class:`KernelSpec`; **any pass without one forces row-at-a-time
    replay of every repeat block** (the sound default for passes the
    engine cannot reason about, e.g. full-event handler passes).

    The contract a summarizable pass promises (soundness rules in
    DESIGN.md §13): its per-row transition is a deterministic function
    of (a) state reachable through the fingerprint, (b) signature
    columns of the current row and of rows at stored references, and
    (c) *order* comparisons between stored references; values and
    labels may be read only on paths that grow a fingerprinted
    aggregate (e.g. recording a statically new race).

    ``fingerprint_entry``/``shift_entry`` handle the pass's entry in
    the shared per-address slot list; ``fingerprint_extra`` covers any
    non-slot state (aggregate lengths, per-thread structures).  The
    ``canon`` callable passed in maps a stored row reference to a
    window-relative form (refs inside the just-replayed occurrence
    compare by offset, refs outside by absolute row).
    """

    #: ``(entry, canon) -> comparable`` for this pass's slot entry
    #: (``entry`` may be None); omit for passes without slot state.
    fingerprint_entry: object | None = None
    #: ``(entry, lo, hi, delta) -> entry`` returning the entry with
    #: every row reference in ``[lo, hi)`` shifted by ``delta`` (may
    #: mutate and return the same object).
    shift_entry: object | None = None
    #: ``(touched, canon) -> comparable`` for non-slot state; receives
    #: the block's touched-ID sets (``touched.tids`` etc.).
    fingerprint_extra: object | None = None
    #: ``(touched, lo, hi, delta) -> None`` shifting non-slot row refs.
    shift_extra: object | None = None
    #: ``() -> tuple[int, ...]`` of linearly-accumulating counters
    #: (e.g. ``races.dynamic_count``) scaled on skip.
    counters: object = staticmethod(lambda: ())
    #: ``(deltas, times) -> None`` applying ``times`` more occurrences'
    #: worth of counter deltas.
    scale: object = staticmethod(lambda deltas, times: None)


@dataclass
class SweepStats:
    """Per-sweep accounting for ``--trace-stats`` and benchmarks."""

    rows_total: int = 0
    #: Rows actually pushed through the kernel.
    rows_executed: int = 0
    #: Rows covered by applying a converged block summary instead.
    rows_skipped: int = 0
    repeat_blocks: int = 0
    blocks_summarized: int = 0
    blocks_replayed: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.rows_total += other.rows_total
        self.rows_executed += other.rows_executed
        self.rows_skipped += other.rows_skipped
        self.repeat_blocks += other.repeat_blocks
        self.blocks_summarized += other.blocks_summarized
        self.blocks_replayed += other.blocks_replayed


@dataclass
class KernelSpec:
    """How one pass plugs into the fused sweep.

    Exactly the per-sweep inputs: ``fragments`` maps opcodes to source
    fragments (see the module docstring for the placeholder contract),
    ``handlers`` maps opcodes to ``fn(i)`` callables for closure-based
    passes, and ``env`` carries the per-instance objects the fragments
    reference (hoisted into locals of the generated function).
    ``summary`` opts the pass into block-skipping over compressed
    traces (see :class:`SummarySpec`); None forces repeat blocks to
    replay row-at-a-time whenever this pass is in the sweep.
    """

    needs_clock: bool = False
    fragments: dict[int, str] = field(default_factory=dict)
    handlers: dict[int, object] = field(default_factory=dict)
    env: dict[str, object] = field(default_factory=dict)
    summary: SummarySpec | None = None


class AnalysisPass:
    """Protocol of a sweep pass (documentation; duck-typed, not enforced).

    Required attributes::

        name: str                      # registry / report name
        interests: tuple[type, ...]    # event classes consumed (listener
                                       # protocol; drives recorder elision)

    Required method::

        def kernel_spec(self, packed) -> KernelSpec: ...

    Optional::

        def finish(self): ...          # return a report fragment
    """


# ----------------------------------------------------------------------
# Registry (entry-point style: passes plug in without touching the
# driver; values are lazily imported "module:attr" strings or classes).

_REGISTRY: dict[str, str | type] = {
    "fasttrack": "repro.detect.fasttrack:FastTrackDetector",
    "eraser": "repro.detect.eraser:EraserDetector",
    "djit+": "repro.detect.djit:DjitDetector",
    "adjacency": "repro.fuzz.probes:AdjacencyProbe",
    "coverage": "repro.fuzz.coverage:InterleavingCoverageProbe",
    "goodlock": "repro.deadlock.goodlock:GoodLockDetector",
    "lockorder": "repro.deadlock.analysis:LockOrderPass",
}


class UnknownPassError(ValueError):
    """An unregistered pass name; the message lists what is registered."""


def register_pass(name: str, entry: str | type) -> None:
    """Register a pass class (or lazy ``"module:attr"`` entry point)."""
    _REGISTRY[name] = entry


def registered_passes() -> list[str]:
    return sorted(_REGISTRY)


def resolve_pass(name: str) -> type:
    """Resolve a registered pass name to its class (lazy import)."""
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(registered_passes())
        raise UnknownPassError(
            f"unknown analysis pass {name!r}; registered passes: {known}"
        )
    if isinstance(entry, str):
        module_name, _, attr = entry.partition(":")
        module = __import__(module_name, fromlist=[attr])
        entry = getattr(module, attr)
        _REGISTRY[name] = entry
    return entry


def create_pass(name: str):
    """Instantiate a registered pass."""
    return resolve_pass(name)()


def interest_union(passes) -> tuple:
    """Union of the passes' declared interests, first-seen order.

    A recorder created with this union triggers the same
    event-construction elision and the same scheduling points as
    attaching the passes as live listeners directly — which is what
    keeps record-then-sweep bit-identical to live listening.  Accepts
    pass instances or classes.
    """
    seen: list = []
    for p in passes:
        for interest in p.interests:
            if interest not in seen:
                seen.append(interest)
    return tuple(seen)


def memo_key(pass_names, packed) -> str:
    """Memo key for the results of sweeping ``passes`` over ``packed``.

    Two runs with equal keys fed the same pass set a byte-identical
    event stream, so the (pure) passes would reproduce exactly the
    memoized results.  Derived from content only — safe across
    processes and schedule orders (see DESIGN.md §8/§9).
    """
    h = hashlib.sha256()
    for name in pass_names:
        h.update(name.encode())
        h.update(b"\x1f")
    h.update(packed.digest().encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Kernel codegen.

#: Opcode literals substituted into fragments (canonical set lives in
#: trace/columnar.py; resolved lazily to avoid an import cycle).
def _op_table() -> dict[str, int]:
    from repro.trace import columnar

    return {
        name: getattr(columnar, name)
        for name in dir(columnar)
        if name.startswith("OP_") and isinstance(getattr(columnar, name), int)
    }


#: Driver locals a fragment may reference, bound from ``packed`` once.
_COLUMN_LOCALS = (
    ("ops", "packed.op"),
    ("tids", "packed.tid"),
    ("xs", "packed.x"),
    ("ys", "packed.y"),
    ("nodes", "packed.node"),
    ("adrs", "packed.adr"),
    ("lcks", "packed.lck"),
    ("clss", "packed.cls"),
    ("flds", "packed.fld"),
    ("locktab", "packed.locktab"),
    ("strtab", "packed.strtab"),
)

#: Shared decode for access rows of a clocked sweep: thread id, cached
#: per-thread clock (``_times`` re-bound only on thread switch; sync
#: blocks invalidate with ``cur_tid = -1`` since they may replace the
#: dict under copy-on-write), local time, and interned address.
_ACCESS_DECODE_CLOCK = """\
tid = tids[i]
if tid != cur_tid:
    clock = threads_get(tid)
    if clock is None:
        clock = threads[tid] = VectorClock({tid: 1})
    cur_tid = tid
    times_get = clock._times.get
my_time = times_get(tid, 0)
adr = adrs[i]
"""

_ACCESS_DECODE_PLAIN = """\
tid = tids[i]
adr = adrs[i]
"""

#: Happens-before clock maintenance, emitted once per sweep when any
#: pass needs clocks (FastTrack and Djit+ evolve identical clocks, so
#: the shared store is exact, not an approximation).
_CLOCK_SYNC = {
    "OP_LOCK": """\
x = xs[i]
_lock_clock = locks_get(x)
if _lock_clock is not None:
    _c = threads_get(tid)
    if _c is None:
        _c = threads[tid] = VectorClock({tid: 1})
    _c.join(_lock_clock)
cur_tid = -1
""",
    "OP_UNLOCK": """\
x = xs[i]
_c = threads_get(tid)
if _c is None:
    _c = threads[tid] = VectorClock({tid: 1})
locks[x] = _c.snapshot()
_c.tick(tid)
cur_tid = -1
""",
    "OP_FORK": """\
x = xs[i]
_parent = threads_get(tid)
if _parent is None:
    _parent = threads[tid] = VectorClock({tid: 1})
_child = threads_get(x)
if _child is None:
    _child = threads[x] = VectorClock({x: 1})
_child.join(_parent)
_parent.tick(tid)
cur_tid = -1
""",
    "OP_JOIN": """\
x = xs[i]
_child = threads_get(x)
if _child is None:
    _child = threads[x] = VectorClock({x: 1})
_self = threads_get(tid)
if _self is None:
    _self = threads[tid] = VectorClock({tid: 1})
_self.join(_child)
_child.tick(x)
cur_tid = -1
""",
}

_OP_TOKEN = re.compile(r"\bOP_[A-Z]+\b")


def _indent(text: str, prefix: str) -> str:
    return "".join(
        prefix + line if line.strip() else line
        for line in text.splitlines(keepends=True)
    )


def _pass_fragments(k: int, spec: KernelSpec, op_values: dict[str, int]):
    """Normalize one pass's spec into {opcode: prefixed fragment}."""
    fragments: dict[int, str] = {}
    for op, frag in spec.fragments.items():
        frag = _OP_TOKEN.sub(lambda m: str(op_values[m.group(0)]), frag)
        fragments[op] = frag.replace("P_", f"p{k}_")
    for op in spec.handlers:
        # Closure passes become a single generated call site.
        fragments[op] = f"p{k}_h{op}(i)\n"
    return fragments


def _compile_kernel(specs: list[KernelSpec], timed: bool, label: str):
    """Generate and compile the fused sweep function for ``specs``."""
    op_values = _op_table()
    op_read, op_write = op_values["OP_READ"], op_values["OP_WRITE"]
    needs_clock = any(s.needs_clock for s in specs)

    per_pass = [_pass_fragments(k, s, op_values) for k, s in enumerate(specs)]
    # Shared per-address slots: one list per address, one index per
    # slot-using pass, resolved once per access row.
    slot_index: dict[int, int] = {}
    for k, fragments in enumerate(per_pass):
        if any("SLOT" in frag for frag in fragments.values()):
            slot_index[k] = len(slot_index)
    n_slots = len(slot_index)

    bodies: dict[int, str] = {}
    all_ops = sorted({op for fragments in per_pass for op in fragments})
    for op in all_ops:
        parts: list[str] = []
        uses_slot = False
        for k, fragments in enumerate(per_pass):
            frag = fragments.get(op)
            if not frag:
                continue
            if "SLOT" in frag:
                uses_slot = True
                frag = frag.replace("SLOT", str(slot_index[k]))
            if timed:
                frag = (
                    "_t0 = _pc()\n" + frag + f"_tacc[{k}] += _pc() - _t0\n"
                )
            parts.append(frag)
        if op in (op_read, op_write):
            decode = _ACCESS_DECODE_CLOCK if needs_clock else _ACCESS_DECODE_PLAIN
            if uses_slot:
                decode += (
                    "slot = slots_get(adr)\n"
                    "if slot is None:\n"
                    f"    slot = slots[adr] = [None] * {n_slots}\n"
                )
        else:
            decode = "tid = tids[i]\n"
        bodies[op] = decode + "".join(parts)
    if needs_clock:
        for op_name, block in _CLOCK_SYNC.items():
            op = op_values[op_name]
            sync = "tid = tids[i]\n" + block
            # Sync first, then any pass fragments already present for
            # this opcode (their decode line is subsumed by the sync's).
            existing = bodies.get(op)
            if existing is not None:
                existing = existing.split("\n", 1)[1]  # drop duplicate decode
                sync += existing
            bodies[op] = sync

    body_text = "".join(
        f"        {'if' if j == 0 else 'elif'} op == {op}:\n"
        + _indent(bodies[op], "            ")
        for j, op in enumerate(sorted(bodies))
    )
    col_lines = "".join(
        f"    {name} = {expr}\n"
        for name, expr in _COLUMN_LOCALS
        if name == "ops" or re.search(rf"\b{name}\b", body_text)
    )
    env_names = [
        f"p{k}_{name}" for k, s in enumerate(specs) for name in s.env
    ] + [f"p{k}_h{op}" for k, s in enumerate(specs) for op in s.handlers]
    env_lines = "".join(f'    {name} = env["{name}"]\n' for name in env_names)
    if n_slots:
        env_lines += '    slots = env["__slots"]\n    slots_get = slots.get\n'
    if needs_clock:
        env_lines += (
            '    threads = env["__threads"]\n'
            "    threads_get = threads.get\n"
            '    locks = env["__locks"]\n'
            "    locks_get = locks.get\n"
            "    cur_tid = -1\n"
            "    times_get = None\n"
            "    clock = None\n"
        )
    if timed:
        env_lines += '    _tacc = env["__timings"]\n    _pc = _perf_counter\n'
    src = (
        "def _sweep(packed, start, stop, env):\n"
        + col_lines
        + env_lines
        + "    for i in range(start, stop):\n"
        "        op = ops[i]\n" + body_text
    )
    from repro.detect.clock import VectorClock

    namespace = {"VectorClock": VectorClock, "_perf_counter": time.perf_counter}
    exec(compile(src, f"<sweep:{label}>", "exec"), namespace)
    return namespace["_sweep"], needs_clock, slot_index


#: Compiled kernels per (pass-class tuple, timed) — specs are required
#: to be class-constant, so one compile serves every instance tuple.
_KERNELS: dict[tuple, tuple] = {}


#: Maximum occurrences of a repeat block replayed while probing for
#: convergence (two consecutive equal fingerprints).  Transients are
#: short in practice — occurrence 1 warms the state, occurrence 2 adds
#: any cross-boundary effects, occurrence 3 confirms — so a small cap
#: bounds wasted replay on genuinely non-convergent blocks.
_PROBE_OCCURRENCES = 4


class _Touched:
    """The ID sets a repeat block's rows can reach in pass state."""

    __slots__ = ("adrs", "tids", "locks")

    def __init__(self, adrs, tids, locks) -> None:
        self.adrs = adrs
        self.tids = tids
        self.locks = locks


def _block_touched(packed, start: int, period: int) -> _Touched:
    """Touched-ID sets over one occurrence (all occurrences agree —
    the signature columns include ``tid``/``adr``/``x``)."""
    from repro.trace.columnar import (
        OP_FORK, OP_JOIN, OP_LOCK, OP_READ, OP_UNLOCK, OP_WRITE,
    )

    ops, tids_col, adrs, xs = packed.op, packed.tid, packed.adr, packed.x
    adrs_set: set[int] = set()
    tids: set[int] = set()
    locks: set[int] = set()
    for i in range(start, start + period):
        op = ops[i]
        tids.add(tids_col[i])
        if op == OP_READ or op == OP_WRITE:
            adrs_set.add(adrs[i])
        elif op == OP_LOCK or op == OP_UNLOCK:
            locks.add(xs[i])
        elif op == OP_FORK or op == OP_JOIN:
            tids.add(xs[i])
    return _Touched(sorted(adrs_set), sorted(tids), sorted(locks))


def _fingerprint(specs, slot_index, env, touched, lo: int, hi: int,
                 needs_clock: bool):
    """Canonical fingerprint of all touched pass state after replaying
    occurrence ``[lo, hi)`` (row refs inside the window compare by
    offset; see :class:`SummarySpec`)."""

    def canon(ref):
        if ref is None:
            return None
        if lo <= ref < hi:
            return ("r", ref - lo)
        return ref

    parts: list = []
    if needs_clock:
        threads = env["__threads"]
        locks = env["__locks"]
        for tid in touched.tids:
            clock = threads.get(tid)
            parts.append(
                None if clock is None else tuple(sorted(clock._times.items()))
            )
        for obj in touched.locks:
            clock = locks.get(obj)
            parts.append(
                None if clock is None else tuple(sorted(clock._times.items()))
            )
    slots = env.get("__slots")
    for k, spec in enumerate(specs):
        summary = spec.summary
        entry_fp = summary.fingerprint_entry
        if entry_fp is not None and k in slot_index:
            index = slot_index[k]
            for adr in touched.adrs:
                slot = slots.get(adr)
                entry = None if slot is None else slot[index]
                parts.append(entry_fp(entry, canon))
        extra_fp = summary.fingerprint_extra
        if extra_fp is not None:
            parts.append(extra_fp(touched, canon))
    return tuple(parts)


def _shift_refs(specs, slot_index, env, touched, lo: int, hi: int,
                delta: int) -> None:
    """Move row refs stored during occurrence ``[lo, hi)`` forward by
    ``delta`` so they land in the block's final occurrence — the rows
    a full replay would have left behind (bit-identical payloads)."""
    slots = env.get("__slots")
    for k, spec in enumerate(specs):
        summary = spec.summary
        shift = summary.shift_entry
        if shift is not None and k in slot_index:
            index = slot_index[k]
            for adr in touched.adrs:
                slot = slots.get(adr)
                if slot is not None and slot[index] is not None:
                    slot[index] = shift(slot[index], lo, hi, delta)
        if summary.shift_extra is not None:
            summary.shift_extra(touched, lo, hi, delta)


def run_sweep(passes, packed, start: int = 0, stop: int | None = None,
              timings: list | None = None,
              stats: SweepStats | None = None) -> SweepStats | None:
    """Decode ``packed`` once, dispatching every row to all ``passes``.

    This is the single site in the codebase that decodes opcode
    columns; ``feed_packed`` on every detector/probe delegates here as
    a singleton sweep.  With ``timings`` (a list), the timed kernel
    variant runs instead and per-pass seconds are written into it —
    the ``--trace-stats`` per-pass attribution.

    ``packed`` may also be a
    :class:`~repro.trace.compressed.CompressedTrace`: the sweep then
    walks its segment plan, replaying literal rows normally and
    summarizing repeat blocks whose per-pass state transform converges
    (two replayed occurrences with equal canonical fingerprints — see
    :class:`SummarySpec` and DESIGN.md §13).  Blocks that fail the
    convergence check, and every block when any pass lacks a
    ``summary``, replay row-at-a-time; results are bit-identical to
    sweeping the underlying packed trace either way.  ``stats``
    receives the block accounting when provided (and is also
    returned).

    Sweep state (the shared slot store, and each clocked pass's clock
    dicts) persists on the pass instances, so repeatedly sweeping the
    same instances over successive traces accumulates state exactly
    like the old per-detector ``feed_packed`` loops did.  Reuse
    instances only across sweeps of the same pass tuple.
    """
    from repro.trace.compressed import CompressedTrace, RepeatSeg

    segments = None
    if isinstance(packed, CompressedTrace):
        segments = packed.segments
        packed = packed.packed

    passes = tuple(passes)
    if not passes:
        return stats
    specs = [p.kernel_spec(packed) for p in passes]
    timed = timings is not None
    key = (tuple(type(p) for p in passes), timed)
    cached = _KERNELS.get(key)
    if cached is None:
        label = "+".join(getattr(p, "name", type(p).__name__) for p in passes)
        cached = _KERNELS[key] = _compile_kernel(specs, timed, label)
    kernel, needs_clock, slot_index = cached

    env: dict[str, object] = {}
    for k, spec in enumerate(specs):
        for name, obj in spec.env.items():
            env[f"p{k}_{name}"] = obj
        for op, handler in spec.handlers.items():
            env[f"p{k}_h{op}"] = handler
    if slot_index:
        holder = next(
            p for p, s in zip(passes, specs)
            if any("SLOT" in f for f in s.fragments.values())
        )
        slots = getattr(holder, "_sweep_slots", None)
        if slots is None:
            slots = {}
            holder._sweep_slots = slots
        env["__slots"] = slots
    if needs_clock:
        clocked = [p for p, s in zip(passes, specs) if s.needs_clock]
        threads, locks = clocked[0]._threads, clocked[0]._locks
        for p in clocked[1:]:
            p._threads = threads
            p._locks = locks
        env["__threads"] = threads
        env["__locks"] = locks
    if timed:
        acc = [0.0] * len(passes)
        env["__timings"] = acc

    stop = len(packed) if stop is None else stop
    if stats is not None:
        stats.rows_total += max(0, stop - start)

    if segments is None:
        kernel(packed, start, stop, env)
        if stats is not None:
            stats.rows_executed += max(0, stop - start)
    else:
        summarizable = all(s.summary is not None for s in specs)
        for seg in segments:
            # Clip the segment plan to the requested row range.
            lo = max(seg.start, start)
            if type(seg) is not RepeatSeg:
                hi = min(seg.stop, stop)
                if lo >= hi:
                    continue
                kernel(packed, lo, hi, env)
                if stats is not None:
                    stats.rows_executed += hi - lo
                continue
            period = seg.period
            hi = min(seg.stop, stop)
            if lo >= hi:
                continue
            count = (hi - lo) // period if lo == seg.start else 0
            if stats is not None and count >= 2:
                stats.repeat_blocks += 1
            if not summarizable or count < 3:
                kernel(packed, lo, hi, env)
                if stats is not None:
                    stats.rows_executed += hi - lo
                    if count >= 2:
                        stats.blocks_replayed += 1
                continue
            # Replay occurrences until two consecutive ones leave the
            # same canonical fingerprint — the transient can span more
            # than one occurrence (e.g. a cross-boundary interleaving
            # unit first forms during occurrence 2) — then apply the
            # converged occurrence's counter deltas to the rest and
            # shift its row refs into the final occurrence.
            touched = _block_touched(packed, lo, period)
            kernel(packed, lo, lo + period, env)
            fp_prev = _fingerprint(
                specs, slot_index, env, touched, lo, lo + period, needs_clock
            )
            c_prev = [spec.summary.counters() for spec in specs]
            converged_at = 0
            probes = min(count - 1, _PROBE_OCCURRENCES)
            for occ in range(2, probes + 1):
                occ_lo = lo + (occ - 1) * period
                kernel(packed, occ_lo, occ_lo + period, env)
                fp = _fingerprint(
                    specs, slot_index, env, touched,
                    occ_lo, occ_lo + period, needs_clock,
                )
                counters = [spec.summary.counters() for spec in specs]
                if fp == fp_prev:
                    converged_at = occ
                    break
                fp_prev = fp
                c_prev = counters
            if converged_at:
                occ_lo = lo + (converged_at - 1) * period
                times = count - converged_at
                for spec, before, after in zip(specs, c_prev, counters):
                    deltas = tuple(b - a for a, b in zip(before, after))
                    if any(deltas):
                        spec.summary.scale(deltas, times)
                _shift_refs(
                    specs, slot_index, env, touched,
                    occ_lo, occ_lo + period, times * period,
                )
                if stats is not None:
                    stats.rows_executed += converged_at * period
                    stats.rows_skipped += times * period
                    stats.blocks_summarized += 1
            else:
                replayed = max(probes, 1)
                kernel(packed, lo + replayed * period, lo + count * period, env)
                if stats is not None:
                    stats.rows_executed += count * period
                    stats.blocks_replayed += 1
            # Repeat tail rows truncated by `stop` clipping.
            tail = lo + count * period
            if tail < hi:
                kernel(packed, tail, hi, env)
                if stats is not None:
                    stats.rows_executed += hi - tail

    if timed:
        timings[:] = acc
    return stats
