"""The fused single-sweep analysis engine over packed traces.

Every packed-trace consumer — the race detectors, the adjacency and
coverage probes, the GoodLock lock-order analysis — used to carry its
own hand-rolled ``feed_packed`` loop: k passes over a trace meant k
copies of the opcode dispatch, the column indexing, and the per-thread
clock caching.  This module replaces them with **one** sweep driver
that decodes each row once and dispatches to every registered pass.

Architecture (DESIGN.md §9):

* An **analysis pass** is any object with a ``name``, a declared
  ``interests`` tuple of event classes (the same attribute the live
  listener protocol uses), and a ``kernel_spec(packed)`` method
  returning a :class:`KernelSpec`.  Passes keep their results on the
  instance (``races``, ``confirmed``, ``units``, ...) or expose them
  via ``finish()``.
* A :class:`KernelSpec` describes how the pass consumes rows: either
  **source fragments** (per-opcode Python statements, inlined into a
  generated sweep function) or **handlers** (per-opcode callables, for
  cold passes where codegen is not worth it).  Fragments of every pass
  in a sweep are fused into a single generated loop — one opcode
  branch, one ``tid``/``adr`` decode, one clock lookup per row — and
  compiled once per pass-class tuple.
* Passes that need happens-before clocks (``needs_clock``) share one
  clock store per sweep: FastTrack and Djit+ evolve identical thread
  and lock clocks, so the fused sweep maintains them once.
* Fragment passes that key state on the access address share one
  per-address **slot list**: the driver resolves ``adr`` to a slot
  once and each pass reads ``slot[k]``, replacing k per-pass dict
  lookups with one.

Fragment contract: placeholder ``P_`` prefixes are rewritten to a
per-pass prefix, ``SLOT`` to the pass's slot index, and ``OP_*`` tokens
to their opcode literals.  Fragments may use the shared driver locals
``i``, ``tid``, ``adr``, ``my_time`` (access rows of clocked sweeps),
``clock``, ``times_get``, ``packed``, and any column local they
mention (``ops``, ``tids``, ``nodes``, ``lcks``, ``locktab``, ...).
The fragment/handler opcode set and the fragment text must be a
function of the pass *class* (kernels are cached per class tuple);
per-instance state enters through :attr:`KernelSpec.env`.

Determinism: a fused sweep produces bit-identical per-pass results to
running each pass standalone — pass states are disjoint (the shared
clock store is an identical-evolution merge, not an approximation) —
and the standalone sweep is bit-identical to the old per-detector
loops (gated by tests/detect/test_packed_equivalence.py and
tests/analysis/test_sweep_engine.py).
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass, field

# NB: VectorClock is imported lazily inside kernel compilation; importing
# repro.detect here would cycle (the detectors import this module).

__all__ = [
    "AnalysisPass",
    "KernelSpec",
    "UnknownPassError",
    "create_pass",
    "interest_union",
    "memo_key",
    "register_pass",
    "registered_passes",
    "resolve_pass",
    "run_sweep",
]


@dataclass
class KernelSpec:
    """How one pass plugs into the fused sweep.

    Exactly the per-sweep inputs: ``fragments`` maps opcodes to source
    fragments (see the module docstring for the placeholder contract),
    ``handlers`` maps opcodes to ``fn(i)`` callables for closure-based
    passes, and ``env`` carries the per-instance objects the fragments
    reference (hoisted into locals of the generated function).
    """

    needs_clock: bool = False
    fragments: dict[int, str] = field(default_factory=dict)
    handlers: dict[int, object] = field(default_factory=dict)
    env: dict[str, object] = field(default_factory=dict)


class AnalysisPass:
    """Protocol of a sweep pass (documentation; duck-typed, not enforced).

    Required attributes::

        name: str                      # registry / report name
        interests: tuple[type, ...]    # event classes consumed (listener
                                       # protocol; drives recorder elision)

    Required method::

        def kernel_spec(self, packed) -> KernelSpec: ...

    Optional::

        def finish(self): ...          # return a report fragment
    """


# ----------------------------------------------------------------------
# Registry (entry-point style: passes plug in without touching the
# driver; values are lazily imported "module:attr" strings or classes).

_REGISTRY: dict[str, str | type] = {
    "fasttrack": "repro.detect.fasttrack:FastTrackDetector",
    "eraser": "repro.detect.eraser:EraserDetector",
    "djit+": "repro.detect.djit:DjitDetector",
    "adjacency": "repro.fuzz.probes:AdjacencyProbe",
    "coverage": "repro.fuzz.coverage:InterleavingCoverageProbe",
    "goodlock": "repro.deadlock.goodlock:GoodLockDetector",
    "lockorder": "repro.deadlock.analysis:LockOrderPass",
}


class UnknownPassError(ValueError):
    """An unregistered pass name; the message lists what is registered."""


def register_pass(name: str, entry: str | type) -> None:
    """Register a pass class (or lazy ``"module:attr"`` entry point)."""
    _REGISTRY[name] = entry


def registered_passes() -> list[str]:
    return sorted(_REGISTRY)


def resolve_pass(name: str) -> type:
    """Resolve a registered pass name to its class (lazy import)."""
    entry = _REGISTRY.get(name)
    if entry is None:
        known = ", ".join(registered_passes())
        raise UnknownPassError(
            f"unknown analysis pass {name!r}; registered passes: {known}"
        )
    if isinstance(entry, str):
        module_name, _, attr = entry.partition(":")
        module = __import__(module_name, fromlist=[attr])
        entry = getattr(module, attr)
        _REGISTRY[name] = entry
    return entry


def create_pass(name: str):
    """Instantiate a registered pass."""
    return resolve_pass(name)()


def interest_union(passes) -> tuple:
    """Union of the passes' declared interests, first-seen order.

    A recorder created with this union triggers the same
    event-construction elision and the same scheduling points as
    attaching the passes as live listeners directly — which is what
    keeps record-then-sweep bit-identical to live listening.  Accepts
    pass instances or classes.
    """
    seen: list = []
    for p in passes:
        for interest in p.interests:
            if interest not in seen:
                seen.append(interest)
    return tuple(seen)


def memo_key(pass_names, packed) -> str:
    """Memo key for the results of sweeping ``passes`` over ``packed``.

    Two runs with equal keys fed the same pass set a byte-identical
    event stream, so the (pure) passes would reproduce exactly the
    memoized results.  Derived from content only — safe across
    processes and schedule orders (see DESIGN.md §8/§9).
    """
    h = hashlib.sha256()
    for name in pass_names:
        h.update(name.encode())
        h.update(b"\x1f")
    h.update(packed.digest().encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Kernel codegen.

#: Opcode literals substituted into fragments (canonical set lives in
#: trace/columnar.py; resolved lazily to avoid an import cycle).
def _op_table() -> dict[str, int]:
    from repro.trace import columnar

    return {
        name: getattr(columnar, name)
        for name in dir(columnar)
        if name.startswith("OP_") and isinstance(getattr(columnar, name), int)
    }


#: Driver locals a fragment may reference, bound from ``packed`` once.
_COLUMN_LOCALS = (
    ("ops", "packed.op"),
    ("tids", "packed.tid"),
    ("xs", "packed.x"),
    ("ys", "packed.y"),
    ("nodes", "packed.node"),
    ("adrs", "packed.adr"),
    ("lcks", "packed.lck"),
    ("clss", "packed.cls"),
    ("flds", "packed.fld"),
    ("locktab", "packed.locktab"),
    ("strtab", "packed.strtab"),
)

#: Shared decode for access rows of a clocked sweep: thread id, cached
#: per-thread clock (``_times`` re-bound only on thread switch; sync
#: blocks invalidate with ``cur_tid = -1`` since they may replace the
#: dict under copy-on-write), local time, and interned address.
_ACCESS_DECODE_CLOCK = """\
tid = tids[i]
if tid != cur_tid:
    clock = threads_get(tid)
    if clock is None:
        clock = threads[tid] = VectorClock({tid: 1})
    cur_tid = tid
    times_get = clock._times.get
my_time = times_get(tid, 0)
adr = adrs[i]
"""

_ACCESS_DECODE_PLAIN = """\
tid = tids[i]
adr = adrs[i]
"""

#: Happens-before clock maintenance, emitted once per sweep when any
#: pass needs clocks (FastTrack and Djit+ evolve identical clocks, so
#: the shared store is exact, not an approximation).
_CLOCK_SYNC = {
    "OP_LOCK": """\
x = xs[i]
_lock_clock = locks_get(x)
if _lock_clock is not None:
    _c = threads_get(tid)
    if _c is None:
        _c = threads[tid] = VectorClock({tid: 1})
    _c.join(_lock_clock)
cur_tid = -1
""",
    "OP_UNLOCK": """\
x = xs[i]
_c = threads_get(tid)
if _c is None:
    _c = threads[tid] = VectorClock({tid: 1})
locks[x] = _c.snapshot()
_c.tick(tid)
cur_tid = -1
""",
    "OP_FORK": """\
x = xs[i]
_parent = threads_get(tid)
if _parent is None:
    _parent = threads[tid] = VectorClock({tid: 1})
_child = threads_get(x)
if _child is None:
    _child = threads[x] = VectorClock({x: 1})
_child.join(_parent)
_parent.tick(tid)
cur_tid = -1
""",
    "OP_JOIN": """\
x = xs[i]
_child = threads_get(x)
if _child is None:
    _child = threads[x] = VectorClock({x: 1})
_self = threads_get(tid)
if _self is None:
    _self = threads[tid] = VectorClock({tid: 1})
_self.join(_child)
_child.tick(x)
cur_tid = -1
""",
}

_OP_TOKEN = re.compile(r"\bOP_[A-Z]+\b")


def _indent(text: str, prefix: str) -> str:
    return "".join(
        prefix + line if line.strip() else line
        for line in text.splitlines(keepends=True)
    )


def _pass_fragments(k: int, spec: KernelSpec, op_values: dict[str, int]):
    """Normalize one pass's spec into {opcode: prefixed fragment}."""
    fragments: dict[int, str] = {}
    for op, frag in spec.fragments.items():
        frag = _OP_TOKEN.sub(lambda m: str(op_values[m.group(0)]), frag)
        fragments[op] = frag.replace("P_", f"p{k}_")
    for op in spec.handlers:
        # Closure passes become a single generated call site.
        fragments[op] = f"p{k}_h{op}(i)\n"
    return fragments


def _compile_kernel(specs: list[KernelSpec], timed: bool, label: str):
    """Generate and compile the fused sweep function for ``specs``."""
    op_values = _op_table()
    op_read, op_write = op_values["OP_READ"], op_values["OP_WRITE"]
    needs_clock = any(s.needs_clock for s in specs)

    per_pass = [_pass_fragments(k, s, op_values) for k, s in enumerate(specs)]
    # Shared per-address slots: one list per address, one index per
    # slot-using pass, resolved once per access row.
    slot_index: dict[int, int] = {}
    for k, fragments in enumerate(per_pass):
        if any("SLOT" in frag for frag in fragments.values()):
            slot_index[k] = len(slot_index)
    n_slots = len(slot_index)

    bodies: dict[int, str] = {}
    all_ops = sorted({op for fragments in per_pass for op in fragments})
    for op in all_ops:
        parts: list[str] = []
        uses_slot = False
        for k, fragments in enumerate(per_pass):
            frag = fragments.get(op)
            if not frag:
                continue
            if "SLOT" in frag:
                uses_slot = True
                frag = frag.replace("SLOT", str(slot_index[k]))
            if timed:
                frag = (
                    "_t0 = _pc()\n" + frag + f"_tacc[{k}] += _pc() - _t0\n"
                )
            parts.append(frag)
        if op in (op_read, op_write):
            decode = _ACCESS_DECODE_CLOCK if needs_clock else _ACCESS_DECODE_PLAIN
            if uses_slot:
                decode += (
                    "slot = slots_get(adr)\n"
                    "if slot is None:\n"
                    f"    slot = slots[adr] = [None] * {n_slots}\n"
                )
        else:
            decode = "tid = tids[i]\n"
        bodies[op] = decode + "".join(parts)
    if needs_clock:
        for op_name, block in _CLOCK_SYNC.items():
            op = op_values[op_name]
            sync = "tid = tids[i]\n" + block
            # Sync first, then any pass fragments already present for
            # this opcode (their decode line is subsumed by the sync's).
            existing = bodies.get(op)
            if existing is not None:
                existing = existing.split("\n", 1)[1]  # drop duplicate decode
                sync += existing
            bodies[op] = sync

    body_text = "".join(
        f"        {'if' if j == 0 else 'elif'} op == {op}:\n"
        + _indent(bodies[op], "            ")
        for j, op in enumerate(sorted(bodies))
    )
    col_lines = "".join(
        f"    {name} = {expr}\n"
        for name, expr in _COLUMN_LOCALS
        if name == "ops" or re.search(rf"\b{name}\b", body_text)
    )
    env_names = [
        f"p{k}_{name}" for k, s in enumerate(specs) for name in s.env
    ] + [f"p{k}_h{op}" for k, s in enumerate(specs) for op in s.handlers]
    env_lines = "".join(f'    {name} = env["{name}"]\n' for name in env_names)
    if n_slots:
        env_lines += '    slots = env["__slots"]\n    slots_get = slots.get\n'
    if needs_clock:
        env_lines += (
            '    threads = env["__threads"]\n'
            "    threads_get = threads.get\n"
            '    locks = env["__locks"]\n'
            "    locks_get = locks.get\n"
            "    cur_tid = -1\n"
            "    times_get = None\n"
            "    clock = None\n"
        )
    if timed:
        env_lines += '    _tacc = env["__timings"]\n    _pc = _perf_counter\n'
    src = (
        "def _sweep(packed, start, stop, env):\n"
        + col_lines
        + env_lines
        + "    for i in range(start, stop):\n"
        "        op = ops[i]\n" + body_text
    )
    from repro.detect.clock import VectorClock

    namespace = {"VectorClock": VectorClock, "_perf_counter": time.perf_counter}
    exec(compile(src, f"<sweep:{label}>", "exec"), namespace)
    return namespace["_sweep"], needs_clock, n_slots > 0


#: Compiled kernels per (pass-class tuple, timed) — specs are required
#: to be class-constant, so one compile serves every instance tuple.
_KERNELS: dict[tuple, tuple] = {}


def run_sweep(passes, packed, start: int = 0, stop: int | None = None,
              timings: list | None = None) -> None:
    """Decode ``packed`` once, dispatching every row to all ``passes``.

    This is the single site in the codebase that decodes opcode
    columns; ``feed_packed`` on every detector/probe delegates here as
    a singleton sweep.  With ``timings`` (a list), the timed kernel
    variant runs instead and per-pass seconds are written into it —
    the ``--trace-stats`` per-pass attribution.

    Sweep state (the shared slot store, and each clocked pass's clock
    dicts) persists on the pass instances, so repeatedly sweeping the
    same instances over successive traces accumulates state exactly
    like the old per-detector ``feed_packed`` loops did.  Reuse
    instances only across sweeps of the same pass tuple.
    """
    passes = tuple(passes)
    if not passes:
        return
    specs = [p.kernel_spec(packed) for p in passes]
    timed = timings is not None
    key = (tuple(type(p) for p in passes), timed)
    cached = _KERNELS.get(key)
    if cached is None:
        label = "+".join(getattr(p, "name", type(p).__name__) for p in passes)
        cached = _KERNELS[key] = _compile_kernel(specs, timed, label)
    kernel, needs_clock, uses_slots = cached

    env: dict[str, object] = {}
    for k, spec in enumerate(specs):
        for name, obj in spec.env.items():
            env[f"p{k}_{name}"] = obj
        for op, handler in spec.handlers.items():
            env[f"p{k}_h{op}"] = handler
    if uses_slots:
        holder = next(
            p for p, s in zip(passes, specs)
            if any("SLOT" in f for f in s.fragments.values())
        )
        slots = getattr(holder, "_sweep_slots", None)
        if slots is None:
            slots = {}
            holder._sweep_slots = slots
        env["__slots"] = slots
    if needs_clock:
        clocked = [p for p, s in zip(passes, specs) if s.needs_clock]
        threads, locks = clocked[0]._threads, clocked[0]._locks
        for p in clocked[1:]:
            p._threads = threads
            p._locks = locks
        env["__threads"] = threads
        env["__locks"] = locks
    if timed:
        acc = [0.0] * len(passes)
        env["__timings"] = acc
    kernel(packed, start, len(packed) if stop is None else stop, env)
    if timed:
        timings[:] = acc
