"""Baseline comparators: ConTeGe-style random concurrent test generation."""

from repro.baseline.contege import ConTeGe, ConTeGeResult, GeneratedTest, Violation

__all__ = ["ConTeGe", "ConTeGeResult", "GeneratedTest", "Violation"]
