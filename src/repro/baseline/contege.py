"""ConTeGe baseline (Pradel & Gross, PLDI 2012), the paper's §5 comparator.

ConTeGe detects thread-safety violations by *random* search: generate a
sequential prefix that constructs the class under test, two random call
suffixes, run the suffixes from two threads, and report a violation when
the concurrent execution crashes or deadlocks while **every**
linearization of the suffix calls runs fine.

Two structural properties make it weak exactly where Narada is strong
(and the paper's comparison shows it): the suffixes always target *one*
shared instance, so wrapper classes like C1/C2 serialize on their own
monitor and never expose the inner-state races; and object sharing
beyond the CUT instance arises only by accident.  It does find the
classes that crash outright under concurrent use (C5, C6).
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field

from repro._util.errors import ParseError
from repro.lang import ast, parse
from repro.lang.classtable import OBJECT, ClassTable
from repro.lang.types import Type
from repro.runtime.scheduler import RandomScheduler, SequentialScheduler
from repro.runtime.vm import VM, Execution

#: Bounds keeping generated tests small enough to enumerate all
#: linearizations of the two suffixes exactly.
MAX_SUFFIX_CALLS = 3
MAX_CONSTRUCT_DEPTH = 3
RUN_MAX_STEPS = 60_000


@dataclass
class GeneratedTest:
    """One random concurrent test: prefix + two suffixes (source text)."""

    index: int
    prefix: str
    suffix_a: str
    suffix_b: str

    def render(self) -> str:
        return (
            f"// ConTeGe test #{self.index}\n{self.prefix}\n"
            f"// thread 1:\n{self.suffix_a}\n// thread 2:\n{self.suffix_b}"
        )


@dataclass
class Violation:
    """A confirmed thread-safety violation."""

    test: GeneratedTest
    fault_kind: str
    schedule_seed: int


@dataclass
class ConTeGeResult:
    class_name: str
    tests_generated: int = 0
    executions: int = 0
    violations: list[Violation] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def violation_count(self) -> int:
        return len(self.violations)


class ConTeGe:
    """Random concurrent test generator with a linearization oracle."""

    def __init__(
        self,
        table: ClassTable,
        class_name: str,
        seed: int = 0,
        schedules_per_test: int = 3,
        stop_at_first: bool = False,
    ) -> None:
        self._table = table
        self._class_name = class_name
        self._rng = random.Random(seed)
        self._schedules = schedules_per_test
        self._stop_at_first = stop_at_first
        self._decl = table.program.class_decl(class_name)
        if self._decl is None:
            raise ValueError(f"unknown class under test {class_name}")

    # ------------------------------------------------------------------
    # Entry point.

    def run(self, max_tests: int) -> ConTeGeResult:
        result = ConTeGeResult(class_name=self._class_name)
        start = time.perf_counter()
        for index in range(max_tests):
            test = self._generate_test(index)
            if test is None:
                continue
            result.tests_generated += 1
            violation = self._execute_test(test, result)
            if violation is not None:
                result.violations.append(violation)
                if self._stop_at_first:
                    break
        result.seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------
    # Test generation.

    def _generate_test(self, index: int) -> GeneratedTest | None:
        self._temp = 0
        prefix_lines: list[str] = []
        cut_expr = self._construct_expr(self._class_name, 0, prefix_lines)
        if cut_expr is None:
            return None
        prefix_lines.append(f"{self._class_name} cut = {cut_expr};")
        # A couple of state-building warm-up calls.
        for _ in range(self._rng.randrange(3)):
            call = self._random_call("cut", prefix_lines)
            if call is not None:
                prefix_lines.append(call)
        suffix_a = self._suffix(prefix_lines)
        suffix_b = self._suffix(prefix_lines)
        test = GeneratedTest(
            index=index,
            prefix="\n".join(prefix_lines),
            suffix_a="\n".join(suffix_a),
            suffix_b="\n".join(suffix_b),
        )
        return test

    def _suffix(self, prefix_lines: list[str]) -> list[str]:
        lines: list[str] = []
        for _ in range(1 + self._rng.randrange(MAX_SUFFIX_CALLS)):
            call = self._random_call("cut", prefix_lines)
            if call is not None:
                lines.append(call)
        return lines

    def _random_call(self, receiver: str, prefix_lines: list[str]) -> str | None:
        methods = [m for m in self._decl.methods if not m.is_constructor]
        if not methods:
            return None
        method = self._rng.choice(methods)
        args = []
        for param in method.params:
            arg = self._arg_expr(param.param_type, prefix_lines)
            if arg is None:
                return None
            args.append(arg)
        return f"{receiver}.{method.name}({', '.join(args)});"

    def _arg_expr(self, param_type: Type, prefix_lines: list[str]) -> str | None:
        if param_type.kind == "int":
            return str(self._rng.randrange(8))
        if param_type.kind == "bool":
            return "true" if self._rng.random() < 0.5 else "false"
        if not param_type.is_reference():
            return None
        expr = self._construct_expr_for_type(param_type, 1, prefix_lines)
        return expr if expr is not None else "null"

    def _construct_expr_for_type(
        self, declared: Type, depth: int, prefix_lines: list[str]
    ) -> str | None:
        if declared.name == OBJECT.name:
            candidates = [
                name
                for name in self._table.class_names()
                if not self._table.constructor(name)
                or len(self._table.constructor(name).params) == 0
            ]
            if not candidates:
                return None
            return self._construct_expr(self._rng.choice(candidates), depth, prefix_lines)
        candidates = self._table.concrete_classes_for(declared)
        if not candidates:
            return None
        return self._construct_expr(self._rng.choice(candidates), depth, prefix_lines)

    def _construct_expr(
        self, class_name: str, depth: int, prefix_lines: list[str]
    ) -> str | None:
        if depth > MAX_CONSTRUCT_DEPTH:
            return None
        ctor = self._table.constructor(class_name)
        args: list[str] = []
        if ctor is not None:
            for param in ctor.params:
                if param.param_type.kind == "int":
                    args.append(str(1 + self._rng.randrange(4)))
                elif param.param_type.kind == "bool":
                    args.append("true" if self._rng.random() < 0.5 else "false")
                elif param.param_type.name in ("IntArray", "RefArray"):
                    args.append(f"new {param.param_type.name}(8)")
                else:
                    inner = self._construct_expr_for_type(
                        param.param_type, depth + 1, prefix_lines
                    )
                    if inner is None:
                        return None
                    args.append(inner)
        return f"new {class_name}({', '.join(args)})"

    # ------------------------------------------------------------------
    # Execution + oracle.

    def _parse_stmts(self, body: str) -> list[ast.Stmt] | None:
        try:
            program = parse("test G {\n" + body + "\n}")
        except ParseError:
            return None
        return program.tests[0].body.stmts

    def _execute_test(
        self, test: GeneratedTest, result: ConTeGeResult
    ) -> Violation | None:
        prefix = self._parse_stmts(test.prefix)
        suffix_a = self._parse_stmts(test.suffix_a)
        suffix_b = self._parse_stmts(test.suffix_b)
        if prefix is None or suffix_a is None or suffix_b is None:
            return None

        for schedule in range(self._schedules):
            result.executions += 1
            fault = self._concurrent_fault(prefix, suffix_a, suffix_b, schedule)
            if fault is None:
                continue
            if self._all_linearizations_clean(prefix, suffix_a, suffix_b):
                return Violation(
                    test=test, fault_kind=fault, schedule_seed=schedule
                )
            return None  # The crash has a sequential explanation.
        return None

    def _concurrent_fault(
        self,
        prefix: list[ast.Stmt],
        suffix_a: list[ast.Stmt],
        suffix_b: list[ast.Stmt],
        schedule_seed: int,
    ) -> str | None:
        vm = VM(self._table, seed=0)
        env: dict = {}
        setup = Execution(vm)
        main = setup.spawn(
            lambda ctx: vm.interp.run_client_stmts(prefix, ctx, env), name="prefix"
        )
        setup_result = setup.run(SequentialScheduler(), max_steps=RUN_MAX_STEPS)
        if not setup_result.clean:
            return None  # Broken prefix: not a concurrency problem.
        concurrent = Execution(vm)
        for stmts in (suffix_a, suffix_b):
            concurrent.spawn(
                lambda ctx, stmts=stmts: vm.interp.run_client_stmts(
                    stmts, ctx, dict(env)
                ),
                parent=main,
            )
        outcome = concurrent.run(
            RandomScheduler(seed=schedule_seed * 65_537 + 13),
            max_steps=RUN_MAX_STEPS,
        )
        if outcome.deadlocked:
            return "deadlock"
        if outcome.faults:
            return outcome.faults[0][1].kind
        return None

    def _all_linearizations_clean(
        self,
        prefix: list[ast.Stmt],
        suffix_a: list[ast.Stmt],
        suffix_b: list[ast.Stmt],
    ) -> bool:
        for merged in _interleavings(suffix_a, suffix_b):
            vm = VM(self._table, seed=0)
            env: dict = {}
            execution = Execution(vm)
            execution.spawn(
                lambda ctx, stmts=prefix + merged: vm.interp.run_client_stmts(
                    stmts, ctx, env
                )
            )
            outcome = execution.run(SequentialScheduler(), max_steps=RUN_MAX_STEPS)
            if outcome.faults or outcome.deadlocked:
                return False
        return True


def _interleavings(left: list, right: list):
    """All call-level interleavings of two statement lists."""
    total = len(left) + len(right)
    for positions in itertools.combinations(range(total), len(left)):
        merged: list = []
        li = iter(left)
        ri = iter(right)
        position_set = set(positions)
        for slot in range(total):
            merged.append(next(li) if slot in position_set else next(ri))
        yield merged
