"""Lock-order analysis of sequential traces (deadlock-test synthesis).

The paper's authors' companion work — *Multithreaded test synthesis for
deadlock detection* (Samak & Ramanathan, OOPSLA 2014), cited as [22] —
applies the same recipe as Narada to deadlocks: analyze sequential
traces, find *nested lock acquisitions*, and synthesize tests whose two
threads acquire the same two objects' monitors in opposite orders.

This module extracts the per-invocation lock-order facts: for every
monitor acquisition performed while other monitors are held, a
:class:`LockEdge` recording the held and acquired locks as
client-relative access paths (the same ``I``-rooted paths the race
pipeline uses), plus their runtime classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.analyzer import _Segment
from repro.analysis.model import MethodSummary
from repro.analysis.paths import AccessPath, RECEIVER
from repro.runtime.values import ObjRef
from repro.trace.events import (
    AllocEvent,
    FaultEvent,
    InvokeEvent,
    LockEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    UnlockEvent,
    WriteEvent,
)


@dataclass(frozen=True)
class LockEdge:
    """One nested acquisition: ``acquired`` taken while ``held``.

    ``*_chain`` carries the runtime classes along each path (root object
    first, lock object last) for the context deriver.
    """

    held_path: AccessPath | None
    held_class: str
    acquired_path: AccessPath | None
    acquired_class: str
    held_site: int
    acquired_site: int
    held_chain: tuple[str, ...] | None = None
    acquired_chain: tuple[str, ...] | None = None

    def class_pair(self) -> tuple[str, str]:
        return (self.held_class, self.acquired_class)

    def describe(self) -> str:
        held = str(self.held_path) if self.held_path else "?"
        acquired = str(self.acquired_path) if self.acquired_path else "?"
        return (
            f"hold {self.held_class}({held}) -> "
            f"acquire {self.acquired_class}({acquired})"
        )


@dataclass
class LockOrderSummary:
    """Lock-order facts for one client invocation."""

    class_name: str
    method: str
    test_name: str
    ordinal: int
    is_constructor: bool
    arg_count: int = 0
    edges: list[LockEdge] = field(default_factory=list)

    def method_id(self) -> tuple[str, str]:
        return (self.class_name, self.method)


class LockOrderPass:
    """Lock-order extraction as a sweep-engine analysis pass.

    Holds the loop-carried state the old ``LockOrderAnalyzer.analyze``
    loop kept in locals (open segment, current summary, runtime-class
    map, held-lock stack).  Consumes rich events — either live via
    :meth:`on_event` or from a packed trace via the engine, which
    reconstructs each interesting row lazily (lock-order analysis is a
    cold, per-seed-trace pass; faithful event reconstruction is gated
    by the golden-trace equivalence suite).  Call :meth:`finish` after
    the sweep to flush a trailing open summary.
    """

    name = "lockorder"

    interests = (InvokeEvent, AllocEvent, ReadEvent, WriteEvent, LockEvent,
                 UnlockEvent, ReturnEvent, FaultEvent)

    def __init__(self, test_name: str = "",
                 summaries: list[LockOrderSummary] | None = None) -> None:
        self.test_name = test_name
        self.summaries: list[LockOrderSummary] = (
            summaries if summaries is not None else []
        )
        self._segment: _Segment | None = None
        self._summary: LockOrderSummary | None = None
        self._classes: dict[int, str] = {}
        self._held: list[tuple[int, int]] = []  # (obj ref, acquire site)
        self._ordinal = 0

    def on_event(self, event) -> None:
        segment = self._segment
        summary = self._summary
        classes = self._classes
        if isinstance(event, InvokeEvent):
            classes[event.receiver] = event.class_name
            for arg in event.args:
                if isinstance(arg, ObjRef):
                    classes[arg.ref] = arg.class_name
            if event.from_client and segment is None:
                self._summary = LockOrderSummary(
                    class_name=event.class_name,
                    method=event.method,
                    test_name=self.test_name,
                    ordinal=self._ordinal,
                    is_constructor=event.is_constructor,
                    arg_count=len(event.args),
                )
                self._ordinal += 1
                self._segment = self._open_segment(event)
                self._held = []
            return
        if segment is None or summary is None:
            return
        if isinstance(event, AllocEvent):
            classes[event.ref] = event.class_name
            segment.controllable.setdefault(event.ref, not event.in_library)
        elif isinstance(event, (ReadEvent, WriteEvent)):
            classes[event.obj] = event.class_name
            if isinstance(event.value, ObjRef):
                classes[event.value.ref] = event.value.class_name
                segment.controllable.setdefault(
                    event.value.ref, segment.flag(event.obj)
                )
            segment.set_field(event.obj, event.field_name, event.value)
        elif isinstance(event, LockEvent):
            if event.reentrancy == 1:  # fresh acquisition only
                acquired_found = segment.src_with_classes(event.obj)
                for held_ref, held_site in self._held:
                    if held_ref == event.obj:
                        continue
                    held_found = segment.src_with_classes(held_ref)
                    summary.edges.append(
                        LockEdge(
                            held_path=held_found[0] if held_found else None,
                            held_class=classes.get(held_ref, "?"),
                            acquired_path=(
                                acquired_found[0] if acquired_found else None
                            ),
                            acquired_class=classes.get(event.obj, "?"),
                            held_site=held_site,
                            acquired_site=event.node_id,
                            held_chain=held_found[1] if held_found else None,
                            acquired_chain=(
                                acquired_found[1] if acquired_found else None
                            ),
                        )
                    )
                self._held.append((event.obj, event.node_id))
        elif isinstance(event, UnlockEvent):
            if event.reentrancy == 0:
                self._held = [
                    (ref, site) for ref, site in self._held if ref != event.obj
                ]
        elif isinstance(event, ReturnEvent):
            if event.to_client and event.returning_call_index == segment.call_index:
                self.summaries.append(summary)
                self._segment = None
                self._summary = None
        elif isinstance(event, FaultEvent):
            self.summaries.append(summary)
            self._segment = None
            self._summary = None

    def kernel_spec(self, packed):
        from repro.analysis.sweep import KernelSpec
        from repro.trace.columnar import (
            OP_ALLOC,
            OP_FAULT,
            OP_INVOKE,
            OP_LOCK,
            OP_READ,
            OP_RETURN,
            OP_UNLOCK,
            OP_WRITE,
        )

        on_event, event_at = self.on_event, packed.event

        def handler(i: int) -> None:
            on_event(event_at(i))

        return KernelSpec(handlers={
            op: handler
            for op in (OP_INVOKE, OP_ALLOC, OP_READ, OP_WRITE, OP_LOCK,
                       OP_UNLOCK, OP_RETURN, OP_FAULT)
        })

    def finish(self) -> list[LockOrderSummary]:
        """Flush a trailing open summary; returns the summary list."""
        if self._summary is not None:
            self.summaries.append(self._summary)
            self._segment = None
            self._summary = None
        return self.summaries

    @staticmethod
    def _open_segment(event: InvokeEvent) -> _Segment:
        from repro.analysis.model import MethodSummary as _MS

        # A throwaway MethodSummary satisfies _Segment's interface; only
        # the shadow heap and src machinery are used here.
        dummy = _MS(
            test_name="",
            ordinal=0,
            class_name=event.class_name,
            method=event.method,
            is_constructor=event.is_constructor,
            receiver_ref=event.receiver,
            arg_refs=tuple(
                a.ref if isinstance(a, ObjRef) else None for a in event.args
            ),
        )
        segment = _Segment(summary=dummy, call_index=event.new_call_index)
        segment.roots[RECEIVER] = event.receiver
        segment.root_classes[RECEIVER] = event.class_name
        segment.controllable[event.receiver] = True
        for index, arg in enumerate(event.args, start=1):
            if isinstance(arg, ObjRef):
                segment.roots[index] = arg.ref
                segment.root_classes[index] = arg.class_name
                segment.controllable[arg.ref] = True
        return segment


class LockOrderAnalyzer:
    """Extracts :class:`LockOrderSummary` objects from seed traces.

    Thin accumulator over :class:`LockOrderPass` — one pass instance
    per trace (segment state, class map, and ordinals are per-trace),
    all appending into the shared ``summaries`` list.  Reuses the race
    pipeline's segment machinery (shadow field graph + ``src`` path
    resolution) so lock objects are named by the same client-relative
    paths the context deriver can set.
    """

    def __init__(self) -> None:
        self.summaries: list[LockOrderSummary] = []

    def analyze(self, trace: Trace) -> list[LockOrderSummary]:
        lock_pass = LockOrderPass(
            test_name=trace.test_name, summaries=self.summaries
        )
        if hasattr(trace, "op"):  # PackedTrace: sweep via the engine
            from repro.analysis.sweep import run_sweep

            run_sweep((lock_pass,), trace)
        else:
            for event in trace:
                lock_pass.on_event(event)
        lock_pass.finish()
        return self.summaries

    def analyze_all(self, traces: list[Trace]) -> list[LockOrderSummary]:
        for trace in traces:
            self.analyze(trace)
        return self.summaries


# Re-exported for typing convenience.
__all__ = [
    "LockEdge",
    "LockOrderAnalyzer",
    "LockOrderPass",
    "LockOrderSummary",
    "MethodSummary",
]
