"""Lock-order analysis of sequential traces (deadlock-test synthesis).

The paper's authors' companion work — *Multithreaded test synthesis for
deadlock detection* (Samak & Ramanathan, OOPSLA 2014), cited as [22] —
applies the same recipe as Narada to deadlocks: analyze sequential
traces, find *nested lock acquisitions*, and synthesize tests whose two
threads acquire the same two objects' monitors in opposite orders.

This module extracts the per-invocation lock-order facts: for every
monitor acquisition performed while other monitors are held, a
:class:`LockEdge` recording the held and acquired locks as
client-relative access paths (the same ``I``-rooted paths the race
pipeline uses), plus their runtime classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.analyzer import _Segment
from repro.analysis.model import MethodSummary
from repro.analysis.paths import AccessPath, RECEIVER
from repro.runtime.values import ObjRef
from repro.trace.events import (
    AllocEvent,
    FaultEvent,
    InvokeEvent,
    LockEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    UnlockEvent,
    WriteEvent,
)


@dataclass(frozen=True)
class LockEdge:
    """One nested acquisition: ``acquired`` taken while ``held``.

    ``*_chain`` carries the runtime classes along each path (root object
    first, lock object last) for the context deriver.
    """

    held_path: AccessPath | None
    held_class: str
    acquired_path: AccessPath | None
    acquired_class: str
    held_site: int
    acquired_site: int
    held_chain: tuple[str, ...] | None = None
    acquired_chain: tuple[str, ...] | None = None

    def class_pair(self) -> tuple[str, str]:
        return (self.held_class, self.acquired_class)

    def describe(self) -> str:
        held = str(self.held_path) if self.held_path else "?"
        acquired = str(self.acquired_path) if self.acquired_path else "?"
        return (
            f"hold {self.held_class}({held}) -> "
            f"acquire {self.acquired_class}({acquired})"
        )


@dataclass
class LockOrderSummary:
    """Lock-order facts for one client invocation."""

    class_name: str
    method: str
    test_name: str
    ordinal: int
    is_constructor: bool
    arg_count: int = 0
    edges: list[LockEdge] = field(default_factory=list)

    def method_id(self) -> tuple[str, str]:
        return (self.class_name, self.method)


class LockOrderAnalyzer:
    """Extracts :class:`LockOrderSummary` objects from seed traces.

    Reuses the race pipeline's segment machinery (shadow field graph +
    ``src`` path resolution) so lock objects are named by the same
    client-relative paths the context deriver can set.
    """

    def __init__(self) -> None:
        self.summaries: list[LockOrderSummary] = []

    def analyze(self, trace: Trace) -> list[LockOrderSummary]:
        segment: _Segment | None = None
        summary: LockOrderSummary | None = None
        classes: dict[int, str] = {}
        held: list[tuple[int, int]] = []  # (obj ref, acquire site)
        ordinal = 0

        def class_of(ref: int) -> str:
            return classes.get(ref, "?")

        for event in trace:
            if isinstance(event, InvokeEvent):
                classes[event.receiver] = event.class_name
                for arg in event.args:
                    if isinstance(arg, ObjRef):
                        classes[arg.ref] = arg.class_name
                if event.from_client and segment is None:
                    summary = LockOrderSummary(
                        class_name=event.class_name,
                        method=event.method,
                        test_name=trace.test_name,
                        ordinal=ordinal,
                        is_constructor=event.is_constructor,
                        arg_count=len(event.args),
                    )
                    ordinal += 1
                    segment = self._open_segment(event)
                    held = []
                continue
            if segment is None or summary is None:
                continue
            if isinstance(event, AllocEvent):
                classes[event.ref] = event.class_name
                segment.controllable.setdefault(event.ref, not event.in_library)
            elif isinstance(event, (ReadEvent, WriteEvent)):
                classes[event.obj] = event.class_name
                if isinstance(event.value, ObjRef):
                    classes[event.value.ref] = event.value.class_name
                    segment.controllable.setdefault(
                        event.value.ref, segment.flag(event.obj)
                    )
                segment.set_field(event.obj, event.field_name, event.value)
            elif isinstance(event, LockEvent):
                if event.reentrancy == 1:  # fresh acquisition only
                    acquired_found = segment.src_with_classes(event.obj)
                    for held_ref, held_site in held:
                        if held_ref == event.obj:
                            continue
                        held_found = segment.src_with_classes(held_ref)
                        summary.edges.append(
                            LockEdge(
                                held_path=held_found[0] if held_found else None,
                                held_class=class_of(held_ref),
                                acquired_path=(
                                    acquired_found[0] if acquired_found else None
                                ),
                                acquired_class=class_of(event.obj),
                                held_site=held_site,
                                acquired_site=event.node_id,
                                held_chain=held_found[1] if held_found else None,
                                acquired_chain=(
                                    acquired_found[1] if acquired_found else None
                                ),
                            )
                        )
                    held.append((event.obj, event.node_id))
            elif isinstance(event, UnlockEvent):
                if event.reentrancy == 0:
                    held = [(ref, site) for ref, site in held if ref != event.obj]
            elif isinstance(event, ReturnEvent):
                if event.to_client and event.returning_call_index == segment.call_index:
                    self.summaries.append(summary)
                    segment = None
                    summary = None
            elif isinstance(event, FaultEvent):
                self.summaries.append(summary)
                segment = None
                summary = None
        if summary is not None:
            self.summaries.append(summary)
        return self.summaries

    def analyze_all(self, traces: list[Trace]) -> list[LockOrderSummary]:
        for trace in traces:
            self.analyze(trace)
        return self.summaries

    @staticmethod
    def _open_segment(event: InvokeEvent) -> _Segment:
        from repro.analysis.model import MethodSummary as _MS

        # A throwaway MethodSummary satisfies _Segment's interface; only
        # the shadow heap and src machinery are used here.
        dummy = _MS(
            test_name="",
            ordinal=0,
            class_name=event.class_name,
            method=event.method,
            is_constructor=event.is_constructor,
            receiver_ref=event.receiver,
            arg_refs=tuple(
                a.ref if isinstance(a, ObjRef) else None for a in event.args
            ),
        )
        segment = _Segment(summary=dummy, call_index=event.new_call_index)
        segment.roots[RECEIVER] = event.receiver
        segment.root_classes[RECEIVER] = event.class_name
        segment.controllable[event.receiver] = True
        for index, arg in enumerate(event.args, start=1):
            if isinstance(arg, ObjRef):
                segment.roots[index] = arg.ref
                segment.root_classes[index] = arg.class_name
                segment.controllable[arg.ref] = True
        return segment


# Re-exported for typing convenience.
__all__ = ["LockEdge", "LockOrderAnalyzer", "LockOrderSummary", "MethodSummary"]
