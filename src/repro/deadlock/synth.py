"""Deadlock pair generation and test synthesis (OOPSLA 2014 sibling).

A :class:`DeadlockPair` is two method invocations whose nested lock
acquisitions have *opposite class orders*: ``m1`` locks an ``A`` then a
``B``, ``m2`` locks a ``B`` then an ``A``.  The synthesized test drives
the object graphs so that both sides' lock objects are the *same two
instances*, crossed:

    thread 1: m1 on S_A, whose nested lock resolves to S_B
    thread 2: m2 on S_B, whose nested lock resolves to S_A

Scope (documented restriction, covering the classic patterns): the held
lock must be the invocation's receiver (synchronized methods /
``synchronized(this)``), and the acquired lock must be reachable as a
receiver field path or be a parameter.  Context setting reuses the race
pipeline's :class:`~repro.context.deriver.ContextDeriver`; the
cross-side circular sharing (each receiver is the *other* side's
payload) is resolved by a slot-substitution pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.model import AnalysisResult
from repro.analysis.paths import RECEIVER
from repro.context.deriver import ContextDeriver
from repro.context.plan import (
    ObjectSlot,
    PlannedCall,
    SeedArg,
    SidePlan,
    SlotArg,
    TestPlan,
)
from repro.deadlock.analysis import LockEdge, LockOrderSummary
from repro.lang.classtable import ClassTable


@dataclass(frozen=True)
class DeadlockSide:
    """One side of a deadlock pair (duck-compatible with PairSide where
    the synthesizer needs it)."""

    summary: LockOrderSummary
    edge: LockEdge

    def method_id(self) -> tuple[str, str]:
        return self.summary.method_id()

    def describe(self) -> str:
        cls, method = self.method_id()
        return f"{cls}.{method}: {self.edge.describe()}"


@dataclass
class DeadlockPair:
    """Two invocations with opposite nested lock class-orders."""

    first: DeadlockSide
    second: DeadlockSide
    site_pairs: set[tuple[int, int]] = field(default_factory=set)
    same_site: bool = False

    @property
    def field(self) -> tuple[str, str]:  # site naming for reports
        return (self.first.edge.held_class, self.first.edge.acquired_class)

    def static_id(self) -> tuple:
        methods = sorted([self.first.method_id(), self.second.method_id()])
        return (tuple(methods), self.field)

    def describe(self) -> str:
        return (
            f"[deadlock] {self.first.describe()}  <->  {self.second.describe()}"
        )


def _usable(edge: LockEdge) -> bool:
    """The documented restriction: held == receiver, acquired settable."""
    if edge.held_path is None or edge.acquired_path is None:
        return False
    if edge.held_path.root != RECEIVER or edge.held_path.fields:
        return False
    if edge.acquired_path.root == RECEIVER and edge.acquired_path.fields:
        return edge.acquired_chain is not None
    # Bare parameter lock: synchronized(param).
    return edge.acquired_path.root > 0 and not edge.acquired_path.fields


def generate_deadlock_pairs(
    summaries: list[LockOrderSummary],
    target_class: str | None = None,
) -> list[DeadlockPair]:
    """Enumerate deduplicated opposite-order lock pairs."""
    sides: list[DeadlockSide] = []
    seen_sides: set[tuple] = set()
    for summary in summaries:
        if summary.is_constructor:
            continue
        if target_class is not None and summary.class_name != target_class:
            continue
        for edge in summary.edges:
            if not _usable(edge):
                continue
            key = (summary.method_id(), edge.held_site, edge.acquired_site)
            if key in seen_sides:
                continue
            seen_sides.add(key)
            sides.append(DeadlockSide(summary, edge))

    pairs: dict[tuple, DeadlockPair] = {}
    for i, first in enumerate(sides):
        for second in sides[i:]:
            if first.edge.class_pair() != tuple(
                reversed(second.edge.class_pair())
            ):
                continue
            pair = DeadlockPair(
                first=first,
                second=second,
                same_site=(
                    first.method_id() == second.method_id()
                    and first.edge.acquired_site == second.edge.acquired_site
                ),
            )
            existing = pairs.setdefault(pair.static_id(), pair)
            existing.site_pairs.add(
                tuple(sorted((first.edge.acquired_site, second.edge.acquired_site)))
            )
    return sorted(pairs.values(), key=lambda p: p.static_id())


class DeadlockContextDeriver:
    """Derives crossed-sharing plans for deadlock pairs."""

    def __init__(self, analysis: AnalysisResult, table: ClassTable) -> None:
        self._deriver = ContextDeriver(analysis, table)

    def derive(self, pair: DeadlockPair) -> TestPlan | None:
        """Build a crossed plan, or None when context is underivable."""
        # Placeholder for side1's acquired lock (= side2's receiver).
        placeholder = ObjectSlot(
            pair.first.edge.acquired_class, note="crossed"
        )
        left = self._solve_side(pair.first, placeholder)
        if left is None:
            return None
        right = self._solve_side(pair.second, left.racy_call.receiver)
        if right is None:
            return None
        # Close the cycle: everywhere side1 used the placeholder, it
        # must actually be side2's receiver.
        _substitute_slot(left, placeholder, right.racy_call.receiver)
        return TestPlan(
            pair=pair,  # duck-typed: describe()/static_id()/field/site_pairs
            left=left,
            right=right,
            shared_slot=left.racy_call.receiver,
            receivers_shared=False,
        )

    def _solve_side(self, side: DeadlockSide, payload: ObjectSlot) -> SidePlan | None:
        summary = side.summary
        edge = side.edge
        acquired = edge.acquired_path
        assert acquired is not None

        arg_count = _param_count(summary)
        racy_args: list = [SeedArg(i) for i in range(arg_count)]

        if acquired.root == RECEIVER:
            chain = edge.acquired_chain
            assert chain is not None
            solved = self._deriver._solve_path(  # noqa: SLF001
                chain, acquired.fields, payload, 0
            )
            if solved is None:
                return None
            receiver, setter_calls = solved
        else:
            # synchronized(param): pass the payload directly.
            receiver = ObjectSlot(summary.class_name, note="dl-recv")
            racy_args[acquired.root - 1] = SlotArg(payload)
            setter_calls = []

        racy_call = PlannedCall(
            summary=_summary_shim(summary, arg_count),
            receiver=receiver,
            args=racy_args,
        )
        return SidePlan(
            side=side,  # duck-typed where SidePlan consumers need it
            setter_calls=setter_calls,
            racy_call=racy_call,
            shared_depth=acquired.depth,
            full_context=True,
        )


def _param_count(summary: LockOrderSummary) -> int:
    return summary.arg_count


def _summary_shim(summary: LockOrderSummary, arg_count: int):
    """Adapter giving PlannedCall the fields the Materializer reads."""

    class _Shim:
        test_name = summary.test_name
        ordinal = summary.ordinal
        class_name = summary.class_name
        method = summary.method
        is_constructor = summary.is_constructor
        arg_refs = tuple([None] * arg_count)

        def method_id(self):
            return (summary.class_name, summary.method)

    return _Shim()


def _substitute_slot(side: SidePlan, old: ObjectSlot, new: ObjectSlot) -> None:
    """Replace every reference to ``old`` with ``new`` in a side plan."""
    for call in side.all_calls():
        if call.receiver is old:
            call.receiver = new
        if call.produces is old:
            call.produces = new
        call.args = [
            SlotArg(new) if isinstance(a, SlotArg) and a.slot is old else a
            for a in call.args
        ]
