"""GoodLock-style potential-deadlock detection on concurrent runs.

Havelund's GoodLock algorithm (and its descendants, e.g. the paper's
citation [11]) builds a lock-order graph from a *single* execution and
reports cycles as potential deadlocks — even when the observed schedule
did not hang.  We implement the classic two-thread variant with gate
locks: edges ``u -> v`` (acquired ``v`` while holding ``u``) from two
different threads in opposite directions are a potential deadlock unless
both acquisitions happened under a common *gate* lock that serializes
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import KernelSpec, SummarySpec, run_sweep
from repro.trace.columnar import OP_LOCK, OP_UNLOCK
from repro.trace.events import Event, LockEvent, UnlockEvent


@dataclass(frozen=True)
class LockOrderEdgeObs:
    """One observed nested acquisition in a concurrent execution."""

    thread_id: int
    held_obj: int
    acquired_obj: int
    gates: frozenset[int]
    """Other locks held at acquisition time (excluding ``held_obj``)."""
    site: int


@dataclass(frozen=True)
class PotentialDeadlock:
    """An opposite-order cycle between two threads."""

    first: LockOrderEdgeObs
    second: LockOrderEdgeObs

    def objects(self) -> tuple[int, int]:
        pair = sorted((self.first.held_obj, self.first.acquired_obj))
        return (pair[0], pair[1])

    def static_key(self) -> tuple:
        sites = tuple(sorted((self.first.site, self.second.site)))
        return ("deadlock", sites)

    def describe(self) -> str:
        return (
            f"potential deadlock on objects #{self.first.held_obj}/"
            f"#{self.first.acquired_obj}: t{self.first.thread_id} orders "
            f"{self.first.held_obj}->{self.first.acquired_obj}, "
            f"t{self.second.thread_id} orders "
            f"{self.second.held_obj}->{self.second.acquired_obj}"
        )


@dataclass
class GoodLockDetector:
    """Listener building the lock-order graph and reporting 2-cycles."""

    name = "goodlock"

    interests = (LockEvent, UnlockEvent)

    edges: list[LockOrderEdgeObs] = field(default_factory=list)
    _held: dict[int, list[int]] = field(default_factory=dict)
    _reported: set[tuple] = field(default_factory=set)
    potential: list[PotentialDeadlock] = field(default_factory=list)

    def on_event(self, event: Event) -> None:
        if isinstance(event, LockEvent):
            stack = self._held.setdefault(event.thread_id, [])
            if event.reentrancy == 1:
                for position, held in enumerate(stack):
                    self._add_edge(
                        LockOrderEdgeObs(
                            thread_id=event.thread_id,
                            held_obj=held,
                            acquired_obj=event.obj,
                            gates=frozenset(stack[:position] + stack[position + 1:]),
                            site=event.node_id,
                        )
                    )
                stack.append(event.obj)
        elif isinstance(event, UnlockEvent):
            if event.reentrancy == 0:
                stack = self._held.get(event.thread_id, [])
                if event.obj in stack:
                    stack.remove(event.obj)

    # ------------------------------------------------------------------
    # Sweep-engine pass protocol (see analysis/sweep.py).  Lock events
    # are a sliver of any trace, so closure handlers over the packed
    # columns (lock: x=obj, y=reentrancy) are fast enough — no codegen
    # fragments needed.

    def kernel_spec(self, packed) -> KernelSpec:
        tids, xs, ys, nodes = packed.tid, packed.x, packed.y, packed.node
        held = self._held
        add_edge = self._add_edge

        def on_lock(i: int) -> None:
            stack = held.setdefault(tids[i], [])
            if ys[i] == 1:
                obj = xs[i]
                for position, held_obj in enumerate(stack):
                    add_edge(
                        LockOrderEdgeObs(
                            thread_id=tids[i],
                            held_obj=held_obj,
                            acquired_obj=obj,
                            gates=frozenset(
                                stack[:position] + stack[position + 1:]
                            ),
                            site=nodes[i],
                        )
                    )
                stack.append(obj)

        def on_unlock(i: int) -> None:
            if ys[i] == 0:
                stack = held.get(tids[i], [])
                if xs[i] in stack:
                    stack.remove(xs[i])

        # Block-summary hooks: state is the per-thread held stacks
        # (lock object ids, no row refs) plus append-only aggregates.
        # A nested acquisition inside an occurrence appends to
        # ``edges`` every time, so len(edges) equality between two
        # occurrences proves the remaining occurrences append nothing
        # — skipping them leaves ``edges``/``potential`` bit-identical.
        return KernelSpec(
            handlers={OP_LOCK: on_lock, OP_UNLOCK: on_unlock},
            summary=SummarySpec(fingerprint_extra=self._summary_extra),
        )

    def _summary_extra(self, touched, canon) -> tuple:
        return (
            tuple(
                (tid, tuple(self._held.get(tid, ())))
                for tid in touched.tids
            ),
            len(self.edges),
            len(self.potential),
        )

    def feed_packed(self, packed, start: int = 0, stop: int | None = None) -> None:
        """Batch twin of :meth:`on_event` over a packed trace (runs as
        a singleton sweep of the fused analysis engine)."""
        run_sweep((self,), packed, start=start, stop=stop)

    def _add_edge(self, edge: LockOrderEdgeObs) -> None:
        for other in self.edges:
            if other.thread_id == edge.thread_id:
                continue
            if (
                other.held_obj == edge.acquired_obj
                and other.acquired_obj == edge.held_obj
                and not (other.gates & edge.gates)
            ):
                candidate = PotentialDeadlock(first=other, second=edge)
                key = candidate.static_key()
                if key not in self._reported:
                    self._reported.add(key)
                    self.potential.append(candidate)
        self.edges.append(edge)

    def __len__(self) -> int:
        return len(self.potential)
