"""Deadlock confirmation: random + directed scheduling of synthesized
deadlock tests.

A synthesized test deadlocks only under schedules where both threads
take their first monitor before either takes its second.  The directed
strategy forces exactly that: run thread 1 until its first acquisition,
then thread 2 until its first acquisition, then alternate — the VM's
built-in deadlock detection reports the hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sweep import interest_union, run_sweep
from repro.deadlock.goodlock import GoodLockDetector, PotentialDeadlock
from repro.lang.classtable import ClassTable
from repro.runtime.scheduler import RandomScheduler, RoundRobinScheduler
from repro.runtime.vm import ThreadStatus
from repro.synth.runner import TestRunner
from repro.synth.synthesizer import SynthesizedTest
from repro.trace.columnar import ColumnarRecorder
from repro.trace.events import LockEvent

DIRECTED_STEP_BUDGET = 10_000

#: Recorder interest set for the deadlock stack (lock/unlock only);
#: recording + sweeping is bit-identical to live GoodLock listening.
_GOODLOCK_INTERESTS = interest_union((GoodLockDetector,))


@dataclass
class DeadlockFuzzReport:
    """Outcome of fuzzing one synthesized deadlock test."""

    test: SynthesizedTest
    random_runs: int = 0
    manifested: int = 0
    """Runs that actually deadlocked."""
    directed_manifested: bool = False
    potential: list[PotentialDeadlock] = field(default_factory=list)
    synthesis_failed: bool = False
    failure_trace: str | None = None
    """Full traceback behind ``synthesis_failed`` (kept for triage)."""

    @property
    def confirmed(self) -> bool:
        return self.manifested > 0 or self.directed_manifested

    def describe(self) -> str:
        status = "CONFIRMED" if self.confirmed else (
            "potential only" if self.potential else "nothing"
        )
        return (
            f"{self.test.name}: {status} "
            f"({self.manifested}/{self.random_runs} random runs deadlocked, "
            f"directed={'yes' if self.directed_manifested else 'no'}, "
            f"{len(self.potential)} potential cycle(s))"
        )


class DeadlockFuzzer:
    """Runs synthesized deadlock tests under hostile schedules."""

    def __init__(
        self, table: ClassTable, random_runs: int = 6, vm_seed: int = 0
    ) -> None:
        self._table = table
        self._random_runs = random_runs
        self._vm_seed = vm_seed

    def fuzz(self, test: SynthesizedTest) -> DeadlockFuzzReport:
        report = DeadlockFuzzReport(test=test)
        try:
            self._random_phase(test, report)
            if not report.manifested:
                report.directed_manifested = self._directed(test, report)
        except Exception as error:
            import traceback

            from repro._util.errors import SynthesisError

            if isinstance(error, SynthesisError):
                report.synthesis_failed = True
                report.failure_trace = traceback.format_exc()
                return report
            raise
        return report

    def _random_phase(self, test, report) -> None:
        seen: set[tuple] = set()
        for run_index in range(self._random_runs):
            goodlock = GoodLockDetector()
            recorder = ColumnarRecorder(test.name, interests=_GOODLOCK_INTERESTS)
            runner = TestRunner(
                self._table, vm_seed=self._vm_seed, listeners=(recorder,)
            )
            outcome = runner.run(
                test, RandomScheduler(seed=run_index * 48_271 + 11)
            )
            run_sweep((goodlock,), recorder.packed)
            report.random_runs += 1
            result = outcome.concurrent_result
            if result is not None and result.deadlocked:
                report.manifested += 1
            for cycle in goodlock.potential:
                if cycle.static_key() not in seen:
                    seen.add(cycle.static_key())
                    report.potential.append(cycle)

    def _directed(self, test, report) -> bool:
        for leader in (0, 1):
            goodlock = GoodLockDetector()
            recorder = ColumnarRecorder(test.name, interests=_GOODLOCK_INTERESTS)
            runner = TestRunner(
                self._table, vm_seed=self._vm_seed, listeners=(recorder,)
            )
            prepared = runner.prepare(test)
            if not prepared.ok:
                return False
            assert prepared.thread_ids is not None
            execution = prepared.execution
            assert execution is not None
            first = prepared.thread_ids[leader]
            second = prepared.thread_ids[1 - leader]
            self._run_until_first_lock(execution, first)
            self._run_until_first_lock(execution, second)
            outcome = runner.finish(prepared, RoundRobinScheduler())
            run_sweep((goodlock,), recorder.packed)
            for cycle in goodlock.potential:
                keys = {c.static_key() for c in report.potential}
                if cycle.static_key() not in keys:
                    report.potential.append(cycle)
            result = outcome.concurrent_result
            if result is not None and result.deadlocked:
                return True
        return False

    @staticmethod
    def _run_until_first_lock(execution, tid) -> None:
        for _ in range(DIRECTED_STEP_BUDGET):
            status = execution.thread(tid).status
            if status is not ThreadStatus.RUNNABLE:
                return
            event = execution.step(tid)
            if isinstance(event, LockEvent):
                return
