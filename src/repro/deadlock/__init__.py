"""Deadlock-test synthesis: the authors' cited sibling technique.

Samak & Ramanathan, *Multithreaded test synthesis for deadlock
detection* (OOPSLA 2014) — reference [22] of the racy-test paper —
applies the same trace-analysis + context-derivation recipe to
deadlocks.  This package reuses the race pipeline's machinery end to
end: lock-order analysis over seed traces, opposite-order pair
generation, crossed-context synthesis, and a GoodLock-equipped fuzzer
whose confirmation signal is the VM's own deadlock detection.
"""

from repro.deadlock.analysis import LockEdge, LockOrderAnalyzer, LockOrderSummary
from repro.deadlock.fuzzer import DeadlockFuzzer, DeadlockFuzzReport
from repro.deadlock.goodlock import GoodLockDetector, PotentialDeadlock
from repro.deadlock.pipeline import DeadlockPipeline
from repro.deadlock.synth import (
    DeadlockContextDeriver,
    DeadlockPair,
    DeadlockSide,
    generate_deadlock_pairs,
)

__all__ = [
    "DeadlockContextDeriver",
    "DeadlockFuzzReport",
    "DeadlockFuzzer",
    "DeadlockPair",
    "DeadlockPipeline",
    "DeadlockSide",
    "GoodLockDetector",
    "LockEdge",
    "LockOrderAnalyzer",
    "LockOrderSummary",
    "PotentialDeadlock",
    "generate_deadlock_pairs",
]
