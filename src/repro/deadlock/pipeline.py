"""End-to-end deadlock-test synthesis pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import analyze_traces
from repro.context.plan import TestPlan
from repro.deadlock.analysis import LockOrderAnalyzer, LockOrderSummary
from repro.deadlock.fuzzer import DeadlockFuzzer, DeadlockFuzzReport
from repro.deadlock.synth import (
    DeadlockContextDeriver,
    DeadlockPair,
    generate_deadlock_pairs,
)
from repro.lang import ClassTable, load
from repro.runtime import VM
from repro.synth import SynthesizedTest, TestSynthesizer
from repro.trace import ColumnarRecorder, PackedTrace


@dataclass
class DeadlockSynthesisReport:
    """Everything the deadlock pipeline produced for one program."""

    lock_summaries: list[LockOrderSummary]
    pairs: list[DeadlockPair]
    plans: list[TestPlan] = field(default_factory=list)
    underivable: list[DeadlockPair] = field(default_factory=list)
    tests: list[SynthesizedTest] = field(default_factory=list)


class DeadlockPipeline:
    """Library + seed suite in, deadlock tests + confirmations out."""

    def __init__(self, source_or_table: str | ClassTable, seed: int = 0) -> None:
        if isinstance(source_or_table, str):
            self.table = load(source_or_table)
        else:
            self.table = source_or_table
        self.seed = seed
        self._traces: list[PackedTrace] | None = None

    def run_seed_suite(self) -> list[PackedTrace]:
        """Record the seed suite as packed traces (full interest set).

        Both downstream analyses — lock-order extraction and the race
        analysis feeding the setter database — consume the packed form
        through the sweep engine / packed analyzer paths.
        """
        if self._traces is None:
            traces = []
            for test in self.table.program.tests:
                vm = VM(self.table, seed=self.seed)
                recorder = ColumnarRecorder.create(test.name)
                vm.run_test(test.name, listeners=(recorder,))
                traces.append(recorder.packed)
            self._traces = traces
        return self._traces

    def synthesize(self, target_class: str | None = None) -> DeadlockSynthesisReport:
        traces = self.run_seed_suite()
        lock_summaries = LockOrderAnalyzer().analyze_all(traces)
        pairs = generate_deadlock_pairs(lock_summaries, target_class=target_class)
        # The setter database comes from the *race* analysis of the same
        # traces — the whole point of the shared infrastructure.
        deriver = DeadlockContextDeriver(analyze_traces(traces), self.table)
        report = DeadlockSynthesisReport(
            lock_summaries=lock_summaries, pairs=pairs
        )
        for pair in pairs:
            plan = deriver.derive(pair)
            if plan is None:
                report.underivable.append(pair)
            else:
                report.plans.append(plan)
        report.tests = TestSynthesizer(
            self.table, name_prefix="Deadlock"
        ).synthesize(report.plans)
        return report

    def confirm(
        self, report: DeadlockSynthesisReport, random_runs: int = 6
    ) -> list[DeadlockFuzzReport]:
        fuzzer = DeadlockFuzzer(
            self.table, random_runs=random_runs, vm_seed=self.seed
        )
        return [fuzzer.fuzz(test) for test in report.tests]
