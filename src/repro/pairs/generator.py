"""Stage 2a of Narada: the Pair Generator (§3.3).

From the analyzed summaries, enumerate *potential racy access pairs*.
An unprotected access ``u`` at label ``ℓ`` can race with:

* a concurrent execution of ``ℓ`` itself from a second thread (when the
  access is a write), or
* any other access — protected or not — of the same field from any
  client-invokable method, provided at least one of the two is a write.

Accesses found inside constructors are discarded (§4: "We treat
constructor as any other method to help set the context, but discard
unprotected accesses found in them while building the racing pairs").

Pairs are deduplicated by their static identity (method, site, field),
so re-running a seed test does not inflate the pair count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.model import AccessRecord, AnalysisResult, MethodSummary


@dataclass(frozen=True)
class PairSide:
    """One side of a racy pair: an access within a client invocation."""

    summary: MethodSummary
    access: AccessRecord

    def method_id(self) -> tuple[str, str]:
        return self.summary.method_id()

    def static_id(self) -> tuple[str, str, int]:
        cls, method = self.method_id()
        return (cls, method, self.access.node_id)

    def describe(self) -> str:
        cls, method = self.method_id()
        return f"{cls}.{method}:{self.access.describe()}"


@dataclass
class RacyPair:
    """A potential race between two *method invocations* on one field.

    The paper counts racing pairs at the granularity a test needs: which
    two methods must run concurrently, racing on which field (multiple
    unprotected accesses of the same field within a method belong to one
    pair, §5).  ``first``/``second`` are representative accesses;
    ``site_pairs`` keeps every concrete static site combination so the
    race-directed fuzzer can target all of them.

    ``first`` is always an unprotected access.  ``same_site`` marks
    pairs whose representative sides are one static access executed by
    two threads.
    """

    first: PairSide
    second: PairSide
    field: tuple[str, str]
    same_site: bool
    site_pairs: set[tuple[int, int]] = field(default_factory=set)

    def static_id(self) -> tuple:
        methods = sorted([self.first.method_id(), self.second.method_id()])
        return (tuple(methods), self.field)

    def involves_write(self) -> bool:
        return self.first.access.is_write or self.second.access.is_write

    def method_ids(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return (self.first.method_id(), self.second.method_id())

    def add_sites(self, first_site: int, second_site: int) -> None:
        self.site_pairs.add(
            (min(first_site, second_site), max(first_site, second_site))
        )

    def describe(self) -> str:
        kind = "same-site" if self.same_site else "cross-site"
        return (
            f"[{kind}] {self.field[0]}.{self.field[1]}: "
            f"{self.first.describe()}  <->  {self.second.describe()}"
        )


def _field_identity(access: AccessRecord) -> tuple:
    """Static field identity, refined for builtin array slots.

    Every ``IntArray`` in the program shares the runtime class
    ``(IntArray, elem)``; to avoid pairing unrelated buffers we extend
    the identity of array accesses with the field under which the array
    was reached (e.g. ``Ithis.buf.elem`` -> hint ``buf``).
    """
    base = (access.class_name, access.field_name)
    if access.field_name != "elem":
        return base
    hint = None
    if access.access_path is not None and access.access_path.depth >= 2:
        hint = access.access_path.fields[-2]
    return base + (hint,)


def _eligible(access: AccessRecord) -> bool:
    return not access.in_constructor


def _canonical(pair: RacyPair) -> RacyPair:
    """Orient a symmetric pair deterministically.

    ``static_id`` sorts its method ids, so the *identity* of a pair was
    always order-invariant — but the representative ``first``/``second``
    orientation used to depend on which side the seed-trace enumeration
    reached first.  When both sides are eligible seeds (unprotected,
    non-constructor), pin the orientation to the smaller static id so
    the same program yields the same representative regardless of seed
    ordering.  One-sided pairs keep the unprotected access first (the
    documented invariant).
    """
    if pair.same_site:
        return pair
    second = pair.second.access
    if not (second.unprotected and not second.in_constructor):
        return pair
    if pair.second.static_id() < pair.first.static_id():
        return RacyPair(
            first=pair.second,
            second=pair.first,
            field=pair.field,
            same_site=pair.same_site,
            site_pairs=pair.site_pairs,
        )
    return pair


class PairGenerator:
    """Builds the set of potential racy access pairs from an analysis."""

    def __init__(self, analysis: AnalysisResult) -> None:
        self._analysis = analysis

    def generate(self, target_class: str | None = None) -> list[RacyPair]:
        """Enumerate deduplicated racy pairs.

        Args:
            target_class: when given, only pairs whose *seeding
                unprotected access* lives in an invocation on this class
                are produced (how the paper evaluates one class at a
                time, Table 4).
        """
        sides = self._collect_sides(target_class)
        by_field = self._index_by_field(target_class)

        pairs: dict[tuple, RacyPair] = {}

        def record(pair: RacyPair) -> None:
            existing = pairs.setdefault(pair.static_id(), _canonical(pair))
            existing.add_sites(
                pair.first.access.node_id, pair.second.access.node_id
            )

        for unprotected in sides:
            u_access = unprotected.access
            if u_access.is_write:
                record(
                    RacyPair(
                        first=unprotected,
                        second=unprotected,
                        field=_field_identity(u_access)[:2],
                        same_site=True,
                    )
                )
            for other in by_field.get(_field_identity(u_access), ()):
                if other.access.label == u_access.label:
                    continue
                if not (u_access.is_write or other.access.is_write):
                    continue
                record(
                    RacyPair(
                        first=unprotected,
                        second=other,
                        field=_field_identity(u_access)[:2],
                        same_site=(other.static_id() == unprotected.static_id()),
                    )
                )
        return sorted(pairs.values(), key=lambda p: p.static_id())

    # ------------------------------------------------------------------

    def _collect_sides(self, target_class: str | None) -> list[PairSide]:
        """Unprotected, non-constructor accesses that seed pairs."""
        seen: set[tuple] = set()
        sides: list[PairSide] = []
        for summary in self._analysis:
            if target_class is not None and summary.class_name != target_class:
                continue
            for access in summary.unprotected_accesses():
                side = PairSide(summary, access)
                if side.static_id() in seen:
                    continue
                seen.add(side.static_id())
                sides.append(side)
        # Canonical enumeration order: the representative access chosen
        # for each deduplicated pair must not depend on which seed test
        # the analysis happened to stream first.
        sides.sort(key=lambda s: s.static_id())
        return sides

    def _index_by_field(
        self, target_class: str | None = None
    ) -> dict[tuple, list[PairSide]]:
        """All eligible accesses indexed by field identity (dedup'd).

        With a target class, partner accesses are restricted to
        invocations on that class too — the paper analyzes and pairs one
        class at a time (Table 4).
        """
        index: dict[tuple, list[PairSide]] = {}
        seen: set[tuple] = set()
        for summary in self._analysis:
            if target_class is not None and summary.class_name != target_class:
                continue
            for access in summary.accesses:
                if not _eligible(access):
                    continue
                side = PairSide(summary, access)
                key = side.static_id()
                if key in seen:
                    continue
                seen.add(key)
                index.setdefault(_field_identity(access), []).append(side)
        for partners in index.values():
            partners.sort(key=lambda s: s.static_id())
        return index


def generate_pairs(
    analysis: AnalysisResult,
    target_class: str | None = None,
    *,
    table=None,
    facts=None,
    static_filter: bool = True,
):
    """Stage the candidate pipeline: generate, then statically judge.

    Returns a :class:`repro.static.filter.CandidateSet` — a list of
    :class:`RacyPair` (so legacy callers keep working) carrying one
    :class:`PairVerdict` per pair when the static pre-filter ran.
    The filter runs when a class ``table`` (or precomputed ``facts``)
    is supplied and ``static_filter`` is true; otherwise the verdict
    list is empty and downstream stages treat every pair as ranked.
    """
    from repro.static.facts import analyze_program
    from repro.static.filter import CandidateSet, evaluate_pairs

    pairs = PairGenerator(analysis).generate(target_class)
    if not static_filter or (table is None and facts is None):
        return CandidateSet(pairs)
    if facts is None:
        facts = analyze_program(table)
    return evaluate_pairs(pairs, facts)
