"""Stage 2a of Narada: potential racy access pair generation (§3.3)."""

from repro.pairs.generator import PairGenerator, PairSide, RacyPair, generate_pairs

__all__ = ["PairGenerator", "PairSide", "RacyPair", "generate_pairs"]
