"""Thread schedulers for the MiniJ VM.

A scheduler picks which runnable thread advances by one event.  Because
the VM is deterministic, a (program, scheduler) pair always reproduces
the same execution — the property the RaceFuzzer-style confirmation and
the replay tests rely on.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence


class Scheduler(Protocol):
    """Strategy interface: choose the next thread to advance."""

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        """Pick a thread id from ``runnable`` (never empty).

        Args:
            runnable: ids of threads that can make progress.
            last: the thread advanced on the previous step, or None.
        """
        ...  # pragma: no cover - protocol


class RoundRobinScheduler:
    """Advance threads in cyclic id order, one event each."""

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        ordered = sorted(runnable)
        if last is None:
            return ordered[0]
        for tid in ordered:
            if tid > last:
                return tid
        return ordered[0]


class SequentialScheduler:
    """Run the lowest-id runnable thread to completion before the next.

    This is the scheduler used to obtain *sequential* executions (seed
    traces, and the linearizations the ConTeGe oracle compares against).
    """

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        if last is not None and last in runnable:
            return last
        return min(runnable)


class RandomScheduler:
    """Uniformly random scheduling from a seeded stream.

    With ``switch_bias`` below 1.0 the scheduler prefers staying on the
    current thread, producing longer atomic blocks (closer to how real
    preemption looks) while still exploring interleavings.
    """

    def __init__(self, seed: int = 0, switch_bias: float = 1.0) -> None:
        self._rng = random.Random(seed)
        self._switch_bias = switch_bias

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        if (
            last is not None
            and last in runnable
            and self._switch_bias < 1.0
            and self._rng.random() >= self._switch_bias
        ):
            return last
        return self._rng.choice(list(runnable))


class FixedScheduler:
    """Replay a recorded schedule; falls back when the script runs dry.

    The script is a list of thread ids.  When the scripted id is not
    runnable (or the script is exhausted) the fallback scheduler decides.
    """

    def __init__(self, script: Sequence[int], fallback: Scheduler | None = None) -> None:
        self._script = list(script)
        self._pos = 0
        self._fallback = fallback or RoundRobinScheduler()

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        while self._pos < len(self._script):
            tid = self._script[self._pos]
            self._pos += 1
            if tid in runnable:
                return tid
        return self._fallback.pick(runnable, last)


class PreferredScheduler:
    """Run one preferred thread whenever possible.

    The race-directed fuzzer uses two of these in sequence: drive thread
    A until it performs the first access of a candidate pair, then switch
    preference to thread B until it performs the second.
    """

    def __init__(self, preferred: int, fallback: Scheduler | None = None) -> None:
        self.preferred = preferred
        self._fallback = fallback or RoundRobinScheduler()

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        if self.preferred in runnable:
            return self.preferred
        return self._fallback.pick(runnable, last)
