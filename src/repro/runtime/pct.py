"""PCT: the priority-based probabilistic concurrency testing scheduler.

Burckhardt et al., *A randomized scheduler with probabilistic guarantees
of finding bugs* (ASPLOS 2010) — one of the systematic-testing systems
the paper names as a consumer of its synthesized tests (§6).  PCT gives
each thread a random priority and always runs the highest-priority
runnable thread, lowering the priority at ``d-1`` random *change points*
spread over the expected execution length.  For a bug of depth ``d`` it
guarantees detection probability >= 1/(n * k^(d-1)) for n threads and k
steps.

Data races are depth-2 bugs, so PCT with d=2 needs a single change
point — which is why it confirms the synthesized races in very few
schedules (see ``bench_schedulers.py``).
"""

from __future__ import annotations

import random
from typing import Sequence


class PCTScheduler:
    """Priority-based probabilistic concurrency testing.

    Args:
        seed: randomness for priorities and change points.
        depth: the targeted bug depth ``d`` (data races: 2).
        expected_steps: estimate of the execution length ``k``; change
            points are drawn uniformly from [1, expected_steps].
    """

    def __init__(self, seed: int = 0, depth: int = 2, expected_steps: int = 1000) -> None:
        self._rng = random.Random(seed)
        self._priorities: dict[int, float] = {}
        self._steps = 0
        self._change_points = sorted(
            self._rng.randrange(1, max(2, expected_steps))
            for _ in range(max(0, depth - 1))
        )
        self._next_change = 0

    def _priority(self, tid: int) -> float:
        if tid not in self._priorities:
            # Fresh threads draw a random high priority band.
            self._priorities[tid] = 1.0 + self._rng.random()
        return self._priorities[tid]

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        self._steps += 1
        if (
            self._next_change < len(self._change_points)
            and self._steps >= self._change_points[self._next_change]
        ):
            self._next_change += 1
            if last is not None:
                # Demote the current thread below everything else.
                self._priorities[last] = self._rng.random() - 1.0
        return max(runnable, key=self._priority)
