"""Schedule recording and deterministic replay.

RaceFuzzer's practical value is not just flagging a race but handing the
developer a *reproducer*.  A :class:`RecordingScheduler` wraps any
scheduler and logs the exact thread choice sequence; replaying the log
through a :class:`repro.runtime.scheduler.FixedScheduler` on a fresh VM
(same VM seed => same materialization) reproduces the execution — and
therefore the race — deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.runtime.scheduler import FixedScheduler, Scheduler


@dataclass
class ScheduleLog:
    """The recorded thread-choice sequence of one execution."""

    choices: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.choices)

    def replayer(self) -> FixedScheduler:
        """A scheduler that replays this log verbatim."""
        return FixedScheduler(self.choices)


class RecordingScheduler:
    """Wraps a scheduler, logging every decision for replay."""

    def __init__(self, inner: Scheduler) -> None:
        self._inner = inner
        self.log = ScheduleLog()

    def pick(self, runnable: Sequence[int], last: int | None) -> int:
        choice = self._inner.pick(runnable, last)
        self.log.choices.append(choice)
        return choice
