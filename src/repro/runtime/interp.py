"""Generator-based small-step interpreter for MiniJ.

Every *visible action* (field access, lock, unlock, call, return, alloc)
is ``yield``-ed as a trace event; the scheduler advances a thread by one
event at a time.  Purely local computation between two events executes
atomically — which matches the memory model relevant for races: only
shared-memory and synchronization operations are interleaving points.

Because of this structure, ``count = count + 1`` really is a READ event
followed by a WRITE event with a schedulable gap in between, so lost
updates and other classic races manifest concretely in the VM.

Hot-path architecture (see DESIGN.md, "Performance architecture"):

* **Purity fast path** — expressions and statements that cannot emit an
  event (no field access, call, allocation, or class-typed ``rand()``)
  are classified once per AST node and then evaluated by plain recursive
  functions instead of generators.  This removes the generator-creation
  and ``yield from`` delegation cost for the local computation between
  two events without moving any interleaving point: pure code never
  yielded in the first place.
* **Type-keyed dispatch** — statement and expression handlers are looked
  up in ``dict``s keyed on the node's class, replacing the long
  ``isinstance`` chains.
* **Resolution caches** — method lookup, constructor lookup, and the
  per-class field-layout dicts used at allocation are memoized per
  (class, name) so the AST is never re-scanned on the hot path.
* **Event-construction elision** — when the driving
  :class:`~repro.runtime.vm.Execution` reports that no listener
  subscribes to an event kind, the interpreter burns the label and
  yields :data:`~repro.trace.events.SKIPPED_EVENT` instead of building
  the event object.  Labels and yield points are unchanged, so the
  observable stream (and any recorded golden trace) is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro._util.errors import MiniJRuntimeError
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.runtime.heap import Heap, HeapObject
from repro.runtime.values import ObjRef, Value, values_equal
from repro.trace.events import (
    SKIPPED_EVENT,
    AllocEvent,
    BlockedEvent,
    Event,
    InvokeEvent,
    LockEvent,
    NotifyEvent,
    ReadEvent,
    ReturnEvent,
    UnlockEvent,
    WaitEvent,
    WriteEvent,
)

#: Default bound on nested library calls per thread.  Each MiniJ frame
#: costs a dozen-plus Python frames in the ``yield from`` delegation
#: chain, so this is kept well below Python's own recursion limit (which
#: the VM also raises defensively).
MAX_CALL_DEPTH = 64

_MISSING = object()


@dataclass(slots=True)
class Frame:
    """One activation record.

    ``call_index`` scopes the invocation (0 = client level); ``depth`` is
    the library-call nesting depth (client = 0).
    """

    locals: dict[str, Value] = field(default_factory=dict)
    this: ObjRef | None = None
    class_name: str = ""
    method: str = ""
    call_index: int = 0
    depth: int = 0
    is_constructor: bool = False
    returned: bool = False
    return_value: Value = None

    @property
    def is_client(self) -> bool:
        return self.call_index == 0


@dataclass
class ForkRequest:
    """Yielded by the interpreter when client code executes ``fork {}``.

    Not a trace event: the Execution intercepts it, spawns the child
    thread (emitting the real ForkEvent), and resumes the parent.  The
    child runs ``stmts`` over ``env`` — a snapshot of the parent's
    client variables at fork time (Java capture-by-value semantics).
    """

    stmts: list
    env: dict
    node_id: int


@dataclass(slots=True)
class ThreadContext:
    """Per-thread interpreter state shared across frames."""

    thread_id: int
    #: Monitor reentrancy per held object ref.
    held: dict[int, int] = field(default_factory=dict)
    #: Number of constructor frames on the stack (>0 => "in constructor").
    ctor_depth: int = 0
    #: Cached ``frozenset(held)``; invalidated on every lock transition
    #: so back-to-back accesses under a stable lockset share one set.
    locks_cache: frozenset[int] | None = None

    def locks_held(self) -> frozenset[int]:
        cache = self.locks_cache
        if cache is None:
            cache = self.locks_cache = frozenset(self.held)
        return cache


class Interpreter:
    """Executes MiniJ code for one VM, one generator per thread.

    The interpreter does not schedule anything itself: callers drive the
    generators returned by :meth:`run_client_stmts` and receive events.
    """

    def __init__(self, table: ClassTable, heap: Heap, rng, label_source) -> None:
        """
        Args:
            table: the resolved program.
            heap: the shared heap.
            rng: a ``random.Random`` used only by ``rand()``.
            label_source: zero-argument callable returning the next
                global trace label.
        """
        self._table = table
        self._heap = heap
        self._rng = rng
        self._next_label = label_source
        self._next_call_index = 1
        self.max_call_depth = MAX_CALL_DEPTH

        # Event-construction elision flags (managed by Execution.run).
        self._emit_invoke = True
        self._emit_return = True
        self._emit_alloc = True
        self._emit_read = True
        self._emit_write = True

        # Per-class resolution caches.
        self._method_cache: dict[tuple[str, str], ast.MethodDecl | None] = {}
        self._ctor_cache: dict[str, ast.MethodDecl | None] = {}
        self._field_types_cache: dict[str, dict[str, str]] = {}
        self._field_inits_cache: dict[str, tuple[ast.FieldDecl, ...]] = {}

        # Type-keyed dispatch tables (replace isinstance chains).
        self._exec_table = {
            ast.Block: self._exec_block,
            ast.VarDecl: self._exec_vardecl,
            ast.AssignVar: self._exec_assignvar,
            ast.AssignField: self._exec_field_write,
            ast.If: self._exec_if,
            ast.While: self._exec_while,
            ast.Return: self._exec_return,
            ast.Sync: self._exec_sync,
            ast.Assert: self._exec_assert,
            ast.Fork: self._exec_fork,
            ast.ExprStmt: self._exec_exprstmt,
        }
        self._eval_table = {
            ast.Rand: self._eval_rand,
            ast.FieldGet: self._eval_field_get,
            ast.New: self._eval_new,
            ast.Call: self._eval_call,
            ast.Binary: self._eval_binary,
            ast.Unary: self._eval_unary,
            # Pure node kinds appear here too so that _eval stays correct
            # when handed one directly.
            ast.IntLit: self._eval_pure_gen,
            ast.BoolLit: self._eval_pure_gen,
            ast.NullLit: self._eval_pure_gen,
            ast.This: self._eval_pure_gen,
            ast.VarRef: self._eval_pure_gen,
        }
        self._pure_table = {
            ast.IntLit: self._pure_intlit,
            ast.BoolLit: self._pure_intlit,  # same shape: .value
            ast.NullLit: self._pure_nulllit,
            ast.This: self._pure_this,
            ast.VarRef: self._pure_varref,
            ast.Rand: self._pure_rand,
            ast.Binary: self._pure_binary,
            ast.Unary: self._pure_unary,
        }
        self._pure_exec_table = {
            ast.Block: self._pure_block,
            ast.VarDecl: self._pure_vardecl,
            ast.AssignVar: self._pure_assignvar,
            ast.If: self._pure_if,
            ast.While: self._pure_while,
            ast.Return: self._pure_return,
            ast.Assert: self._pure_assert,
            ast.ExprStmt: self._pure_exprstmt,
        }

    # ------------------------------------------------------------------
    # Event-construction elision (driven by Execution.run).

    def set_emit_filter(self, wanted: set[type] | None) -> None:
        """Restrict which high-volume event kinds are materialized.

        ``wanted`` is the set of event classes some listener subscribes
        to, or None for "construct everything".  Matching is
        subclass-aware, so an interest in ``AccessEvent`` keeps both
        reads and writes materialized.  Only the five data kinds are
        ever elided; synchronization events are always built because
        the Execution itself inspects them.
        """
        if wanted is None:
            self._emit_invoke = self._emit_return = self._emit_alloc = True
            self._emit_read = self._emit_write = True
        else:
            def want(cls: type) -> bool:
                return any(issubclass(cls, interest) for interest in wanted)

            self._emit_invoke = want(InvokeEvent)
            self._emit_return = want(ReturnEvent)
            self._emit_alloc = want(AllocEvent)
            self._emit_read = want(ReadEvent)
            self._emit_write = want(WriteEvent)

    # ------------------------------------------------------------------
    # Purity classification.

    def _expr_pure(self, expr: ast.Expr) -> bool:
        pure = getattr(expr, "_rt_pure", None)
        if pure is None:
            pure = self._classify_expr(expr)
            expr._rt_pure = pure
        return pure

    def _stmt_pure(self, stmt: ast.Stmt) -> bool:
        pure = getattr(stmt, "_rt_pure", None)
        if pure is None:
            pure = self._classify_stmt(stmt)
            stmt._rt_pure = pure
        return pure

    def _classify_expr(self, expr: ast.Expr) -> bool:
        cls = expr.__class__
        if cls in (ast.IntLit, ast.BoolLit, ast.NullLit, ast.This, ast.VarRef):
            return True
        if cls is ast.Rand:
            result_type = expr.result_type
            return result_type is None or result_type.kind != "class"
        if cls is ast.Binary:
            return self._classify_expr(expr.left) and self._classify_expr(expr.right)
        if cls is ast.Unary:
            return self._classify_expr(expr.operand)
        # FieldGet, New, Call — all emit events.
        return False

    def _classify_stmt(self, stmt: ast.Stmt) -> bool:
        cls = stmt.__class__
        if cls is ast.Block:
            return all(self._stmt_pure(s) for s in stmt.stmts)
        if cls is ast.VarDecl:
            return stmt.init is None or self._classify_expr(stmt.init)
        if cls is ast.AssignVar:
            return self._classify_expr(stmt.value)
        if cls is ast.If:
            return (
                self._classify_expr(stmt.cond)
                and self._stmt_pure(stmt.then_body)
                and (stmt.else_body is None or self._stmt_pure(stmt.else_body))
            )
        if cls is ast.While:
            return self._classify_expr(stmt.cond) and self._stmt_pure(stmt.body)
        if cls is ast.Return:
            return stmt.value is None or self._classify_expr(stmt.value)
        if cls is ast.Assert:
            return self._classify_expr(stmt.cond)
        if cls is ast.ExprStmt:
            return self._classify_expr(stmt.expr)
        # AssignField, Sync, Fork — all emit events (or fork).
        return False

    # ------------------------------------------------------------------
    # Entry points.

    def run_client_stmts(
        self, stmts: list[ast.Stmt], thread: ThreadContext, env: dict[str, Value]
    ) -> Iterator[Event]:
        """Execute client (test body) statements in the given thread.

        ``env`` is the client variable environment; it is mutated in
        place so callers can observe client variables afterwards (this is
        how the synthesizer's ``collectObjects`` captures references).
        """
        frame = Frame(locals=env, call_index=0, depth=0, class_name="<client>",
                      method="<client>")
        exec_table = self._exec_table
        for stmt in stmts:
            if self._stmt_pure(stmt):
                self._exec_pure(stmt, frame, thread)
            else:
                yield from exec_table[stmt.__class__](stmt, frame, thread)
            if frame.returned:
                break

    def call_method(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        method_name: str,
        args: list[Value],
        from_client: bool = True,
        caller_depth: int = 0,
        node_id: int = -1,
        caller_call_index: int = 0,
    ) -> Iterator[Event]:
        """Invoke ``receiver.method(args)`` directly (no client statement).

        Used by synthesized-test thread bodies and the fuzzer.  The
        generator's return value is the method's return value.
        """
        return self._invoke(
            thread,
            receiver,
            method_name,
            args,
            from_client=from_client,
            caller_depth=caller_depth,
            node_id=node_id,
            caller_call_index=caller_call_index,
        )

    # ------------------------------------------------------------------
    # Statement execution (impure path: generators).

    def _exec(self, stmt: ast.Stmt, frame: Frame, thread: ThreadContext):
        """Execute one statement; generic entry kept for compatibility."""
        if self._stmt_pure(stmt):
            self._exec_pure(stmt, frame, thread)
            return
        yield from self._exec_table[stmt.__class__](stmt, frame, thread)

    def _exec_block(self, stmt: ast.Block, frame: Frame, thread: ThreadContext):
        exec_table = self._exec_table
        for inner in stmt.stmts:
            if self._stmt_pure(inner):
                self._exec_pure(inner, frame, thread)
            else:
                yield from exec_table[inner.__class__](inner, frame, thread)
            if frame.returned:
                return

    def _exec_vardecl(self, stmt: ast.VarDecl, frame: Frame, thread: ThreadContext):
        # Impure path: stmt.init is present and emits events (a pure or
        # absent initializer is handled by _pure_vardecl).
        value = yield from self._eval_table[stmt.init.__class__](
            stmt.init, frame, thread
        )
        frame.locals[stmt.name] = value

    def _exec_assignvar(self, stmt: ast.AssignVar, frame: Frame, thread: ThreadContext):
        value = yield from self._eval_table[stmt.value.__class__](
            stmt.value, frame, thread
        )
        frame.locals[stmt.name] = value

    def _exec_if(self, stmt: ast.If, frame: Frame, thread: ThreadContext):
        cond_expr = stmt.cond
        if self._expr_pure(cond_expr):
            cond = self._eval_pure(cond_expr, frame, thread)
        else:
            cond = yield from self._eval_table[cond_expr.__class__](
                cond_expr, frame, thread
            )
        self._require_bool(cond, stmt.line, thread)
        branch = stmt.then_body if cond else stmt.else_body
        if branch is None:
            return
        if self._stmt_pure(branch):
            self._exec_pure(branch, frame, thread)
        else:
            yield from self._exec_table[branch.__class__](branch, frame, thread)

    def _exec_while(self, stmt: ast.While, frame: Frame, thread: ThreadContext):
        cond_expr = stmt.cond
        body = stmt.body
        cond_pure = self._expr_pure(cond_expr)
        body_pure = self._stmt_pure(body)
        while True:
            if cond_pure:
                cond = self._eval_pure(cond_expr, frame, thread)
            else:
                cond = yield from self._eval_table[cond_expr.__class__](
                    cond_expr, frame, thread
                )
            self._require_bool(cond, stmt.line, thread)
            if not cond:
                break
            if body_pure:
                self._exec_pure(body, frame, thread)
            else:
                yield from self._exec_table[body.__class__](body, frame, thread)
            if frame.returned:
                return

    def _exec_return(self, stmt: ast.Return, frame: Frame, thread: ThreadContext):
        if stmt.value is not None:
            frame.return_value = yield from self._eval_table[stmt.value.__class__](
                stmt.value, frame, thread
            )
        frame.returned = True

    def _exec_assert(self, stmt: ast.Assert, frame: Frame, thread: ThreadContext):
        cond = yield from self._eval_table[stmt.cond.__class__](
            stmt.cond, frame, thread
        )
        self._assert_check(cond, stmt, frame, thread)

    def _exec_fork(self, stmt: ast.Fork, frame: Frame, thread: ThreadContext):
        if not frame.is_client:
            raise MiniJRuntimeError(
                "fork-in-library",
                f"fork at line {stmt.line} outside a test body",
                thread.thread_id,
            )
        yield ForkRequest(
            stmts=stmt.body.stmts,
            env=dict(frame.locals),
            node_id=stmt.node_id,
        )

    def _exec_exprstmt(self, stmt: ast.ExprStmt, frame: Frame, thread: ThreadContext):
        yield from self._eval_table[stmt.expr.__class__](stmt.expr, frame, thread)

    def _assert_check(
        self, cond: Value, stmt: ast.Assert, frame: Frame, thread: ThreadContext
    ) -> None:
        if cond is not True:
            raise MiniJRuntimeError(
                "assertion-failed",
                f"assert at line {stmt.line} in "
                f"{frame.class_name}.{frame.method}",
                thread.thread_id,
            )

    def _exec_field_write(
        self, stmt: ast.AssignField, frame: Frame, thread: ThreadContext
    ):
        target_expr = stmt.target
        if self._expr_pure(target_expr):
            target = self._eval_pure(target_expr, frame, thread)
        else:
            target = yield from self._eval_table[target_expr.__class__](
                target_expr, frame, thread
            )
        obj = self._require_object(target, stmt.line, thread)
        value_expr = stmt.value
        if self._expr_pure(value_expr):
            value = self._eval_pure(value_expr, frame, thread)
        else:
            value = yield from self._eval_table[value_expr.__class__](
                value_expr, frame, thread
            )
        fields = obj.fields
        name = stmt.field_name
        if name not in fields:
            raise MiniJRuntimeError(
                "no-such-field",
                f"{obj.class_name}.{name} at line {stmt.line}",
                thread.thread_id,
            )
        old_value = fields[name]
        fields[name] = value
        if self._emit_write:
            yield WriteEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=stmt.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                class_name=obj.class_name,
                field_name=name,
                value=value,
                old_value=old_value,
                locks_held=thread.locks_held(),
                in_constructor=thread.ctor_depth > 0,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT

    def _exec_sync(self, stmt: ast.Sync, frame: Frame, thread: ThreadContext):
        lock_expr = stmt.lock
        if self._expr_pure(lock_expr):
            lock_value = self._eval_pure(lock_expr, frame, thread)
        else:
            lock_value = yield from self._eval_table[lock_expr.__class__](
                lock_expr, frame, thread
            )
        obj = self._require_object(lock_value, stmt.line, thread)
        yield from self._acquire(obj, frame, thread, stmt.node_id)
        body = stmt.body
        if self._stmt_pure(body):
            self._exec_pure(body, frame, thread)
        else:
            yield from self._exec_table[body.__class__](body, frame, thread)
        yield from self._release(obj, frame, thread, stmt.node_id)

    # ------------------------------------------------------------------
    # Statement execution (pure path: plain recursion, no yields).

    def _exec_pure(self, stmt: ast.Stmt, frame: Frame, thread: ThreadContext) -> None:
        self._pure_exec_table[stmt.__class__](stmt, frame, thread)

    def _pure_block(self, stmt: ast.Block, frame: Frame, thread: ThreadContext) -> None:
        table = self._pure_exec_table
        for inner in stmt.stmts:
            table[inner.__class__](inner, frame, thread)
            if frame.returned:
                return

    def _pure_vardecl(self, stmt: ast.VarDecl, frame: Frame, thread: ThreadContext) -> None:
        if stmt.init is not None:
            frame.locals[stmt.name] = self._eval_pure(stmt.init, frame, thread)
        else:
            frame.locals[stmt.name] = _default_for(stmt.decl_type.kind)

    def _pure_assignvar(self, stmt: ast.AssignVar, frame: Frame, thread: ThreadContext) -> None:
        frame.locals[stmt.name] = self._eval_pure(stmt.value, frame, thread)

    def _pure_if(self, stmt: ast.If, frame: Frame, thread: ThreadContext) -> None:
        cond = self._eval_pure(stmt.cond, frame, thread)
        self._require_bool(cond, stmt.line, thread)
        if cond:
            self._pure_exec_table[stmt.then_body.__class__](
                stmt.then_body, frame, thread
            )
        elif stmt.else_body is not None:
            self._pure_exec_table[stmt.else_body.__class__](
                stmt.else_body, frame, thread
            )

    def _pure_while(self, stmt: ast.While, frame: Frame, thread: ThreadContext) -> None:
        cond_expr = stmt.cond
        body = stmt.body
        body_exec = self._pure_exec_table[body.__class__]
        while True:
            cond = self._eval_pure(cond_expr, frame, thread)
            self._require_bool(cond, stmt.line, thread)
            if not cond:
                return
            body_exec(body, frame, thread)
            if frame.returned:
                return

    def _pure_return(self, stmt: ast.Return, frame: Frame, thread: ThreadContext) -> None:
        if stmt.value is not None:
            frame.return_value = self._eval_pure(stmt.value, frame, thread)
        frame.returned = True

    def _pure_assert(self, stmt: ast.Assert, frame: Frame, thread: ThreadContext) -> None:
        cond = self._eval_pure(stmt.cond, frame, thread)
        self._assert_check(cond, stmt, frame, thread)

    def _pure_exprstmt(self, stmt: ast.ExprStmt, frame: Frame, thread: ThreadContext) -> None:
        self._eval_pure(stmt.expr, frame, thread)

    # ------------------------------------------------------------------
    # Monitors.

    def _acquire(self, obj: HeapObject, frame: Frame, thread: ThreadContext, node_id: int):
        monitor = obj.monitor
        tid = thread.thread_id
        while not monitor.can_acquire(tid):
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=tid,
                node_id=node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=monitor.owner if monitor.owner is not None else -1,
            )
        depth = monitor.acquire(tid)
        held = thread.held
        held[obj.ref] = held.get(obj.ref, 0) + 1
        thread.locks_cache = None
        yield LockEvent(
            label=self._next_label(),
            thread_id=tid,
            node_id=node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=depth,
        )

    def _release(self, obj: HeapObject, frame: Frame, thread: ThreadContext, node_id: int):
        depth = obj.monitor.release(thread.thread_id)
        held = thread.held
        remaining = held.get(obj.ref, 0) - 1
        if remaining <= 0:
            held.pop(obj.ref, None)
        else:
            held[obj.ref] = remaining
        thread.locks_cache = None
        yield UnlockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=depth,
        )

    # ------------------------------------------------------------------
    # Expression evaluation (pure path).

    def _eval_pure(self, expr: ast.Expr, frame: Frame, thread: ThreadContext):
        return self._pure_table[expr.__class__](expr, frame, thread)

    @staticmethod
    def _pure_intlit(expr, frame, thread):
        return expr.value

    @staticmethod
    def _pure_nulllit(expr, frame, thread):
        return None

    @staticmethod
    def _pure_this(expr, frame, thread):
        return frame.this

    @staticmethod
    def _pure_varref(expr, frame, thread):
        try:
            return frame.locals[expr.name]
        except KeyError:
            raise MiniJRuntimeError(
                "undefined-variable",
                f"{expr.name} at line {expr.line}",
                thread.thread_id,
            ) from None

    def _pure_rand(self, expr, frame, thread):
        # Class-typed rand() allocates and is classified impure; only the
        # int draw reaches this path.
        return self._rng.randrange(1 << 16)

    def _pure_unary(self, expr, frame, thread):
        operand = self._eval_pure(expr.operand, frame, thread)
        if expr.op == "!":
            self._require_bool(operand, expr.line, thread)
            return not operand
        self._require_int(operand, expr.line, thread)
        return -operand

    def _pure_binary(self, expr, frame, thread):
        op = expr.op
        if op == "&&":
            left = self._eval_pure(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if not left:
                return False
            right = self._eval_pure(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right
        if op == "||":
            left = self._eval_pure(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if left:
                return True
            right = self._eval_pure(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right
        left = self._eval_pure(expr.left, frame, thread)
        right = self._eval_pure(expr.right, frame, thread)
        return self._apply_binop(op, left, right, expr.line, thread)

    # ------------------------------------------------------------------
    # Expression evaluation (impure path: generators).

    def _eval(self, expr: ast.Expr | None, frame: Frame, thread: ThreadContext):
        """Evaluate one expression; generic entry kept for compatibility."""
        if expr is None:
            return None
        if self._expr_pure(expr):
            return self._eval_pure(expr, frame, thread)
        return (yield from self._eval_table[expr.__class__](expr, frame, thread))

    def _eval_pure_gen(self, expr, frame, thread):
        # Generator-shaped wrapper so _eval_table is total over Expr.
        return self._eval_pure(expr, frame, thread)
        yield  # pragma: no cover - makes this a generator function

    def _eval_unary(self, expr: ast.Unary, frame: Frame, thread: ThreadContext):
        operand = yield from self._eval(expr.operand, frame, thread)
        if expr.op == "!":
            self._require_bool(operand, expr.line, thread)
            return not operand
        self._require_int(operand, expr.line, thread)
        return -operand

    def _eval_rand(self, expr: ast.Rand, frame: Frame, thread: ThreadContext):
        result_type = expr.result_type
        if result_type is not None and result_type.kind == "class":
            class_name = result_type.name
            if self._table.is_interface(class_name) or not self._table.has_class(
                class_name
            ):
                class_name = "Opaque"
            obj = self._alloc_object(class_name, lib_allocated=True)
            if self._emit_alloc:
                yield AllocEvent(
                    label=self._next_label(),
                    thread_id=thread.thread_id,
                    node_id=expr.node_id,
                    call_index=frame.call_index,
                    ref=obj.ref,
                    class_name=obj.class_name,
                    in_library=True,
                )
            else:
                self._next_label()
                yield SKIPPED_EVENT
            return obj.handle()
        return self._rng.randrange(1 << 16)

    def _eval_field_get(self, expr: ast.FieldGet, frame: Frame, thread: ThreadContext):
        target_expr = expr.target
        if self._expr_pure(target_expr):
            target = self._eval_pure(target_expr, frame, thread)
        else:
            target = yield from self._eval_table[target_expr.__class__](
                target_expr, frame, thread
            )
        obj = self._require_object(target, expr.line, thread)
        name = expr.field_name
        fields = obj.fields
        if name not in fields:
            if obj.elements is not None and name == "length":
                return len(obj.elements)
            raise MiniJRuntimeError(
                "no-such-field",
                f"{obj.class_name}.{name} at line {expr.line}",
                thread.thread_id,
            )
        value = fields[name]
        if self._emit_read:
            yield ReadEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                class_name=obj.class_name,
                field_name=name,
                value=value,
                locks_held=thread.locks_held(),
                in_constructor=thread.ctor_depth > 0,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        return value

    def _eval_new(self, expr: ast.New, frame: Frame, thread: ThreadContext):
        args: list[Value] = []
        for arg_expr in expr.args:
            if self._expr_pure(arg_expr):
                args.append(self._eval_pure(arg_expr, frame, thread))
            else:
                arg = yield from self._eval_table[arg_expr.__class__](
                    arg_expr, frame, thread
                )
                args.append(arg)
        class_name = expr.class_name

        if self._table.is_builtin(class_name):
            return (yield from self._alloc_builtin(expr, class_name, args, frame, thread))

        obj = self._alloc_object(class_name, lib_allocated=not frame.is_client)
        if self._emit_alloc:
            yield AllocEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                ref=obj.ref,
                class_name=class_name,
                in_library=not frame.is_client,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        yield from self._run_field_initializers(obj, expr, frame, thread)
        ctor = self._resolve_constructor(class_name)
        if ctor is not None:
            yield from self._invoke_decl(
                thread,
                obj.handle(),
                ctor,
                args,
                from_client=frame.is_client,
                caller_depth=frame.depth,
                node_id=expr.node_id,
                caller_call_index=frame.call_index,
            )
        return obj.handle()

    def _alloc_builtin(
        self,
        expr: ast.New,
        class_name: str,
        args: list[Value],
        frame: Frame,
        thread: ThreadContext,
    ):
        if class_name in ("IntArray", "RefArray"):
            length = args[0]
            self._require_int(length, expr.line, thread)
            elem_kind = "int" if class_name == "IntArray" else "class"
            obj = self._heap.alloc(
                class_name,
                {},
                lib_allocated=not frame.is_client,
                array_length=length,
                array_elem_kind=elem_kind,
            )
        else:  # Opaque
            obj = self._heap.alloc(class_name, {}, lib_allocated=not frame.is_client)
        if self._emit_alloc:
            yield AllocEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                ref=obj.ref,
                class_name=class_name,
                in_library=not frame.is_client,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        return obj.handle()

    def _alloc_object(self, class_name: str, lib_allocated: bool) -> HeapObject:
        field_types = self._field_types_cache.get(class_name)
        if field_types is None:
            if self._table.is_builtin(class_name):
                field_types = {}
            else:
                field_types = {
                    f.name: f.field_type.kind
                    for f in self._table.class_decl(class_name).fields
                }
            self._field_types_cache[class_name] = field_types
        return self._heap.alloc(class_name, field_types, lib_allocated=lib_allocated)

    def _run_field_initializers(
        self, obj: HeapObject, new_expr: ast.New, frame: Frame, thread: ThreadContext
    ):
        """Run declared field initializers as constructor-context writes."""
        inits = self._field_inits_cache.get(obj.class_name)
        if inits is None:
            cls = self._table.class_decl(obj.class_name)
            inits = tuple(f for f in cls.fields if f.init is not None)
            self._field_inits_cache[obj.class_name] = inits
        if not inits:
            # Keep call-index numbering identical to the uncached
            # interpreter, which scoped a (possibly empty) initializer
            # frame for every allocation.
            self._fresh_call_index()
            return
        init_frame = Frame(
            this=obj.handle(),
            class_name=obj.class_name,
            method="<fieldinit>",
            call_index=self._fresh_call_index(),
            depth=frame.depth + 1,
            is_constructor=True,
        )
        thread.ctor_depth += 1
        try:
            for field_decl in inits:
                value = yield from self._eval(field_decl.init, init_frame, thread)
                old_value = obj.fields[field_decl.name]
                obj.fields[field_decl.name] = value
                if self._emit_write:
                    yield WriteEvent(
                        label=self._next_label(),
                        thread_id=thread.thread_id,
                        node_id=new_expr.node_id,
                        call_index=init_frame.call_index,
                        obj=obj.ref,
                        class_name=obj.class_name,
                        field_name=field_decl.name,
                        value=value,
                        old_value=old_value,
                        locks_held=thread.locks_held(),
                        in_constructor=True,
                    )
                else:
                    self._next_label()
                    yield SKIPPED_EVENT
        finally:
            thread.ctor_depth -= 1

    def _eval_call(self, expr: ast.Call, frame: Frame, thread: ThreadContext):
        target_expr = expr.target
        if self._expr_pure(target_expr):
            target = self._eval_pure(target_expr, frame, thread)
        else:
            target = yield from self._eval_table[target_expr.__class__](
                target_expr, frame, thread
            )
        args: list[Value] = []
        for arg_expr in expr.args:
            if self._expr_pure(arg_expr):
                args.append(self._eval_pure(arg_expr, frame, thread))
            else:
                arg = yield from self._eval_table[arg_expr.__class__](
                    arg_expr, frame, thread
                )
                args.append(arg)
        obj = self._require_object(target, expr.line, thread)
        method_name = expr.method
        if (
            method_name in ("wait", "notify", "notifyAll")
            and not args
            and self._resolve_method(obj.class_name, method_name) is None
        ):
            # java.lang.Object condition methods, available on any object.
            return (yield from self._condition_op(obj, expr, frame, thread))
        if self._table.is_builtin(obj.class_name):
            return (yield from self._call_native(obj, expr, args, frame, thread))
        decl = self._resolve_method(obj.class_name, method_name)
        if decl is None:
            raise MiniJRuntimeError(
                "no-such-method",
                f"{obj.class_name}.{method_name}",
                thread.thread_id,
            )
        return (
            yield from self._invoke_decl(
                thread,
                obj.handle(),
                decl,
                args,
                from_client=frame.is_client,
                caller_depth=frame.depth,
                node_id=expr.node_id,
                caller_call_index=frame.call_index,
            )
        )

    def _call_native(
        self,
        obj: HeapObject,
        expr: ast.Call,
        args: list[Value],
        frame: Frame,
        thread: ThreadContext,
    ):
        method = expr.method
        if obj.elements is None or method not in ("get", "set", "length"):
            raise MiniJRuntimeError(
                "no-such-method",
                f"{obj.class_name}.{method} at line {expr.line}",
                thread.thread_id,
            )
        if method == "length":
            return len(obj.elements)
        index = args[0]
        self._require_int(index, expr.line, thread)
        if not 0 <= index < len(obj.elements):
            raise MiniJRuntimeError(
                "index-out-of-bounds",
                f"index {index} of {obj.class_name}#{obj.ref} "
                f"(length {len(obj.elements)}) at line {expr.line}",
                thread.thread_id,
            )
        if method == "get":
            value = obj.elements[index]
            if self._emit_read:
                yield ReadEvent(
                    label=self._next_label(),
                    thread_id=thread.thread_id,
                    node_id=expr.node_id,
                    call_index=frame.call_index,
                    obj=obj.ref,
                    class_name=obj.class_name,
                    field_name="elem",
                    value=value,
                    locks_held=thread.locks_held(),
                    elem_index=index,
                    in_constructor=thread.ctor_depth > 0,
                )
            else:
                self._next_label()
                yield SKIPPED_EVENT
            return value
        old_value = obj.elements[index]
        obj.elements[index] = args[1]
        if self._emit_write:
            yield WriteEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                class_name=obj.class_name,
                field_name="elem",
                value=args[1],
                old_value=old_value,
                locks_held=thread.locks_held(),
                elem_index=index,
                in_constructor=thread.ctor_depth > 0,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        return None

    # ------------------------------------------------------------------
    # Condition synchronization: wait / notify / notifyAll.

    def _condition_op(self, obj: HeapObject, expr: ast.Call, frame: Frame,
                      thread: ThreadContext):
        """``java.lang.Object`` monitor methods on any object.

        ``wait`` fully releases the monitor (emitting a real UnlockEvent
        so happens-before detectors see the release), parks the thread
        in the wait set, and — once removed by a notify — reacquires the
        monitor at its previous reentrancy depth (a real LockEvent).
        Wake-ups may be spurious, exactly like Java: a parked thread
        re-checks its wait-set membership whenever the monitor's state
        changes.
        """
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            raise MiniJRuntimeError(
                "illegal-monitor-state",
                f"{expr.method} on #{obj.ref} without owning its monitor "
                f"at line {expr.line}",
                thread.thread_id,
            )
        if expr.method in ("notify", "notifyAll"):
            if expr.method == "notifyAll":
                woken = tuple(sorted(monitor.wait_set))
                monitor.wait_set.clear()
            elif monitor.wait_set:
                chosen = min(monitor.wait_set)
                monitor.wait_set.discard(chosen)
                woken = (chosen,)
            else:
                woken = ()
            yield NotifyEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                woken=woken,
                notify_all=expr.method == "notifyAll",
            )
            return None

        # wait(): release completely, park, reacquire at saved depth.
        saved_depth = monitor.depth
        while monitor.depth > 0:
            monitor.release(thread.thread_id)
        thread.held.pop(obj.ref, None)
        thread.locks_cache = None
        monitor.wait_set.add(thread.thread_id)
        yield UnlockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=0,
        )
        yield WaitEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
        )
        while thread.thread_id in monitor.wait_set:
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=monitor.owner if monitor.owner is not None else -1,
            )
        while not monitor.can_acquire(thread.thread_id):
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=monitor.owner if monitor.owner is not None else -1,
            )
        for _ in range(saved_depth):
            monitor.acquire(thread.thread_id)
        thread.held[obj.ref] = saved_depth
        thread.locks_cache = None
        yield LockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=saved_depth,
        )
        return None

    # ------------------------------------------------------------------
    # Invocation machinery.

    def _fresh_call_index(self) -> int:
        index = self._next_call_index
        self._next_call_index += 1
        return index

    def _resolve_method(
        self, class_name: str, method_name: str
    ) -> ast.MethodDecl | None:
        """Cached method resolution (class, name) -> declaration."""
        key = (class_name, method_name)
        decl = self._method_cache.get(key, _MISSING)
        if decl is _MISSING:
            decl = self._table.method(class_name, method_name)
            self._method_cache[key] = decl
        return decl

    def _resolve_constructor(self, class_name: str) -> ast.MethodDecl | None:
        """Cached constructor resolution."""
        ctor = self._ctor_cache.get(class_name, _MISSING)
        if ctor is _MISSING:
            ctor = self._table.constructor(class_name)
            self._ctor_cache[class_name] = ctor
        return ctor

    def _invoke(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        method_name: str,
        args: list[Value],
        from_client: bool,
        caller_depth: int,
        node_id: int,
        caller_call_index: int,
    ):
        decl = self._resolve_method(receiver.class_name, method_name)
        if decl is None:
            raise MiniJRuntimeError(
                "no-such-method",
                f"{receiver.class_name}.{method_name}",
                thread.thread_id,
            )
        return (
            yield from self._invoke_decl(
                thread,
                receiver,
                decl,
                args,
                from_client=from_client,
                caller_depth=caller_depth,
                node_id=node_id,
                caller_call_index=caller_call_index,
            )
        )

    def _invoke_decl(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        decl: ast.MethodDecl,
        args: list[Value],
        from_client: bool,
        caller_depth: int,
        node_id: int,
        caller_call_index: int,
    ):
        if caller_depth + 1 > self.max_call_depth:
            raise MiniJRuntimeError(
                "stack-overflow",
                f"calling {receiver.class_name}.{decl.name}",
                thread.thread_id,
            )
        if len(args) != len(decl.params):
            raise MiniJRuntimeError(
                "arity-mismatch",
                f"{receiver.class_name}.{decl.name} expects "
                f"{len(decl.params)} argument(s), got {len(args)}",
                thread.thread_id,
            )
        call_index = self._fresh_call_index()
        if self._emit_invoke:
            yield InvokeEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=node_id,
                call_index=caller_call_index,
                receiver=receiver.ref,
                class_name=receiver.class_name,
                method=decl.name,
                args=tuple(args),
                from_client=from_client,
                is_constructor=decl.is_constructor,
                new_call_index=call_index,
                depth=caller_depth + 1,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        frame = Frame(
            locals={p.name: v for p, v in zip(decl.params, args)},
            this=receiver,
            class_name=receiver.class_name,
            method=decl.name,
            call_index=call_index,
            depth=caller_depth + 1,
            is_constructor=decl.is_constructor,
        )
        if decl.is_constructor:
            thread.ctor_depth += 1
        receiver_obj = self._heap.get(receiver.ref)
        body = decl.body
        try:
            if decl.synchronized:
                yield from self._acquire(receiver_obj, frame, thread, node_id)
            if self._stmt_pure(body):
                self._exec_pure(body, frame, thread)
            else:
                yield from self._exec_table[body.__class__](body, frame, thread)
            if decl.synchronized:
                yield from self._release(receiver_obj, frame, thread, node_id)
        finally:
            if decl.is_constructor:
                thread.ctor_depth -= 1
        if self._emit_return:
            yield ReturnEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=node_id,
                call_index=caller_call_index,
                value=frame.return_value,
                to_client=from_client,
                returning_call_index=call_index,
                method=decl.name,
                class_name=receiver.class_name,
            )
        else:
            self._next_label()
            yield SKIPPED_EVENT
        return frame.return_value

    # ------------------------------------------------------------------
    # Fault helpers.

    def _require_object(self, value: Value, line: int, thread: ThreadContext) -> HeapObject:
        if not isinstance(value, ObjRef):
            kind = "null-dereference" if value is None else "type-error"
            raise MiniJRuntimeError(
                kind, f"dereference of {value!r} at line {line}", thread.thread_id
            )
        return self._heap.get(value.ref)

    def _require_bool(self, value: Value, line: int, thread: ThreadContext) -> None:
        if value is not True and value is not False:
            raise MiniJRuntimeError(
                "type-error", f"expected bool at line {line}, got {value!r}",
                thread.thread_id,
            )

    def _require_int(self, value: Value, line: int, thread: ThreadContext) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MiniJRuntimeError(
                "type-error", f"expected int at line {line}, got {value!r}",
                thread.thread_id,
            )

    def _apply_binop(self, op: str, left, right, line: int, thread: ThreadContext):
        """Non-short-circuit binary operators, Java semantics."""
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)
        self._require_int(left, line, thread)
        self._require_int(right, line, thread)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "%"):
            if right == 0:
                raise MiniJRuntimeError(
                    "division-by-zero", f"at line {line}", thread.thread_id
                )
            # Match Java semantics: truncation toward zero.
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            if op == "/":
                return quotient
            return left - quotient * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise AssertionError(f"unknown operator {op}")

    def _eval_binary(self, expr: ast.Binary, frame: Frame, thread: ThreadContext):
        op = expr.op
        if op == "&&":
            left = yield from self._eval(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if not left:
                return False
            right = yield from self._eval(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right
        if op == "||":
            left = yield from self._eval(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if left:
                return True
            right = yield from self._eval(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right

        left_expr = expr.left
        if self._expr_pure(left_expr):
            left = self._eval_pure(left_expr, frame, thread)
        else:
            left = yield from self._eval_table[left_expr.__class__](
                left_expr, frame, thread
            )
        right_expr = expr.right
        if self._expr_pure(right_expr):
            right = self._eval_pure(right_expr, frame, thread)
        else:
            right = yield from self._eval_table[right_expr.__class__](
                right_expr, frame, thread
            )
        return self._apply_binop(op, left, right, expr.line, thread)


def _default_for(kind: str) -> Value:
    if kind == "int":
        return 0
    if kind == "bool":
        return False
    return None
