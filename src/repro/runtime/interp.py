"""Generator-based small-step interpreter for MiniJ.

Every *visible action* (field access, lock, unlock, call, return, alloc)
is ``yield``-ed as a trace event; the scheduler advances a thread by one
event at a time.  Purely local computation between two events executes
atomically — which matches the memory model relevant for races: only
shared-memory and synchronization operations are interleaving points.

Because of this structure, ``count = count + 1`` really is a READ event
followed by a WRITE event with a schedulable gap in between, so lost
updates and other classic races manifest concretely in the VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro._util.errors import MiniJRuntimeError
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.runtime.heap import Heap, HeapObject
from repro.runtime.values import ObjRef, Value, values_equal
from repro.trace.events import (
    AllocEvent,
    BlockedEvent,
    Event,
    InvokeEvent,
    LockEvent,
    NotifyEvent,
    ReadEvent,
    ReturnEvent,
    UnlockEvent,
    WaitEvent,
    WriteEvent,
)

#: Default bound on nested library calls per thread.  Each MiniJ frame
#: costs a dozen-plus Python frames in the ``yield from`` delegation
#: chain, so this is kept well below Python's own recursion limit (which
#: the VM also raises defensively).
MAX_CALL_DEPTH = 64


@dataclass
class Frame:
    """One activation record.

    ``call_index`` scopes the invocation (0 = client level); ``depth`` is
    the library-call nesting depth (client = 0).
    """

    locals: dict[str, Value] = field(default_factory=dict)
    this: ObjRef | None = None
    class_name: str = ""
    method: str = ""
    call_index: int = 0
    depth: int = 0
    is_constructor: bool = False
    returned: bool = False
    return_value: Value = None

    @property
    def is_client(self) -> bool:
        return self.call_index == 0


@dataclass
class ForkRequest:
    """Yielded by the interpreter when client code executes ``fork {}``.

    Not a trace event: the Execution intercepts it, spawns the child
    thread (emitting the real ForkEvent), and resumes the parent.  The
    child runs ``stmts`` over ``env`` — a snapshot of the parent's
    client variables at fork time (Java capture-by-value semantics).
    """

    stmts: list
    env: dict
    node_id: int


@dataclass
class ThreadContext:
    """Per-thread interpreter state shared across frames."""

    thread_id: int
    #: Monitor reentrancy per held object ref.
    held: dict[int, int] = field(default_factory=dict)
    #: Number of constructor frames on the stack (>0 => "in constructor").
    ctor_depth: int = 0

    def locks_held(self) -> frozenset[int]:
        return frozenset(self.held)


class Interpreter:
    """Executes MiniJ code for one VM, one generator per thread.

    The interpreter does not schedule anything itself: callers drive the
    generators returned by :meth:`run_client_stmts` and receive events.
    """

    def __init__(self, table: ClassTable, heap: Heap, rng, label_source) -> None:
        """
        Args:
            table: the resolved program.
            heap: the shared heap.
            rng: a ``random.Random`` used only by ``rand()``.
            label_source: zero-argument callable returning the next
                global trace label.
        """
        self._table = table
        self._heap = heap
        self._rng = rng
        self._next_label = label_source
        self._next_call_index = 1
        self.max_call_depth = MAX_CALL_DEPTH

    # ------------------------------------------------------------------
    # Entry points.

    def run_client_stmts(
        self, stmts: list[ast.Stmt], thread: ThreadContext, env: dict[str, Value]
    ) -> Iterator[Event]:
        """Execute client (test body) statements in the given thread.

        ``env`` is the client variable environment; it is mutated in
        place so callers can observe client variables afterwards (this is
        how the synthesizer's ``collectObjects`` captures references).
        """
        frame = Frame(locals=env, call_index=0, depth=0, class_name="<client>",
                      method="<client>")
        for stmt in stmts:
            yield from self._exec(stmt, frame, thread)
            if frame.returned:
                break

    def call_method(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        method_name: str,
        args: list[Value],
        from_client: bool = True,
        caller_depth: int = 0,
        node_id: int = -1,
        caller_call_index: int = 0,
    ) -> Iterator[Event]:
        """Invoke ``receiver.method(args)`` directly (no client statement).

        Used by synthesized-test thread bodies and the fuzzer.  The
        generator's return value is the method's return value.
        """
        return self._invoke(
            thread,
            receiver,
            method_name,
            args,
            from_client=from_client,
            caller_depth=caller_depth,
            node_id=node_id,
            caller_call_index=caller_call_index,
        )

    # ------------------------------------------------------------------
    # Statement execution.

    def _exec(self, stmt: ast.Stmt, frame: Frame, thread: ThreadContext):
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                yield from self._exec(inner, frame, thread)
                if frame.returned:
                    return
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                value = yield from self._eval(stmt.init, frame, thread)
            else:
                value = _default_for(stmt.decl_type.kind)
            frame.locals[stmt.name] = value
        elif isinstance(stmt, ast.AssignVar):
            value = yield from self._eval(stmt.value, frame, thread)
            frame.locals[stmt.name] = value
        elif isinstance(stmt, ast.AssignField):
            yield from self._exec_field_write(stmt, frame, thread)
        elif isinstance(stmt, ast.If):
            cond = yield from self._eval(stmt.cond, frame, thread)
            self._require_bool(cond, stmt.line, thread)
            if cond:
                yield from self._exec(stmt.then_body, frame, thread)
            elif stmt.else_body is not None:
                yield from self._exec(stmt.else_body, frame, thread)
        elif isinstance(stmt, ast.While):
            while True:
                cond = yield from self._eval(stmt.cond, frame, thread)
                self._require_bool(cond, stmt.line, thread)
                if not cond:
                    break
                yield from self._exec(stmt.body, frame, thread)
                if frame.returned:
                    return
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                frame.return_value = yield from self._eval(stmt.value, frame, thread)
            frame.returned = True
        elif isinstance(stmt, ast.Sync):
            yield from self._exec_sync(stmt, frame, thread)
        elif isinstance(stmt, ast.Assert):
            cond = yield from self._eval(stmt.cond, frame, thread)
            if cond is not True:
                raise MiniJRuntimeError(
                    "assertion-failed",
                    f"assert at line {stmt.line} in "
                    f"{frame.class_name}.{frame.method}",
                    thread.thread_id,
                )
        elif isinstance(stmt, ast.Fork):
            if not frame.is_client:
                raise MiniJRuntimeError(
                    "fork-in-library",
                    f"fork at line {stmt.line} outside a test body",
                    thread.thread_id,
                )
            yield ForkRequest(
                stmts=stmt.body.stmts,
                env=dict(frame.locals),
                node_id=stmt.node_id,
            )
        elif isinstance(stmt, ast.ExprStmt):
            yield from self._eval(stmt.expr, frame, thread)
        else:  # pragma: no cover - exhaustive over the AST
            raise AssertionError(f"unknown statement {type(stmt).__name__}")

    def _exec_field_write(
        self, stmt: ast.AssignField, frame: Frame, thread: ThreadContext
    ):
        target = yield from self._eval(stmt.target, frame, thread)
        obj = self._require_object(target, stmt.line, thread)
        value = yield from self._eval(stmt.value, frame, thread)
        if stmt.field_name not in obj.fields:
            raise MiniJRuntimeError(
                "no-such-field",
                f"{obj.class_name}.{stmt.field_name} at line {stmt.line}",
                thread.thread_id,
            )
        old_value = obj.fields[stmt.field_name]
        obj.fields[stmt.field_name] = value
        yield WriteEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=stmt.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            class_name=obj.class_name,
            field_name=stmt.field_name,
            value=value,
            old_value=old_value,
            locks_held=thread.locks_held(),
            in_constructor=thread.ctor_depth > 0,
        )

    def _exec_sync(self, stmt: ast.Sync, frame: Frame, thread: ThreadContext):
        lock_value = yield from self._eval(stmt.lock, frame, thread)
        obj = self._require_object(lock_value, stmt.line, thread)
        yield from self._acquire(obj, frame, thread, stmt.node_id)
        yield from self._exec(stmt.body, frame, thread)
        yield from self._release(obj, frame, thread, stmt.node_id)

    # ------------------------------------------------------------------
    # Monitors.

    def _acquire(self, obj: HeapObject, frame: Frame, thread: ThreadContext, node_id: int):
        while not obj.monitor.can_acquire(thread.thread_id):
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=obj.monitor.owner if obj.monitor.owner is not None else -1,
            )
        depth = obj.monitor.acquire(thread.thread_id)
        thread.held[obj.ref] = thread.held.get(obj.ref, 0) + 1
        yield LockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=depth,
        )

    def _release(self, obj: HeapObject, frame: Frame, thread: ThreadContext, node_id: int):
        depth = obj.monitor.release(thread.thread_id)
        remaining = thread.held.get(obj.ref, 0) - 1
        if remaining <= 0:
            thread.held.pop(obj.ref, None)
        else:
            thread.held[obj.ref] = remaining
        yield UnlockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=depth,
        )

    # ------------------------------------------------------------------
    # Expression evaluation.

    def _eval(self, expr: ast.Expr | None, frame: Frame, thread: ThreadContext):
        if expr is None:
            return None
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.NullLit):
            return None
        if isinstance(expr, ast.This):
            return frame.this
        if isinstance(expr, ast.VarRef):
            if expr.name not in frame.locals:
                raise MiniJRuntimeError(
                    "undefined-variable",
                    f"{expr.name} at line {expr.line}",
                    thread.thread_id,
                )
            return frame.locals[expr.name]
        if isinstance(expr, ast.Rand):
            return (yield from self._eval_rand(expr, frame, thread))
        if isinstance(expr, ast.FieldGet):
            return (yield from self._eval_field_get(expr, frame, thread))
        if isinstance(expr, ast.New):
            return (yield from self._eval_new(expr, frame, thread))
        if isinstance(expr, ast.Call):
            return (yield from self._eval_call(expr, frame, thread))
        if isinstance(expr, ast.Binary):
            return (yield from self._eval_binary(expr, frame, thread))
        if isinstance(expr, ast.Unary):
            operand = yield from self._eval(expr.operand, frame, thread)
            if expr.op == "!":
                self._require_bool(operand, expr.line, thread)
                return not operand
            self._require_int(operand, expr.line, thread)
            return -operand
        raise AssertionError(f"unknown expression {type(expr).__name__}")

    def _eval_rand(self, expr: ast.Rand, frame: Frame, thread: ThreadContext):
        result_type = expr.result_type
        if result_type is not None and result_type.kind == "class":
            class_name = result_type.name
            if self._table.is_interface(class_name) or not self._table.has_class(
                class_name
            ):
                class_name = "Opaque"
            obj = self._alloc_object(class_name, lib_allocated=True)
            yield AllocEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                ref=obj.ref,
                class_name=obj.class_name,
                in_library=True,
            )
            return obj.handle()
        return self._rng.randrange(1 << 16)

    def _eval_field_get(self, expr: ast.FieldGet, frame: Frame, thread: ThreadContext):
        target = yield from self._eval(expr.target, frame, thread)
        obj = self._require_object(target, expr.line, thread)
        if obj.elements is not None and expr.field_name == "length":
            return len(obj.elements)
        if expr.field_name not in obj.fields:
            raise MiniJRuntimeError(
                "no-such-field",
                f"{obj.class_name}.{expr.field_name} at line {expr.line}",
                thread.thread_id,
            )
        value = obj.fields[expr.field_name]
        yield ReadEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            class_name=obj.class_name,
            field_name=expr.field_name,
            value=value,
            locks_held=thread.locks_held(),
            in_constructor=thread.ctor_depth > 0,
        )
        return value

    def _eval_new(self, expr: ast.New, frame: Frame, thread: ThreadContext):
        args: list[Value] = []
        for arg_expr in expr.args:
            arg = yield from self._eval(arg_expr, frame, thread)
            args.append(arg)
        class_name = expr.class_name

        if self._table.is_builtin(class_name):
            return (yield from self._alloc_builtin(expr, class_name, args, frame, thread))

        obj = self._alloc_object(class_name, lib_allocated=not frame.is_client)
        yield AllocEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            ref=obj.ref,
            class_name=class_name,
            in_library=not frame.is_client,
        )
        yield from self._run_field_initializers(obj, expr, frame, thread)
        ctor = self._table.constructor(class_name)
        if ctor is not None:
            yield from self._invoke_decl(
                thread,
                obj.handle(),
                ctor,
                args,
                from_client=frame.is_client,
                caller_depth=frame.depth,
                node_id=expr.node_id,
                caller_call_index=frame.call_index,
            )
        return obj.handle()

    def _alloc_builtin(
        self,
        expr: ast.New,
        class_name: str,
        args: list[Value],
        frame: Frame,
        thread: ThreadContext,
    ):
        if class_name in ("IntArray", "RefArray"):
            length = args[0]
            self._require_int(length, expr.line, thread)
            elem_kind = "int" if class_name == "IntArray" else "class"
            obj = self._heap.alloc(
                class_name,
                {},
                lib_allocated=not frame.is_client,
                array_length=length,
                array_elem_kind=elem_kind,
            )
        else:  # Opaque
            obj = self._heap.alloc(class_name, {}, lib_allocated=not frame.is_client)
        yield AllocEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            ref=obj.ref,
            class_name=class_name,
            in_library=not frame.is_client,
        )
        return obj.handle()

    def _alloc_object(self, class_name: str, lib_allocated: bool) -> HeapObject:
        if self._table.is_builtin(class_name):
            return self._heap.alloc(class_name, {}, lib_allocated=lib_allocated)
        field_types = {
            f.name: f.field_type.kind for f in self._table.class_decl(class_name).fields
        }
        return self._heap.alloc(class_name, field_types, lib_allocated=lib_allocated)

    def _run_field_initializers(
        self, obj: HeapObject, new_expr: ast.New, frame: Frame, thread: ThreadContext
    ):
        """Run declared field initializers as constructor-context writes."""
        cls = self._table.class_decl(obj.class_name)
        init_frame = Frame(
            this=obj.handle(),
            class_name=obj.class_name,
            method="<fieldinit>",
            call_index=self._fresh_call_index(),
            depth=frame.depth + 1,
            is_constructor=True,
        )
        thread.ctor_depth += 1
        try:
            for field_decl in cls.fields:
                if field_decl.init is None:
                    continue
                value = yield from self._eval(field_decl.init, init_frame, thread)
                old_value = obj.fields[field_decl.name]
                obj.fields[field_decl.name] = value
                yield WriteEvent(
                    label=self._next_label(),
                    thread_id=thread.thread_id,
                    node_id=new_expr.node_id,
                    call_index=init_frame.call_index,
                    obj=obj.ref,
                    class_name=obj.class_name,
                    field_name=field_decl.name,
                    value=value,
                    old_value=old_value,
                    locks_held=thread.locks_held(),
                    in_constructor=True,
                )
        finally:
            thread.ctor_depth -= 1

    def _eval_call(self, expr: ast.Call, frame: Frame, thread: ThreadContext):
        target = yield from self._eval(expr.target, frame, thread)
        args: list[Value] = []
        for arg_expr in expr.args:
            arg = yield from self._eval(arg_expr, frame, thread)
            args.append(arg)
        obj = self._require_object(target, expr.line, thread)
        if (
            expr.method in ("wait", "notify", "notifyAll")
            and not args
            and self._table.method(obj.class_name, expr.method) is None
        ):
            # java.lang.Object condition methods, available on any object.
            return (yield from self._condition_op(obj, expr, frame, thread))
        if self._table.is_builtin(obj.class_name):
            return (yield from self._call_native(obj, expr, args, frame, thread))
        return (
            yield from self._invoke(
                thread,
                obj.handle(),
                expr.method,
                args,
                from_client=frame.is_client,
                caller_depth=frame.depth,
                node_id=expr.node_id,
                caller_call_index=frame.call_index,
            )
        )

    def _call_native(
        self,
        obj: HeapObject,
        expr: ast.Call,
        args: list[Value],
        frame: Frame,
        thread: ThreadContext,
    ):
        method = expr.method
        if obj.elements is None or method not in ("get", "set", "length"):
            raise MiniJRuntimeError(
                "no-such-method",
                f"{obj.class_name}.{method} at line {expr.line}",
                thread.thread_id,
            )
        if method == "length":
            return len(obj.elements)
        index = args[0]
        self._require_int(index, expr.line, thread)
        if not 0 <= index < len(obj.elements):
            raise MiniJRuntimeError(
                "index-out-of-bounds",
                f"index {index} of {obj.class_name}#{obj.ref} "
                f"(length {len(obj.elements)}) at line {expr.line}",
                thread.thread_id,
            )
        if method == "get":
            value = obj.elements[index]
            yield ReadEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                class_name=obj.class_name,
                field_name="elem",
                value=value,
                locks_held=thread.locks_held(),
                elem_index=index,
                in_constructor=thread.ctor_depth > 0,
            )
            return value
        old_value = obj.elements[index]
        obj.elements[index] = args[1]
        yield WriteEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            class_name=obj.class_name,
            field_name="elem",
            value=args[1],
            old_value=old_value,
            locks_held=thread.locks_held(),
            elem_index=index,
            in_constructor=thread.ctor_depth > 0,
        )
        return None

    # ------------------------------------------------------------------
    # Condition synchronization: wait / notify / notifyAll.

    def _condition_op(self, obj: HeapObject, expr: ast.Call, frame: Frame,
                      thread: ThreadContext):
        """``java.lang.Object`` monitor methods on any object.

        ``wait`` fully releases the monitor (emitting a real UnlockEvent
        so happens-before detectors see the release), parks the thread
        in the wait set, and — once removed by a notify — reacquires the
        monitor at its previous reentrancy depth (a real LockEvent).
        Wake-ups may be spurious, exactly like Java: a parked thread
        re-checks its wait-set membership whenever the monitor's state
        changes.
        """
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            raise MiniJRuntimeError(
                "illegal-monitor-state",
                f"{expr.method} on #{obj.ref} without owning its monitor "
                f"at line {expr.line}",
                thread.thread_id,
            )
        if expr.method in ("notify", "notifyAll"):
            if expr.method == "notifyAll":
                woken = tuple(sorted(monitor.wait_set))
                monitor.wait_set.clear()
            elif monitor.wait_set:
                chosen = min(monitor.wait_set)
                monitor.wait_set.discard(chosen)
                woken = (chosen,)
            else:
                woken = ()
            yield NotifyEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                woken=woken,
                notify_all=expr.method == "notifyAll",
            )
            return None

        # wait(): release completely, park, reacquire at saved depth.
        saved_depth = monitor.depth
        while monitor.depth > 0:
            monitor.release(thread.thread_id)
        thread.held.pop(obj.ref, None)
        monitor.wait_set.add(thread.thread_id)
        yield UnlockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=0,
        )
        yield WaitEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
        )
        while thread.thread_id in monitor.wait_set:
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=monitor.owner if monitor.owner is not None else -1,
            )
        while not monitor.can_acquire(thread.thread_id):
            yield BlockedEvent(
                label=self._next_label(),
                thread_id=thread.thread_id,
                node_id=expr.node_id,
                call_index=frame.call_index,
                obj=obj.ref,
                owner_thread=monitor.owner if monitor.owner is not None else -1,
            )
        for _ in range(saved_depth):
            monitor.acquire(thread.thread_id)
        thread.held[obj.ref] = saved_depth
        yield LockEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=expr.node_id,
            call_index=frame.call_index,
            obj=obj.ref,
            reentrancy=saved_depth,
        )
        return None

    # ------------------------------------------------------------------
    # Invocation machinery.

    def _fresh_call_index(self) -> int:
        index = self._next_call_index
        self._next_call_index += 1
        return index

    def _invoke(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        method_name: str,
        args: list[Value],
        from_client: bool,
        caller_depth: int,
        node_id: int,
        caller_call_index: int,
    ):
        decl = self._table.method(receiver.class_name, method_name)
        if decl is None:
            raise MiniJRuntimeError(
                "no-such-method",
                f"{receiver.class_name}.{method_name}",
                thread.thread_id,
            )
        return (
            yield from self._invoke_decl(
                thread,
                receiver,
                decl,
                args,
                from_client=from_client,
                caller_depth=caller_depth,
                node_id=node_id,
                caller_call_index=caller_call_index,
            )
        )

    def _invoke_decl(
        self,
        thread: ThreadContext,
        receiver: ObjRef,
        decl: ast.MethodDecl,
        args: list[Value],
        from_client: bool,
        caller_depth: int,
        node_id: int,
        caller_call_index: int,
    ):
        if caller_depth + 1 > self.max_call_depth:
            raise MiniJRuntimeError(
                "stack-overflow",
                f"calling {receiver.class_name}.{decl.name}",
                thread.thread_id,
            )
        if len(args) != len(decl.params):
            raise MiniJRuntimeError(
                "arity-mismatch",
                f"{receiver.class_name}.{decl.name} expects "
                f"{len(decl.params)} argument(s), got {len(args)}",
                thread.thread_id,
            )
        call_index = self._fresh_call_index()
        yield InvokeEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=node_id,
            call_index=caller_call_index,
            receiver=receiver.ref,
            class_name=receiver.class_name,
            method=decl.name,
            args=tuple(args),
            from_client=from_client,
            is_constructor=decl.is_constructor,
            new_call_index=call_index,
            depth=caller_depth + 1,
        )
        frame = Frame(
            locals={p.name: v for p, v in zip(decl.params, args)},
            this=receiver,
            class_name=receiver.class_name,
            method=decl.name,
            call_index=call_index,
            depth=caller_depth + 1,
            is_constructor=decl.is_constructor,
        )
        if decl.is_constructor:
            thread.ctor_depth += 1
        receiver_obj = self._heap.get(receiver.ref)
        try:
            if decl.synchronized:
                yield from self._acquire(receiver_obj, frame, thread, node_id)
            yield from self._exec(decl.body, frame, thread)
            if decl.synchronized:
                yield from self._release(receiver_obj, frame, thread, node_id)
        finally:
            if decl.is_constructor:
                thread.ctor_depth -= 1
        yield ReturnEvent(
            label=self._next_label(),
            thread_id=thread.thread_id,
            node_id=node_id,
            call_index=caller_call_index,
            value=frame.return_value,
            to_client=from_client,
            returning_call_index=call_index,
            method=decl.name,
            class_name=receiver.class_name,
        )
        return frame.return_value

    # ------------------------------------------------------------------
    # Fault helpers.

    def _require_object(self, value: Value, line: int, thread: ThreadContext) -> HeapObject:
        if not isinstance(value, ObjRef):
            kind = "null-dereference" if value is None else "type-error"
            raise MiniJRuntimeError(
                kind, f"dereference of {value!r} at line {line}", thread.thread_id
            )
        return self._heap.get(value.ref)

    def _require_bool(self, value: Value, line: int, thread: ThreadContext) -> None:
        if not isinstance(value, bool):
            raise MiniJRuntimeError(
                "type-error", f"expected bool at line {line}, got {value!r}",
                thread.thread_id,
            )

    def _require_int(self, value: Value, line: int, thread: ThreadContext) -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MiniJRuntimeError(
                "type-error", f"expected int at line {line}, got {value!r}",
                thread.thread_id,
            )

    def _eval_binary(self, expr: ast.Binary, frame: Frame, thread: ThreadContext):
        op = expr.op
        if op == "&&":
            left = yield from self._eval(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if not left:
                return False
            right = yield from self._eval(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right
        if op == "||":
            left = yield from self._eval(expr.left, frame, thread)
            self._require_bool(left, expr.line, thread)
            if left:
                return True
            right = yield from self._eval(expr.right, frame, thread)
            self._require_bool(right, expr.line, thread)
            return right

        left = yield from self._eval(expr.left, frame, thread)
        right = yield from self._eval(expr.right, frame, thread)
        if op == "==":
            return values_equal(left, right)
        if op == "!=":
            return not values_equal(left, right)

        self._require_int(left, expr.line, thread)
        self._require_int(right, expr.line, thread)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op in ("/", "%"):
            if right == 0:
                raise MiniJRuntimeError(
                    "division-by-zero", f"at line {expr.line}", thread.thread_id
                )
            # Match Java semantics: truncation toward zero.
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            if op == "/":
                return quotient
            return left - quotient * right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise AssertionError(f"unknown operator {op}")


def _default_for(kind: str) -> Value:
    if kind == "int":
        return 0
    if kind == "bool":
        return False
    return None
