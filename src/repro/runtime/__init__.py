"""The MiniJ virtual machine: heap, monitors, interpreter, schedulers."""

from repro.runtime.heap import Heap, HeapObject, Monitor
from repro.runtime.interp import Interpreter, ThreadContext
from repro.runtime.scheduler import (
    FixedScheduler,
    PreferredScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SequentialScheduler,
)
from repro.runtime.values import ObjRef, Value, is_null, is_ref, show_value
from repro.runtime.vm import (
    DEFAULT_MAX_STEPS,
    Execution,
    ExecutionResult,
    ThreadStatus,
    VM,
    VMThread,
)

__all__ = [
    "DEFAULT_MAX_STEPS",
    "Execution",
    "ExecutionResult",
    "FixedScheduler",
    "Heap",
    "HeapObject",
    "Interpreter",
    "Monitor",
    "ObjRef",
    "PreferredScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SequentialScheduler",
    "ThreadContext",
    "ThreadStatus",
    "VM",
    "VMThread",
    "Value",
    "is_null",
    "is_ref",
    "show_value",
]

from repro.runtime.pct import PCTScheduler
from repro.runtime.recording import RecordingScheduler, ScheduleLog

__all__ += ["PCTScheduler", "RecordingScheduler", "ScheduleLog"]
