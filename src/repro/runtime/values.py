"""Runtime values for the MiniJ VM.

MiniJ values are Python ``int``, ``bool``, ``None`` (MiniJ ``null``) and
:class:`ObjRef` — an immutable handle naming a heap object.  Using a
dedicated handle type (rather than the heap object itself) keeps events
cheap to snapshot and makes object identity explicit everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class ObjRef:
    """A reference to a heap object.

    Attributes:
        ref: the heap id (unique per VM instance).
        class_name: the runtime class of the referenced object; carried
            on the handle so trace consumers never need the heap.
    """

    ref: int
    class_name: str

    def __repr__(self) -> str:
        return f"{self.class_name}#{self.ref}"


#: A MiniJ runtime value.
Value = Union[int, bool, None, ObjRef]


def is_ref(value: Value) -> bool:
    """Whether a value is a (non-null) object reference."""
    return isinstance(value, ObjRef)


def is_null(value: Value) -> bool:
    return value is None


def values_equal(left: Value, right: Value) -> bool:
    """MiniJ ``==``: identity for references, value equality otherwise."""
    if isinstance(left, ObjRef) or isinstance(right, ObjRef):
        return left == right
    if left is None or right is None:
        return left is right
    return left == right


def default_value(type_kind: str) -> Value:
    """The default a field of the given type kind is initialized to."""
    if type_kind == "int":
        return 0
    if type_kind == "bool":
        return False
    return None


def show_value(value: Value) -> str:
    """Render a value the way the pretty printer would."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    return repr(value) if isinstance(value, ObjRef) else str(value)
