"""The VM heap: objects, fields, array storage, and monitors.

Each heap object owns a reentrant :class:`Monitor`, exactly like a Java
object.  Monitors have no wait/notify (MiniJ has none); blocking is
modelled by the scheduler parking threads that fail to acquire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import MiniJRuntimeError
from repro.runtime.values import ObjRef, Value, default_value


@dataclass(slots=True)
class Monitor:
    """A reentrant per-object monitor with a wait set.

    Attributes:
        owner: the owning thread id, or None when free.
        depth: reentrancy count (0 when free).
        wait_set: thread ids parked by ``wait()`` awaiting a notify.
    """

    owner: int | None = None
    depth: int = 0
    wait_set: set[int] = field(default_factory=set)

    def can_acquire(self, thread_id: int) -> bool:
        return self.owner is None or self.owner == thread_id

    def acquire(self, thread_id: int) -> int:
        """Acquire (or re-enter); returns the new reentrancy depth."""
        if not self.can_acquire(thread_id):
            raise AssertionError(
                f"thread {thread_id} acquiring monitor owned by {self.owner}"
            )
        self.owner = thread_id
        self.depth += 1
        return self.depth

    def release(self, thread_id: int) -> int:
        """Release one level; returns the remaining reentrancy depth."""
        if self.owner != thread_id or self.depth <= 0:
            raise AssertionError(
                f"thread {thread_id} releasing monitor owned by {self.owner}"
            )
        self.depth -= 1
        if self.depth == 0:
            self.owner = None
        return self.depth


@dataclass(slots=True)
class HeapObject:
    """One object on the VM heap.

    ``fields`` maps field names to values for user-defined classes;
    ``elements`` is the backing store for the builtin array classes.
    ``lib_allocated`` records whether the object was created inside a
    library method (used by the controllability analysis).
    """

    ref: int
    class_name: str
    fields: dict[str, Value] = field(default_factory=dict)
    elements: list[Value] | None = None
    monitor: Monitor = field(default_factory=Monitor)
    lib_allocated: bool = False
    _handle: ObjRef | None = None

    def handle(self) -> ObjRef:
        """The (cached) immutable reference naming this object."""
        handle = self._handle
        if handle is None:
            handle = self._handle = ObjRef(self.ref, self.class_name)
        return handle


class Heap:
    """Allocation and lookup of heap objects."""

    def __init__(self) -> None:
        self._objects: dict[int, HeapObject] = {}
        self._next_ref = 1

    def __len__(self) -> int:
        return len(self._objects)

    def alloc(
        self,
        class_name: str,
        field_types: dict[str, str],
        lib_allocated: bool = False,
        array_length: int | None = None,
        array_elem_kind: str = "class",
    ) -> HeapObject:
        """Allocate an object with default-initialized storage.

        Args:
            class_name: runtime class of the new object.
            field_types: field name -> type kind ("int"/"bool"/"class"),
                used to pick default values.
            lib_allocated: True when allocation happened inside a library
                method (controllability: NC, Fig. 7 *alloc* rule).
            array_length: element count for builtin arrays.
            array_elem_kind: type kind of array elements.

        Raises:
            MiniJRuntimeError: on a negative array length.
        """
        ref = self._next_ref
        self._next_ref += 1
        elements: list[Value] | None = None
        if array_length is not None:
            if array_length < 0:
                raise MiniJRuntimeError(
                    "negative-array-size", f"new {class_name}({array_length})"
                )
            elements = [default_value(array_elem_kind)] * array_length
        obj = HeapObject(
            ref=ref,
            class_name=class_name,
            fields={name: default_value(kind) for name, kind in field_types.items()},
            elements=elements,
            lib_allocated=lib_allocated,
        )
        self._objects[ref] = obj
        return obj

    def get(self, ref: int) -> HeapObject:
        try:
            return self._objects[ref]
        except KeyError:
            raise MiniJRuntimeError("dangling-ref", f"object #{ref}") from None

    def deref(self, handle: ObjRef) -> HeapObject:
        return self.get(handle.ref)

    def objects(self) -> list[HeapObject]:
        return list(self._objects.values())
