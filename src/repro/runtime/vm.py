"""The MiniJ virtual machine and its execution engine.

:class:`VM` owns the heap, the deterministic random stream, the global
trace-label counter and the interpreter.  :class:`Execution` owns a set
of threads, advances them one *event* at a time under a scheduler, and
dispatches every event to registered listeners (trace recorders, race
detectors, fuzzer probes).

A single VM can host several executions in sequence — exactly what the
synthesized tests need: run seed-test prefixes to collect objects, run
the context-setting calls, then run the racy methods from two threads,
all against one heap.
"""

from __future__ import annotations

import enum
import sys
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro._util.errors import DeadlockError, MiniJRuntimeError
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.runtime.heap import Heap
from repro.runtime.interp import ForkRequest, Interpreter, ThreadContext
from repro.runtime.scheduler import Scheduler, SequentialScheduler
from repro.runtime.values import Value
from repro.trace.events import (
    BlockedEvent,
    Event,
    FaultEvent,
    ForkEvent,
    JoinEvent,
    UnlockEvent,
)

#: Default event budget per execution; prevents racy loops from hanging
#: the fuzzer.
DEFAULT_MAX_STEPS = 200_000


class Listener(Protocol):
    """Anything that observes the event stream of an execution."""

    def on_event(self, event: Event) -> None: ...  # pragma: no cover


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAULTED = "faulted"


@dataclass
class VMThread:
    """Bookkeeping for one VM thread inside an Execution."""

    ctx: ThreadContext
    body: Iterator[Event]
    name: str
    status: ThreadStatus = ThreadStatus.RUNNABLE
    blocked_on: int | None = None
    fault: MiniJRuntimeError | None = None
    result: Value = None


@dataclass
class ExecutionResult:
    """Outcome of driving an execution to quiescence."""

    steps: int = 0
    completed: bool = False
    deadlocked: bool = False
    timed_out: bool = False
    faults: list[tuple[int, MiniJRuntimeError]] = field(default_factory=list)
    blocked: dict[int, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when every thread finished without fault or deadlock."""
        return self.completed and not self.faults and not self.deadlocked


class VM:
    """A MiniJ virtual machine for one resolved program."""

    def __init__(self, table: ClassTable, seed: int = 0) -> None:
        self.table = table
        self.heap = Heap()
        self.rng = random.Random(seed)
        self._label = 0
        self._next_thread_id = 0
        self.interp = Interpreter(table, self.heap, self.rng, self.next_label)
        # Resuming a generator nested N MiniJ-frames deep traverses the
        # whole `yield from` chain; give the interpreter headroom so the
        # MiniJ stack-overflow check fires before Python's own.
        if sys.getrecursionlimit() < 20_000:
            sys.setrecursionlimit(20_000)

    def next_label(self) -> int:
        label = self._label
        self._label += 1
        return label

    def new_thread_ctx(self) -> ThreadContext:
        ctx = ThreadContext(thread_id=self._next_thread_id)
        self._next_thread_id += 1
        return ctx

    # ------------------------------------------------------------------
    # Convenience entry points.

    def run_test(
        self,
        test_name: str,
        listeners: tuple[Listener, ...] = (),
        env: dict[str, Value] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> tuple[ExecutionResult, dict[str, Value]]:
        """Run a named sequential test to completion.

        Returns the execution result and the final client environment
        (test variables -> values).
        """
        test = self.table.program.test_decl(test_name)
        if test is None:
            raise MiniJRuntimeError("no-such-test", test_name)
        return self.run_client_stmts(test.body.stmts, listeners, env, max_steps)

    def run_client_stmts(
        self,
        stmts: list[ast.Stmt],
        listeners: tuple[Listener, ...] = (),
        env: dict[str, Value] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> tuple[ExecutionResult, dict[str, Value]]:
        """Run client statements sequentially in a fresh thread."""
        client_env: dict[str, Value] = {} if env is None else env
        execution = Execution(self, listeners=listeners)
        execution.spawn(
            lambda ctx: self.interp.run_client_stmts(stmts, ctx, client_env),
            name="main",
        )
        result = execution.run(SequentialScheduler(), max_steps=max_steps)
        return result, client_env


class Execution:
    """A set of VM threads advanced under a scheduler.

    Threads are added with :meth:`spawn`; each is a generator of events.
    :meth:`step` advances one thread by one event and dispatches it to
    the listeners; :meth:`run` drives scheduling until every thread is
    done, a deadlock is reached, or the step budget runs out.
    """

    def __init__(self, vm: VM, listeners: tuple[Listener, ...] = ()) -> None:
        self._vm = vm
        self._listeners = list(listeners)
        self._threads: dict[int, VMThread] = {}
        self._last_scheduled: int | None = None
        self.steps = 0

    # ------------------------------------------------------------------
    # Thread management.

    def spawn(
        self,
        make_body: Callable[[ThreadContext], Iterator[Event]],
        name: str = "",
        parent: int | None = None,
    ) -> int:
        """Create a thread whose body is built from its ThreadContext.

        When ``parent`` is given, a ForkEvent (a happens-before edge for
        the detectors) is dispatched on the parent's behalf.
        """
        ctx = self._vm.new_thread_ctx()
        thread = VMThread(ctx=ctx, body=make_body(ctx), name=name or f"t{ctx.thread_id}")
        self._threads[ctx.thread_id] = thread
        if parent is not None:
            self._dispatch(
                ForkEvent(
                    label=self._vm.next_label(),
                    thread_id=parent,
                    node_id=-1,
                    call_index=0,
                    child_thread=ctx.thread_id,
                )
            )
        return ctx.thread_id

    def emit_join(self, parent: int, child: int) -> None:
        """Dispatch a JoinEvent: ``parent`` observed ``child`` finishing."""
        self._dispatch(
            JoinEvent(
                label=self._vm.next_label(),
                thread_id=parent,
                node_id=-1,
                call_index=0,
                child_thread=child,
            )
        )

    def thread(self, tid: int) -> VMThread:
        return self._threads[tid]

    def thread_ids(self) -> list[int]:
        return list(self._threads)

    def runnable_threads(self) -> list[int]:
        return [
            tid
            for tid, thread in self._threads.items()
            if thread.status is ThreadStatus.RUNNABLE
        ]

    def live_threads(self) -> list[int]:
        return [
            tid
            for tid, thread in self._threads.items()
            if thread.status in (ThreadStatus.RUNNABLE, ThreadStatus.BLOCKED)
        ]

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Stepping.

    def step(self, tid: int) -> Event | None:
        """Advance thread ``tid`` by one event.

        Returns the event, or None when the thread just finished.
        Faults are converted into FaultEvents and terminate the thread,
        force-releasing its monitors so peers do not hang forever
        (mirroring monitor release during Java exception unwinding).
        """
        thread = self._threads[tid]
        if thread.status not in (ThreadStatus.RUNNABLE, ThreadStatus.BLOCKED):
            raise AssertionError(f"stepping {thread.status.value} thread {tid}")
        self.steps += 1
        self._last_scheduled = tid
        try:
            event = next(thread.body)
        except StopIteration as stop:
            thread.status = ThreadStatus.DONE
            thread.result = stop.value
            return None
        except MiniJRuntimeError as fault:
            thread.status = ThreadStatus.FAULTED
            thread.fault = fault
            self._force_release_monitors(thread)
            fault_event = FaultEvent(
                label=self._vm.next_label(),
                thread_id=tid,
                node_id=-1,
                call_index=0,
                kind=fault.kind,
                message=str(fault),
            )
            self._dispatch(fault_event)
            return fault_event

        if isinstance(event, ForkRequest):
            # Client-level `fork {}`: spawn the child (which dispatches
            # the real ForkEvent) and keep the parent runnable.
            self.spawn(
                lambda ctx: self._vm.interp.run_client_stmts(
                    event.stmts, ctx, event.env
                ),
                name=f"fork@{event.node_id}",
                parent=tid,
            )
            thread.status = ThreadStatus.RUNNABLE
            return None

        if isinstance(event, BlockedEvent):
            thread.status = ThreadStatus.BLOCKED
            thread.blocked_on = event.obj
        else:
            thread.status = ThreadStatus.RUNNABLE
            thread.blocked_on = None
        self._dispatch(event)
        if isinstance(event, UnlockEvent) and event.reentrancy == 0:
            self._wake_waiters(event.obj)
        return event

    def run(
        self, scheduler: Scheduler, max_steps: int = DEFAULT_MAX_STEPS
    ) -> ExecutionResult:
        """Drive all threads under ``scheduler`` until quiescence."""
        result = ExecutionResult()
        while True:
            runnable = self.runnable_threads()
            if not runnable:
                live = self.live_threads()
                if live:
                    result.deadlocked = True
                    result.blocked = {
                        tid: self._threads[tid].blocked_on or -1 for tid in live
                    }
                else:
                    result.completed = True
                break
            if self.steps >= max_steps:
                result.timed_out = True
                break
            tid = scheduler.pick(runnable, self._last_scheduled)
            self.step(tid)
        result.steps = self.steps
        result.faults = [
            (tid, thread.fault)
            for tid, thread in self._threads.items()
            if thread.fault is not None
        ]
        return result

    def run_single(self, tid: int, max_steps: int = DEFAULT_MAX_STEPS) -> VMThread:
        """Drive one thread to completion (sequential phases).

        Raises:
            DeadlockError: if the thread blocks with nobody to unblock it.
        """
        thread = self._threads[tid]
        steps = 0
        while thread.status in (ThreadStatus.RUNNABLE, ThreadStatus.BLOCKED):
            if thread.status is ThreadStatus.BLOCKED:
                raise DeadlockError({tid: thread.blocked_on or -1})
            if steps >= max_steps:
                raise MiniJRuntimeError("step-budget", f"thread {tid} exceeded budget")
            self.step(tid)
            steps += 1
        return thread

    # ------------------------------------------------------------------
    # Internals.

    def _dispatch(self, event: Event) -> None:
        for listener in self._listeners:
            listener.on_event(event)

    def _wake_waiters(self, obj_ref: int) -> None:
        for thread in self._threads.values():
            if thread.status is ThreadStatus.BLOCKED and thread.blocked_on == obj_ref:
                thread.status = ThreadStatus.RUNNABLE
                thread.blocked_on = None

    def _force_release_monitors(self, thread: VMThread) -> None:
        for obj_ref, count in list(thread.ctx.held.items()):
            obj = self._vm.heap.get(obj_ref)
            for _ in range(count):
                obj.monitor.release(thread.ctx.thread_id)
            self._wake_waiters(obj_ref)
        thread.ctx.held.clear()
