"""The MiniJ virtual machine and its execution engine.

:class:`VM` owns the heap, the deterministic random stream, the global
trace-label counter and the interpreter.  :class:`Execution` owns a set
of threads, advances them one *event* at a time under a scheduler, and
dispatches every event to registered listeners (trace recorders, race
detectors, fuzzer probes).

A single VM can host several executions in sequence — exactly what the
synthesized tests need: run seed-test prefixes to collect objects, run
the context-setting calls, then run the racy methods from two threads,
all against one heap.

Hot-path architecture (see DESIGN.md, "Performance architecture"):

* **Pre-bound dispatch** — instead of walking the listener list and
  calling every ``on_event`` for every event, the Execution builds a
  per-event-class tuple of the bound callbacks that actually subscribe
  to that class (listeners may declare an ``interests`` tuple of event
  classes; no declaration means "everything").
* **Event elision** — while :meth:`Execution.run` or
  :meth:`Execution.run_single` drives the loop, the interpreter is told
  which event kinds have a subscriber and skips *constructing* the
  rest, yielding :data:`~repro.trace.events.SKIPPED_EVENT` after
  burning the label.  The schedule, labels, and every delivered event
  are bit-identical to an unfiltered run.  Manual :meth:`Execution.step`
  driving (the fuzzers inspect returned events) never elides.
* **Runnable cache** — the runnable-thread list is rebuilt only when
  some thread's status actually changes, in thread-creation order so
  seeded random schedules are unchanged.
"""

from __future__ import annotations

import enum
import sys
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Protocol

from repro._util.errors import (
    DeadlockError,
    MiniJRuntimeError,
    StaleExecutionError,
)
from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.runtime.heap import Heap
from repro.runtime.interp import ForkRequest, Interpreter, ThreadContext
from repro.runtime.scheduler import Scheduler, SequentialScheduler
from repro.runtime.values import Value
from repro.trace.events import (
    SKIPPED_EVENT,
    BlockedEvent,
    Event,
    FaultEvent,
    ForkEvent,
    JoinEvent,
    UnlockEvent,
)

#: Default event budget per execution; prevents racy loops from hanging
#: the fuzzer.
DEFAULT_MAX_STEPS = 200_000


class Listener(Protocol):
    """Anything that observes the event stream of an execution.

    A listener may additionally declare an ``interests`` attribute — a
    tuple of event classes (base classes allowed) it wants delivered.
    Listeners without the attribute (or with ``interests = None``)
    receive every event.  Declaring interests lets the Execution skip
    both dispatch *and construction* of unobserved high-volume events,
    so only declare kinds the listener genuinely never reads.
    """

    def on_event(self, event: Event) -> None: ...  # pragma: no cover


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAULTED = "faulted"


_RUNNABLE = ThreadStatus.RUNNABLE
_BLOCKED = ThreadStatus.BLOCKED


@dataclass
class VMThread:
    """Bookkeeping for one VM thread inside an Execution."""

    ctx: ThreadContext
    body: Iterator[Event]
    name: str
    status: ThreadStatus = ThreadStatus.RUNNABLE
    blocked_on: int | None = None
    fault: MiniJRuntimeError | None = None
    result: Value = None


@dataclass
class ExecutionResult:
    """Outcome of driving an execution to quiescence."""

    steps: int = 0
    completed: bool = False
    deadlocked: bool = False
    timed_out: bool = False
    faults: list[tuple[int, MiniJRuntimeError]] = field(default_factory=list)
    blocked: dict[int, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when every thread finished without fault or deadlock."""
        return self.completed and not self.faults and not self.deadlocked


class VM:
    """A MiniJ virtual machine for one resolved program."""

    def __init__(self, table: ClassTable, seed: int = 0) -> None:
        self.table = table
        self.heap = Heap()
        self.rng = random.Random(seed)
        self._label = 0
        self._next_thread_id = 0
        self.interp = Interpreter(table, self.heap, self.rng, self.next_label)
        # Resuming a generator nested N MiniJ-frames deep traverses the
        # whole `yield from` chain; give the interpreter headroom so the
        # MiniJ stack-overflow check fires before Python's own.
        if sys.getrecursionlimit() < 20_000:
            sys.setrecursionlimit(20_000)

    def next_label(self) -> int:
        label = self._label
        self._label += 1
        return label

    def new_thread_ctx(self) -> ThreadContext:
        ctx = ThreadContext(thread_id=self._next_thread_id)
        self._next_thread_id += 1
        return ctx

    # ------------------------------------------------------------------
    # Convenience entry points.

    def run_test(
        self,
        test_name: str,
        listeners: tuple[Listener, ...] = (),
        env: dict[str, Value] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> tuple[ExecutionResult, dict[str, Value]]:
        """Run a named sequential test to completion.

        Returns the execution result and the final client environment
        (test variables -> values).
        """
        test = self.table.program.test_decl(test_name)
        if test is None:
            raise MiniJRuntimeError("no-such-test", test_name)
        return self.run_client_stmts(test.body.stmts, listeners, env, max_steps)

    def run_client_stmts(
        self,
        stmts: list[ast.Stmt],
        listeners: tuple[Listener, ...] = (),
        env: dict[str, Value] | None = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> tuple[ExecutionResult, dict[str, Value]]:
        """Run client statements sequentially in a fresh thread."""
        client_env: dict[str, Value] = {} if env is None else env
        execution = Execution(self, listeners=listeners)
        execution.spawn(
            lambda ctx: self.interp.run_client_stmts(stmts, ctx, client_env),
            name="main",
        )
        result = execution.run(SequentialScheduler(), max_steps=max_steps)
        return result, client_env


class Execution:
    """A set of VM threads advanced under a scheduler.

    Threads are added with :meth:`spawn`; each is a generator of events.
    :meth:`step` advances one thread by one event and dispatches it to
    the listeners; :meth:`run` drives scheduling until every thread is
    done, a deadlock is reached, or the step budget runs out.
    """

    def __init__(self, vm: VM, listeners: tuple[Listener, ...] = ()) -> None:
        self._vm = vm
        self._listeners = list(listeners)
        self._threads: dict[int, VMThread] = {}
        self._last_scheduled: int | None = None
        self.steps = 0
        # Per-event-class tuples of subscribed on_event callbacks.
        self._dispatch_map: dict[type, tuple[Callable[[Event], None], ...]] = {}
        # Runnable tids in thread-creation order; None = needs rebuild.
        self._runnable_cache: list[int] | None = None
        self._running = False
        self._quiescent = False

    # ------------------------------------------------------------------
    # Thread management.

    def spawn(
        self,
        make_body: Callable[[ThreadContext], Iterator[Event]],
        name: str = "",
        parent: int | None = None,
    ) -> int:
        """Create a thread whose body is built from its ThreadContext.

        When ``parent`` is given, a ForkEvent (a happens-before edge for
        the detectors) is dispatched on the parent's behalf.

        Raises:
            StaleExecutionError: when the execution already ran to
                quiescence; a new thread could never be scheduled.
        """
        if self._quiescent:
            raise StaleExecutionError(
                "spawn() on an Execution that already ran to quiescence; "
                "create a new Execution on the same VM instead"
            )
        ctx = self._vm.new_thread_ctx()
        thread = VMThread(ctx=ctx, body=make_body(ctx), name=name or f"t{ctx.thread_id}")
        self._threads[ctx.thread_id] = thread
        self._runnable_cache = None
        if parent is not None:
            self._dispatch(
                ForkEvent(
                    label=self._vm.next_label(),
                    thread_id=parent,
                    node_id=-1,
                    call_index=0,
                    child_thread=ctx.thread_id,
                )
            )
        return ctx.thread_id

    def emit_join(self, parent: int, child: int) -> None:
        """Dispatch a JoinEvent: ``parent`` observed ``child`` finishing."""
        self._dispatch(
            JoinEvent(
                label=self._vm.next_label(),
                thread_id=parent,
                node_id=-1,
                call_index=0,
                child_thread=child,
            )
        )

    def thread(self, tid: int) -> VMThread:
        return self._threads[tid]

    def thread_ids(self) -> list[int]:
        return list(self._threads)

    def runnable_threads(self) -> list[int]:
        """Runnable thread ids in creation order.

        The returned list is cached until some thread changes status;
        callers must not mutate it.
        """
        cache = self._runnable_cache
        if cache is None:
            cache = self._runnable_cache = [
                tid
                for tid, thread in self._threads.items()
                if thread.status is _RUNNABLE
            ]
        return cache

    def live_threads(self) -> list[int]:
        return [
            tid
            for tid, thread in self._threads.items()
            if thread.status in (ThreadStatus.RUNNABLE, ThreadStatus.BLOCKED)
        ]

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)
        self._dispatch_map.clear()
        if self._running:
            self._vm.interp.set_emit_filter(self._wanted_kinds())

    # ------------------------------------------------------------------
    # Stepping.

    def step(self, tid: int) -> Event | None:
        """Advance thread ``tid`` by one event.

        Returns the event, or None when the thread just finished.
        Faults are converted into FaultEvents and terminate the thread,
        force-releasing its monitors so peers do not hang forever
        (mirroring monitor release during Java exception unwinding).
        """
        thread = self._threads[tid]
        prev_status = thread.status
        if prev_status is not _RUNNABLE and prev_status is not _BLOCKED:
            raise AssertionError(f"stepping {prev_status.value} thread {tid}")
        self.steps += 1
        self._last_scheduled = tid
        try:
            event = next(thread.body)
        except StopIteration as stop:
            thread.status = ThreadStatus.DONE
            thread.result = stop.value
            self._runnable_cache = None
            return None
        except MiniJRuntimeError as fault:
            thread.status = ThreadStatus.FAULTED
            thread.fault = fault
            self._runnable_cache = None
            self._force_release_monitors(thread)
            fault_event = FaultEvent(
                label=self._vm.next_label(),
                thread_id=tid,
                node_id=-1,
                call_index=0,
                kind=fault.kind,
                message=str(fault),
            )
            self._dispatch(fault_event)
            return fault_event

        if event is SKIPPED_EVENT:
            # An elided event: label burned, scheduling point taken, but
            # nobody subscribed — nothing to dispatch.  Elided kinds are
            # never synchronization events, so the thread stays runnable.
            if prev_status is not _RUNNABLE:
                thread.status = _RUNNABLE
                thread.blocked_on = None
                self._runnable_cache = None
            return event

        cls = event.__class__
        if cls is ForkRequest:
            # Client-level `fork {}`: spawn the child (which dispatches
            # the real ForkEvent) and keep the parent runnable.
            self.spawn(
                lambda ctx: self._vm.interp.run_client_stmts(
                    event.stmts, ctx, event.env
                ),
                name=f"fork@{event.node_id}",
                parent=tid,
            )
            if prev_status is not _RUNNABLE:
                thread.status = _RUNNABLE
                thread.blocked_on = None
            return None

        if cls is BlockedEvent:
            thread.status = _BLOCKED
            thread.blocked_on = event.obj
            if prev_status is not _BLOCKED:
                self._runnable_cache = None
        elif prev_status is not _RUNNABLE:
            thread.status = _RUNNABLE
            thread.blocked_on = None
            self._runnable_cache = None
        handlers = self._dispatch_map.get(cls)
        if handlers is None:
            handlers = self._bind(cls)
        for handler in handlers:
            handler(event)
        if cls is UnlockEvent and event.reentrancy == 0:
            self._wake_waiters(event.obj)
        return event

    def run(
        self, scheduler: Scheduler, max_steps: int = DEFAULT_MAX_STEPS
    ) -> ExecutionResult:
        """Drive all threads under ``scheduler`` until quiescence."""
        result = ExecutionResult()
        interp = self._vm.interp
        step = self.step
        pick = scheduler.pick
        self._running = True
        interp.set_emit_filter(self._wanted_kinds())
        try:
            while True:
                runnable = self.runnable_threads()
                if not runnable:
                    live = self.live_threads()
                    if live:
                        result.deadlocked = True
                        result.blocked = {
                            tid: self._threads[tid].blocked_on or -1 for tid in live
                        }
                    else:
                        result.completed = True
                    break
                if self.steps >= max_steps:
                    result.timed_out = True
                    break
                step(pick(runnable, self._last_scheduled))
        finally:
            self._running = False
            interp.set_emit_filter(None)
        result.steps = self.steps
        result.faults = [
            (tid, thread.fault)
            for tid, thread in self._threads.items()
            if thread.fault is not None
        ]
        if result.completed:
            self._quiescent = True
        return result

    def run_single(self, tid: int, max_steps: int = DEFAULT_MAX_STEPS) -> VMThread:
        """Drive one thread to completion (sequential phases).

        Raises:
            DeadlockError: if the thread blocks with nobody to unblock it.
        """
        thread = self._threads[tid]
        interp = self._vm.interp
        self._running = True
        interp.set_emit_filter(self._wanted_kinds())
        try:
            steps = 0
            while thread.status in (ThreadStatus.RUNNABLE, ThreadStatus.BLOCKED):
                if thread.status is ThreadStatus.BLOCKED:
                    raise DeadlockError({tid: thread.blocked_on or -1})
                if steps >= max_steps:
                    raise MiniJRuntimeError(
                        "step-budget", f"thread {tid} exceeded budget"
                    )
                self.step(tid)
                steps += 1
        finally:
            self._running = False
            interp.set_emit_filter(None)
        return thread

    # ------------------------------------------------------------------
    # Internals.

    def _wanted_kinds(self) -> set[type] | None:
        """Union of listener interests, or None when someone wants all."""
        wanted: set[type] = set()
        for listener in self._listeners:
            interests = getattr(listener, "interests", None)
            if interests is None:
                return None
            wanted.update(interests)
        return wanted

    def _bind(self, cls: type) -> tuple[Callable[[Event], None], ...]:
        """Build (and memoize) the subscriber tuple for one event class."""
        handlers = []
        for listener in self._listeners:
            interests = getattr(listener, "interests", None)
            if interests is None or any(
                issubclass(cls, interest) for interest in interests
            ):
                handlers.append(listener.on_event)
        bound = tuple(handlers)
        self._dispatch_map[cls] = bound
        return bound

    def _dispatch(self, event: Event) -> None:
        cls = event.__class__
        handlers = self._dispatch_map.get(cls)
        if handlers is None:
            handlers = self._bind(cls)
        for handler in handlers:
            handler(event)

    def _wake_waiters(self, obj_ref: int) -> None:
        for thread in self._threads.values():
            if thread.status is _BLOCKED and thread.blocked_on == obj_ref:
                thread.status = _RUNNABLE
                thread.blocked_on = None
                self._runnable_cache = None

    def _force_release_monitors(self, thread: VMThread) -> None:
        for obj_ref, count in list(thread.ctx.held.items()):
            obj = self._vm.heap.get(obj_ref)
            for _ in range(count):
                obj.monitor.release(thread.ctx.thread_id)
            self._wake_waiters(obj_ref)
        thread.ctx.held.clear()
        thread.ctx.locks_cache = None
