"""Static lockset pre-filter for the candidate pipeline.

The package implements the **generate → statically prune → rank →
budget** stage between the Pair Generator and the schedule fuzzer:

* :mod:`repro.static.facts` — a flow-insensitive lockset abstract
  interpretation over MiniJ ASTs producing per-access-site facts
  (owner path, must-hold lock paths, thread-locality).
* :mod:`repro.static.filter` — pair verdicts (pruned / ranked with a
  risk score), the :class:`CandidateSet` the pair generator returns,
  and per-test fuzz-budget allocation.
"""

from repro.static.facts import SiteFacts, StaticFacts, analyze_program
from repro.static.filter import (
    CandidateSet,
    PairVerdict,
    StaticFilterStats,
    TestBudget,
    allocate_budgets,
    evaluate_pairs,
    filter_stats,
)

__all__ = [
    "SiteFacts",
    "StaticFacts",
    "analyze_program",
    "CandidateSet",
    "PairVerdict",
    "StaticFilterStats",
    "TestBudget",
    "allocate_budgets",
    "evaluate_pairs",
    "filter_stats",
]
