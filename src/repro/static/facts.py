"""Flow-insensitive lockset facts over MiniJ ASTs.

The abstraction interprets each method body symbolically and records,
for every field-access site (``FieldGet`` reads, ``AssignField``
writes), three facts keyed by the site's ``node_id`` — the same id the
runtime stamps on the access events the dynamic analysis consumes:

* the **owner path** τ: the symbolic access path of the expression the
  field is read from / written to (``("this",)`` for ``this.f``,
  ``("x", "box")`` for ``x.box.f``), or ``None`` when the owner is not
  expressible as a stable path;
* the **must-hold lock paths**: symbolic paths of every monitor that is
  lexically held at the site (enclosing ``sync`` blocks plus ``this``
  for ``synchronized`` methods), restricted to paths whose value cannot
  change between acquisition and access;
* a **thread-local** bit: the owner is a freshly allocated local object
  that provably never escapes the creating thread.

A path is *usable* only when its root is constant for the duration of
the invocation (``this``, or a local/parameter that is never
reassigned) and every field component is *stable* — assigned only
during construction, program-wide, by constructors that do not leak
``this``.  Stable fields cannot change after the constructor returns,
and because synthesized tests construct all context objects before
forking, every thread observes the same value; that is what lets two
invocations agree on which monitor ``o.lock`` denotes.

Anything the abstraction cannot express falls through as *Unknown*
(no entry for the node id), which the filter treats as "may race".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.classtable import ClassTable

#: Builtin pseudo-fields (array element/length slots); arrays are
#: mutated through native calls the walker does not model, so these are
#: never stable and never part of a usable path.
_PSEUDO_FIELDS = frozenset({"elem", "length"})

#: Root marker for receiver-rooted paths.
THIS_ROOT = "this"

Path = tuple[str, ...]


@dataclass(frozen=True)
class SiteFacts:
    """Static facts for one field-access site."""

    node_id: int
    kind: str  # "R" or "W"
    field_name: str
    owner: Path | None
    """Owner path τ, or None when the owner is not a usable path."""
    must_locks: frozenset[Path]
    """Usable lock paths lexically held at the site."""
    thread_local: bool
    """Owner is a fresh local object that never escapes this thread."""

    def rel_locks(self) -> frozenset[Path]:
        """Lock paths relative to the owner: suffixes s with λ = τ ⊕ s.

        Two racing accesses share their owner object (a race requires
        one address), so equal relative suffixes name the same monitor:
        the empty suffix is ``sync(owner)`` itself, ``("lk",)`` is
        ``owner.lk``, and so on.
        """
        if self.owner is None:
            return frozenset()
        n = len(self.owner)
        return frozenset(
            lock[n:] for lock in self.must_locks if lock[:n] == self.owner
        )

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "kind": self.kind,
            "field": self.field_name,
            "owner": list(self.owner) if self.owner is not None else None,
            "must_locks": sorted(list(p) for p in self.must_locks),
            "thread_local": self.thread_local,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SiteFacts":
        owner = data.get("owner")
        return cls(
            node_id=data["node_id"],
            kind=data["kind"],
            field_name=data["field"],
            owner=tuple(owner) if owner is not None else None,
            must_locks=frozenset(tuple(p) for p in data.get("must_locks", ())),
            thread_local=bool(data.get("thread_local", False)),
        )


@dataclass
class StaticFacts:
    """Program-wide result of the lockset abstract interpretation."""

    sites: dict[int, SiteFacts] = field(default_factory=dict)
    stable_fields: frozenset[str] = frozenset()
    site_count: int = 0

    def site(self, node_id: int) -> SiteFacts | None:
        return self.sites.get(node_id)

    def to_dict(self) -> dict:
        return {
            "sites": [self.sites[k].to_dict() for k in sorted(self.sites)],
            "stable_fields": sorted(self.stable_fields),
            "site_count": self.site_count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StaticFacts":
        sites = {
            entry["node_id"]: SiteFacts.from_dict(entry)
            for entry in data.get("sites", ())
        }
        return cls(
            sites=sites,
            stable_fields=frozenset(data.get("stable_fields", ())),
            site_count=int(data.get("site_count", len(sites))),
        )


# ----------------------------------------------------------------------
# Generic AST iteration helpers.


def _child_nodes(node) -> list:
    out = []
    for value in vars(node).values():
        if isinstance(value, (ast.Expr, ast.Stmt)):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, (ast.Expr, ast.Stmt)))
    return out


def _walk(node):
    """Yield node and every AST descendant (pre-order)."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(_child_nodes(current)))


# ----------------------------------------------------------------------
# Stability: fields assigned only during construction.


def _ctor_leaks_this(ctor: ast.MethodDecl) -> bool:
    """Does the constructor let ``this`` escape before it returns?

    ``this`` may appear only as the root of a field read/write target
    chain or as a ``sync`` lock; anywhere else (call argument or
    receiver, assignment value, return) conservatively counts as an
    escape — another thread could then observe the object
    mid-construction.
    """

    def chain_leaks(expr) -> bool:
        # `expr` is used purely as the owner of a field access; a
        # this-rooted FieldGet chain is fine.
        if isinstance(expr, ast.This):
            return False
        if isinstance(expr, ast.FieldGet):
            return chain_leaks(expr.target)
        return expr_leaks(expr)

    def expr_leaks(expr) -> bool:
        if expr is None:
            return False
        if isinstance(expr, ast.This):
            return True
        if isinstance(expr, ast.FieldGet):
            return chain_leaks(expr.target)
        return any(expr_leaks(c) for c in _child_nodes(expr))

    def stmt_leaks(stmt) -> bool:
        if stmt is None:
            return False
        if isinstance(stmt, ast.AssignField):
            return chain_leaks(stmt.target) or expr_leaks(stmt.value)
        if isinstance(stmt, ast.Sync):
            lock_ok = isinstance(stmt.lock, ast.This) or not expr_leaks(
                stmt.lock
            )
            return (not lock_ok) or stmt_leaks(stmt.body)
        for child in _child_nodes(stmt):
            leaked = (
                expr_leaks(child)
                if isinstance(child, ast.Expr)
                else stmt_leaks(child)
            )
            if leaked:
                return True
        return False

    return stmt_leaks(ctor.body)


def _contains_this(node) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.This):
        return True
    return any(_contains_this(c) for c in _child_nodes(node))


def _compute_stable_fields(table: ClassTable) -> frozenset[str]:
    """Field names assigned only during (non-leaking) construction.

    Stability is name-based across the whole program: one mutable
    ``lock`` field anywhere poisons the name everywhere.  That is
    coarse but keeps the analysis trivially sound under MiniJ's flat
    class namespace.
    """
    assigned_outside_ctor: set[str] = set()
    ctor_assigned: dict[str, bool] = {}  # field -> all ctors non-leaking
    declared: set[str] = set()
    for cls in table.program.classes:
        for fdecl in cls.fields:
            declared.add(fdecl.name)
            if fdecl.init is not None and _contains_this(fdecl.init):
                assigned_outside_ctor.add(fdecl.name)
        for method in cls.methods:
            leaks = method.is_constructor and _ctor_leaks_this(method)
            for node in _walk(method.body):
                if not isinstance(node, ast.AssignField):
                    continue
                name = node.field_name
                if method.is_constructor:
                    ok = ctor_assigned.get(name, True) and not leaks
                    ctor_assigned[name] = ok
                else:
                    assigned_outside_ctor.add(name)
    stable = {
        name
        for name in declared
        if name not in assigned_outside_ctor
        and name not in _PSEUDO_FIELDS
        and ctor_assigned.get(name, True)
    }
    return frozenset(stable)


def _nonleaking_classes(table: ClassTable) -> frozenset[str]:
    """Classes none of whose constructors leak ``this``."""
    names = set()
    for cls in table.program.classes:
        ctors = [m for m in cls.methods if m.is_constructor]
        if all(not _ctor_leaks_this(c) for c in ctors):
            names.add(cls.name)
    return frozenset(names)


# ----------------------------------------------------------------------
# Per-method walk.


class _MethodWalker:
    def __init__(
        self,
        method: ast.MethodDecl,
        stable: frozenset[str],
        fresh_classes: frozenset[str],
        sink: dict[int, SiteFacts],
    ) -> None:
        self._method = method
        self._stable = stable
        self._sink = sink
        self._reassigned = self._collect_reassigned(method)
        self._locals = frozenset(
            {p.name for p in method.params}
            | {
                n.name
                for n in _walk(method.body)
                if isinstance(n, ast.VarDecl)
            }
        )
        self._thread_local_vars = self._collect_thread_local(
            method, fresh_classes
        )
        self._lock_stack: list[Path] = []
        if method.synchronized:
            self._lock_stack.append((THIS_ROOT,))

    @staticmethod
    def _collect_reassigned(method: ast.MethodDecl) -> frozenset[str]:
        return frozenset(
            n.name for n in _walk(method.body) if isinstance(n, ast.AssignVar)
        )

    def _collect_thread_local(
        self, method: ast.MethodDecl, fresh_classes: frozenset[str]
    ) -> frozenset[str]:
        """Locals bound to a fresh object that never escapes.

        The variable must be declared with a ``new C(...)`` initializer
        for a non-leaking class, never reassigned, and every other use
        must be as the direct target of a field read/write — appearing
        as a call argument, assignment value, return value, lock, or
        anything else counts as an escape.
        """
        fresh: dict[str, bool] = {}
        for node in _walk(method.body):
            if isinstance(node, ast.VarDecl):
                is_fresh = (
                    isinstance(node.init, ast.New)
                    and node.init.class_name in fresh_classes
                    and node.name not in self._reassigned
                )
                # Redeclaration (shadowing) would confuse the
                # name-based view; treat it as escaping.
                if node.name in fresh:
                    is_fresh = False
                fresh[node.name] = is_fresh
        if not fresh:
            return frozenset()
        for node in _walk(method.body):
            for name in self._escaping_var_uses(node):
                fresh[name] = False
        return frozenset(n for n, ok in fresh.items() if ok)

    @staticmethod
    def _escaping_var_uses(node) -> list[str]:
        """Var names used somewhere other than as an access target."""
        out = []
        safe_children: set[int] = set()
        if isinstance(node, (ast.FieldGet, ast.AssignField)) and isinstance(
            node.target, ast.VarRef
        ):
            safe_children.add(id(node.target))
        for child in _child_nodes(node):
            if isinstance(child, ast.VarRef) and id(child) not in safe_children:
                out.append(child.name)
        return out

    # -- paths ---------------------------------------------------------

    def path_of(self, expr) -> Path | None:
        """Usable symbolic path of an expression, else None.

        Roots: ``this`` (always constant within an invocation) or a
        local/parameter that is never reassigned.  Every field hop must
        be through a stable field.
        """
        if isinstance(expr, ast.This):
            return (THIS_ROOT,)
        if isinstance(expr, ast.VarRef):
            if (
                expr.name in self._locals
                and expr.name not in self._reassigned
                and expr.name != THIS_ROOT
            ):
                return (expr.name,)
            return None
        if isinstance(expr, ast.FieldGet):
            if expr.field_name not in self._stable:
                return None
            base = self.path_of(expr.target)
            if base is None:
                return None
            return base + (expr.field_name,)
        return None

    # -- traversal -----------------------------------------------------

    def run(self) -> None:
        self._stmt(self._method.body)

    def _stmt(self, stmt) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for s in stmt.stmts:
                self._stmt(s)
        elif isinstance(stmt, ast.Sync):
            self._expr(stmt.lock)
            lock_path = self.path_of(stmt.lock)
            if lock_path is not None:
                self._lock_stack.append(lock_path)
                self._stmt(stmt.body)
                self._lock_stack.pop()
            else:
                self._stmt(stmt.body)
        elif isinstance(stmt, ast.AssignField):
            self._expr(stmt.target)
            self._expr(stmt.value)
            self._record(stmt.node_id, "W", stmt.field_name, stmt.target)
        elif isinstance(stmt, ast.VarDecl):
            self._expr(stmt.init)
        elif isinstance(stmt, ast.AssignVar):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.cond)
            self._stmt(stmt.then_body)
            self._stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.Return):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self._expr(stmt.cond)
        elif isinstance(stmt, ast.Fork):
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)

    def _expr(self, expr) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.FieldGet):
            self._expr(expr.target)
            self._record(expr.node_id, "R", expr.field_name, expr.target)
            return
        for child in _child_nodes(expr):
            self._expr(child)

    def _record(self, node_id: int, kind: str, field_name: str, target) -> None:
        owner = self.path_of(target)
        thread_local = (
            owner is not None
            and len(owner) == 1
            and owner[0] in self._thread_local_vars
        )
        self._sink[node_id] = SiteFacts(
            node_id=node_id,
            kind=kind,
            field_name=field_name,
            owner=owner,
            must_locks=frozenset(self._lock_stack),
            thread_local=thread_local,
        )


def analyze_program(table: ClassTable) -> StaticFacts:
    """Run the lockset abstract interpretation over a whole program."""
    stable = _compute_stable_fields(table)
    fresh_classes = _nonleaking_classes(table)
    sites: dict[int, SiteFacts] = {}
    for cls in table.program.classes:
        for method in cls.methods:
            _MethodWalker(method, stable, fresh_classes, sites).run()
    return StaticFacts(
        sites=sites, stable_fields=stable, site_count=len(sites)
    )
