"""Pair verdicts, candidate sets, and ranked fuzz budgets.

This is the prune/rank half of the staged candidate pipeline.  A
:class:`PairVerdict` discharges a pair as statically race-free when
*every* concrete site pair it covers is proven safe by one of three
rules, mirroring the inverse of Narada's empty-lock-intersection
criterion (§3.3):

* **consistent-lock** — both sites hold a common lock expressed
  relative to the shared owner object (``sync`` methods are the empty
  suffix, a guard field like ``this.lock`` is the ``("lock",)``
  suffix), so the accesses are mutually excluded;
* **thread-local** — one side targets a fresh object that never
  escapes its creating thread, so no second thread can reach the
  address;
* **read-read** — neither side writes.

Any site the facts walker could not model (``Unknown``) falls through:
the pair survives and is ranked, never pruned.  Surviving pairs carry
a risk score that orders fuzz-budget allocation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.pairs.generator import RacyPair
from repro.static.facts import SiteFacts, StaticFacts

#: Verdict statuses.
PRUNED = "pruned"
RANKED = "ranked"

#: Prune-rule names (doubling as reason strings in stats/CLI output).
RULE_CONSISTENT_LOCK = "consistent-lock"
RULE_THREAD_LOCAL = "thread-local"
RULE_READ_READ = "read-read"

#: Risk-score components for ranked site pairs.
SCORE_UNKNOWN = 4
SCORE_BOTH_UNGUARDED = 3
SCORE_WRITE_WRITE = 2
SCORE_HALF_GUARDED = 2
SCORE_DISJOINT_LOCKS = 2
SCORE_UNKNOWN_OWNER = 1


@dataclass(frozen=True)
class PairVerdict:
    """Static verdict for one candidate pair."""

    status: str  # PRUNED or RANKED
    reason: str  # dominant prune rule, or "" for ranked pairs
    score: int  # risk score (0 for pruned pairs)
    deadlock_risk: bool = False
    """Some covered site holds >=2 locks on both sides: even a pruned
    pair may still deadlock, so its test keeps a reduced budget."""

    @property
    def pruned(self) -> bool:
        return self.status == PRUNED

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "reason": self.reason,
            "score": self.score,
            "deadlock_risk": self.deadlock_risk,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PairVerdict":
        return cls(
            status=data["status"],
            reason=data.get("reason", ""),
            score=int(data.get("score", 0)),
            deadlock_risk=bool(data.get("deadlock_risk", False)),
        )


class CandidateSet(list):
    """The pair generator's result: pairs plus aligned verdicts.

    Subclasses ``list`` so every existing consumer that iterates,
    indexes, or measures the pair list keeps working; ``verdicts`` is
    empty when the static filter is off (legacy behavior).
    """

    def __init__(self, pairs=(), verdicts=()):  # noqa: D107
        super().__init__(pairs)
        self.verdicts: list[PairVerdict] = list(verdicts)

    def verdict_for(self, index: int) -> PairVerdict | None:
        if index < len(self.verdicts):
            return self.verdicts[index]
        return None

    def pruned_count(self) -> int:
        return sum(1 for v in self.verdicts if v.pruned)


# ----------------------------------------------------------------------
# Site-pair discharge rules.


def _discharge_site_pair(
    a: SiteFacts | None, b: SiteFacts | None
) -> str | None:
    """Return the rule name proving this site pair race-free, or None."""
    if a is None or b is None:
        return None  # Unknown falls through
    if a.thread_local or b.thread_local:
        return RULE_THREAD_LOCAL
    if a.kind == "R" and b.kind == "R":
        return RULE_READ_READ
    if a.owner is not None and b.owner is not None:
        if a.rel_locks() & b.rel_locks():
            return RULE_CONSISTENT_LOCK
    return None


def _site_pair_score(a: SiteFacts | None, b: SiteFacts | None) -> int:
    if a is None or b is None:
        return SCORE_UNKNOWN
    score = 0
    if a.owner is None or b.owner is None:
        score += SCORE_UNKNOWN_OWNER
    if a.kind == "W" and b.kind == "W":
        score += SCORE_WRITE_WRITE
    guarded_a = bool(a.must_locks)
    guarded_b = bool(b.must_locks)
    if not guarded_a and not guarded_b:
        score += SCORE_BOTH_UNGUARDED
    elif guarded_a != guarded_b:
        score += SCORE_HALF_GUARDED
    else:
        score += SCORE_DISJOINT_LOCKS
    return score


def _deadlock_risk(a: SiteFacts | None, b: SiteFacts | None) -> bool:
    return (
        a is not None
        and b is not None
        and len(a.must_locks) >= 2
        and len(b.must_locks) >= 2
    )


def evaluate_pair(pair: RacyPair, facts: StaticFacts) -> PairVerdict:
    """Judge one candidate pair against the static facts."""
    reasons: Counter[str] = Counter()
    score = 0
    deadlock = False
    all_discharged = True
    for first_site, second_site in sorted(pair.site_pairs):
        a = facts.site(first_site)
        b = facts.site(second_site)
        deadlock = deadlock or _deadlock_risk(a, b)
        rule = _discharge_site_pair(a, b)
        if rule is None:
            all_discharged = False
            score = max(score, _site_pair_score(a, b))
        else:
            reasons[rule] += 1
    if all_discharged and pair.site_pairs:
        reason = max(sorted(reasons), key=lambda r: reasons[r])
        return PairVerdict(
            status=PRUNED, reason=reason, score=0, deadlock_risk=deadlock
        )
    return PairVerdict(
        status=RANKED, reason="", score=score, deadlock_risk=deadlock
    )


def evaluate_pairs(
    pairs: list[RacyPair], facts: StaticFacts
) -> CandidateSet:
    """Stage 2b: attach a verdict to every generated pair."""
    return CandidateSet(pairs, [evaluate_pair(p, facts) for p in pairs])


# ----------------------------------------------------------------------
# Fuzz-budget allocation.


@dataclass(frozen=True)
class TestBudget:
    """Per-test fuzz budget derived from the covered pairs' verdicts."""

    runs: int
    score: int
    pruned: bool
    """All covered pairs statically pruned (runs is 0 or the reduced
    deadlock-watch budget)."""


def allocate_budgets(
    tests, verdicts_by_id: dict, base_runs: int
) -> dict[str, TestBudget]:
    """Assign a random-phase run budget to every synthesized test.

    A test whose covered pairs are all pruned gets zero runs (skipped
    entirely), unless one of those pairs carries deadlock risk — then
    it keeps a halved budget purely to observe deadlocks.  Surviving
    tests keep the full base budget and inherit the max risk score of
    their ranked pairs, which orders them in reports.
    """
    budgets: dict[str, TestBudget] = {}
    for test in tests:
        covered = [
            verdicts_by_id.get(pair.static_id()) for pair in test.covered_pairs
        ]
        if covered and all(v is not None and v.pruned for v in covered):
            if any(v.deadlock_risk for v in covered):
                runs = max(1, base_runs // 2)
            else:
                runs = 0
            budgets[test.name] = TestBudget(runs=runs, score=0, pruned=True)
            continue
        score = max(
            (v.score for v in covered if v is not None and not v.pruned),
            default=0,
        )
        budgets[test.name] = TestBudget(
            runs=base_runs, score=score, pruned=False
        )
    return budgets


def verdict_index(report) -> dict:
    """Map pair static ids to verdicts for a synthesis report."""
    verdicts = getattr(report, "verdicts", None) or []
    if len(verdicts) != len(report.pairs):
        return {}
    return {
        pair.static_id(): verdict
        for pair, verdict in zip(report.pairs, verdicts)
    }


# ----------------------------------------------------------------------
# Statistics.


@dataclass
class StaticFilterStats:
    """Aggregated prune/rank statistics for reports and CLI output."""

    generated: int = 0
    pruned: int = 0
    ranked: int = 0
    by_reason: Counter = field(default_factory=Counter)
    score_total: int = 0
    deadlock_watch: int = 0

    @property
    def pruned_fraction(self) -> float:
        return self.pruned / self.generated if self.generated else 0.0

    def absorb(self, other: "StaticFilterStats") -> None:
        self.generated += other.generated
        self.pruned += other.pruned
        self.ranked += other.ranked
        self.by_reason.update(other.by_reason)
        self.score_total += other.score_total
        self.deadlock_watch += other.deadlock_watch


def filter_stats(verdicts: list[PairVerdict]) -> StaticFilterStats:
    stats = StaticFilterStats(generated=len(verdicts))
    for verdict in verdicts:
        if verdict.pruned:
            stats.pruned += 1
            stats.by_reason[verdict.reason] += 1
            if verdict.deadlock_risk:
                stats.deadlock_watch += 1
        else:
            stats.ranked += 1
            stats.score_total += verdict.score
    return stats
