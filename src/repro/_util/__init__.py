"""Internal utilities shared by the repro packages."""

from repro._util.errors import (
    AnalysisError,
    DeadlockError,
    LexError,
    MiniJRuntimeError,
    ParseError,
    ReproError,
    SourceError,
    SynthesisError,
    TypeError_,
)

__all__ = [
    "AnalysisError",
    "DeadlockError",
    "LexError",
    "MiniJRuntimeError",
    "ParseError",
    "ReproError",
    "SourceError",
    "SynthesisError",
    "TypeError_",
]
