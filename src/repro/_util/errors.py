"""Common error types shared across the repro packages.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without also catching programming mistakes in the
caller's own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """An error that points at a location in MiniJ source text.

    Attributes:
        line: 1-based line number in the source text, or 0 when unknown.
        column: 1-based column number, or 0 when unknown.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class LexError(SourceError):
    """Raised by the lexer on malformed input."""


class ParseError(SourceError):
    """Raised by the parser on a syntax error."""


class TypeError_(SourceError):
    """Raised during class-table construction or resolution.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class MiniJRuntimeError(ReproError):
    """Raised when a MiniJ program faults at run time.

    These are the faults the ConTeGe-style oracle observes: null
    dereference, out-of-bounds array access, division by zero, assertion
    failure.

    Attributes:
        kind: a short machine-readable fault category.
        thread_id: the VM thread that faulted, or -1 for the client.
    """

    def __init__(self, kind: str, message: str, thread_id: int = -1) -> None:
        self.kind = kind
        self.thread_id = thread_id
        super().__init__(f"{kind}: {message}")


class StaleExecutionError(ReproError):
    """Raised when a finished :class:`~repro.runtime.vm.Execution` is reused.

    Once ``run`` has driven an execution to quiescence (every thread
    done), spawning another thread into it is almost certainly a bug:
    the new thread would never be scheduled unless ``run`` were called
    again, and listeners would see a trace with a silent gap.  Create a
    fresh Execution on the same VM instead.
    """


class DeadlockError(ReproError):
    """Raised when every live VM thread is blocked on a monitor."""

    def __init__(self, blocked: dict[int, int]) -> None:
        self.blocked = dict(blocked)
        desc = ", ".join(
            f"thread {tid} on object #{obj}" for tid, obj in sorted(blocked.items())
        )
        super().__init__(f"deadlock: {desc}")


class SynthesisError(ReproError):
    """Raised when the synthesizer cannot build a runnable test."""


class AnalysisError(ReproError):
    """Raised when trace analysis encounters an inconsistent trace."""
