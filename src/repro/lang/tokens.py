"""Token definitions for the MiniJ language.

MiniJ is the small Java-like object language the whole reproduction is
built on: the subject libraries (C1..C9), the sequential seed tests, and
the synthesized multithreaded tests are all MiniJ programs.  Keeping the
language tiny lets the VM expose every field access and lock operation as
an explicit, schedulable event — which is what makes races *real* in a
Python reproduction despite the GIL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories of MiniJ tokens."""

    # Literals and identifiers.
    IDENT = "ident"
    INT = "int"

    # Keywords.
    KW_CLASS = "class"
    KW_INTERFACE = "interface"
    KW_IMPLEMENTS = "implements"
    KW_SYNCHRONIZED = "synchronized"
    KW_VOID = "void"
    KW_INT = "kw_int"
    KW_BOOL = "kw_bool"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_RETURN = "return"
    KW_NEW = "new"
    KW_THIS = "this"
    KW_NULL = "null"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_TEST = "test"
    KW_ASSERT = "assert"
    KW_RAND = "rand"
    KW_FORK = "fork"

    # Punctuation.
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COMMA = ","
    DOT = "."

    # Operators.
    ASSIGN = "="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    NOT = "!"
    AND = "&&"
    OR = "||"

    EOF = "eof"


#: Reserved words mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    "class": TokenKind.KW_CLASS,
    "interface": TokenKind.KW_INTERFACE,
    "implements": TokenKind.KW_IMPLEMENTS,
    "synchronized": TokenKind.KW_SYNCHRONIZED,
    "void": TokenKind.KW_VOID,
    "int": TokenKind.KW_INT,
    "bool": TokenKind.KW_BOOL,
    "boolean": TokenKind.KW_BOOL,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "return": TokenKind.KW_RETURN,
    "new": TokenKind.KW_NEW,
    "this": TokenKind.KW_THIS,
    "null": TokenKind.KW_NULL,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "test": TokenKind.KW_TEST,
    "assert": TokenKind.KW_ASSERT,
    "rand": TokenKind.KW_RAND,
    "fork": TokenKind.KW_FORK,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: the lexical category.
        text: the exact source text of the token.
        line: 1-based source line.
        column: 1-based source column of the first character.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"
