"""MiniJ: the small Java-like language the reproduction is built on.

Public entry points:

* :func:`repro.lang.load` — parse + build class table + resolve, in one
  call.  This is what most users want.
* :func:`repro.lang.parser.parse` — parse only.
* :class:`repro.lang.classtable.ClassTable` — the resolved program view.
"""

from repro.lang import ast
from repro.lang.classtable import ClassTable
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.lang.pretty import pretty_class, pretty_expr, pretty_program, pretty_stmt
from repro.lang.resolver import resolve
from repro.lang.types import BOOL, INT, NULL, VOID, Type, class_type


def load(source: str) -> ClassTable:
    """Parse MiniJ source, build its class table, and resolve it.

    Args:
        source: MiniJ program text.

    Returns:
        The resolved :class:`ClassTable` (the program is reachable via
        ``table.program``).

    Raises:
        LexError, ParseError, TypeError_: on malformed programs.
    """
    program = parse(source)
    table = ClassTable(program)
    resolve(table)
    return table


__all__ = [
    "BOOL",
    "INT",
    "NULL",
    "VOID",
    "ClassTable",
    "Type",
    "ast",
    "class_type",
    "load",
    "parse",
    "pretty_class",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
    "resolve",
    "tokenize",
]
