"""Pretty printer for MiniJ ASTs.

Used for two things: rendering subject library sources in documentation,
and rendering synthesized multithreaded tests in the Figure-3 style of
the paper so users can read what Narada produced.
"""

from __future__ import annotations

from repro.lang import ast

_INDENT = "  "


def pretty_program(program: ast.Program) -> str:
    """Render a whole program back to MiniJ source text."""
    parts: list[str] = []
    for iface in program.interfaces:
        parts.append(pretty_interface(iface))
    for cls in program.classes:
        parts.append(pretty_class(cls))
    for test in program.tests:
        parts.append(pretty_test(test))
    return "\n\n".join(parts) + "\n"


def pretty_interface(iface: ast.InterfaceDecl) -> str:
    lines = [f"interface {iface.name} {{"]
    for sig in iface.signatures:
        params = ", ".join(f"{t} p{i}" for i, t in enumerate(sig.param_types))
        lines.append(f"{_INDENT}{sig.return_type} {sig.name}({params});")
    lines.append("}")
    return "\n".join(lines)


def pretty_class(cls: ast.ClassDecl) -> str:
    header = f"class {cls.name}"
    if cls.implements:
        header += " implements " + ", ".join(cls.implements)
    lines = [header + " {"]
    for field_decl in cls.fields:
        init = f" = {pretty_expr(field_decl.init)}" if field_decl.init else ""
        lines.append(f"{_INDENT}{field_decl.field_type} {field_decl.name}{init};")
    for method in cls.methods:
        lines.append(_pretty_method(method, indent=1))
    lines.append("}")
    return "\n".join(lines)


def pretty_test(test: ast.TestDecl) -> str:
    lines = [f"test {test.name} {{"]
    for stmt in test.body.stmts:
        lines.extend(pretty_stmt(stmt, indent=1))
    lines.append("}")
    return "\n".join(lines)


def _pretty_method(method: ast.MethodDecl, indent: int) -> str:
    pad = _INDENT * indent
    params = ", ".join(f"{p.param_type} {p.name}" for p in method.params)
    if method.is_constructor:
        header = f"{pad}{method.name}({params}) {{"
    else:
        sync = "synchronized " if method.synchronized else ""
        header = f"{pad}{sync}{method.return_type} {method.name}({params}) {{"
    lines = [header]
    for stmt in method.body.stmts:
        lines.extend(pretty_stmt(stmt, indent + 1))
    lines.append(pad + "}")
    return "\n".join(lines)


def pretty_stmt(stmt: ast.Stmt, indent: int = 0) -> list[str]:
    """Render one statement as a list of indented source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        lines = [pad + "{"]
        for inner in stmt.stmts:
            lines.extend(pretty_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.VarDecl):
        init = f" = {pretty_expr(stmt.init)}" if stmt.init is not None else ""
        return [f"{pad}{stmt.decl_type} {stmt.name}{init};"]
    if isinstance(stmt, ast.AssignVar):
        return [f"{pad}{stmt.name} = {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.AssignField):
        target = pretty_expr(stmt.target)
        return [f"{pad}{target}.{stmt.field_name} = {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({pretty_expr(stmt.cond)}) {{"]
        for inner in stmt.then_body.stmts:
            lines.extend(pretty_stmt(inner, indent + 1))
        if stmt.else_body is None:
            lines.append(pad + "}")
        elif isinstance(stmt.else_body, ast.If):
            lines.append(pad + "} else " + pretty_stmt(stmt.else_body, 0)[0].lstrip())
            lines.extend(pretty_stmt(stmt.else_body, indent)[1:])
        else:
            lines.append(pad + "} else {")
            assert isinstance(stmt.else_body, ast.Block)
            for inner in stmt.else_body.stmts:
                lines.extend(pretty_stmt(inner, indent + 1))
            lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({pretty_expr(stmt.cond)}) {{"]
        for inner in stmt.body.stmts:
            lines.extend(pretty_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [pad + "return;"]
        return [f"{pad}return {pretty_expr(stmt.value)};"]
    if isinstance(stmt, ast.Sync):
        lines = [f"{pad}synchronized ({pretty_expr(stmt.lock)}) {{"]
        for inner in stmt.body.stmts:
            lines.extend(pretty_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.Assert):
        return [f"{pad}assert {pretty_expr(stmt.cond)};"]
    if isinstance(stmt, ast.Fork):
        lines = [pad + "fork {"]
        for inner in stmt.body.stmts:
            lines.extend(pretty_stmt(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{pretty_expr(stmt.expr)};"]
    raise ValueError(f"unknown statement {type(stmt).__name__}")


def pretty_expr(expr: ast.Expr | None) -> str:
    """Render one expression as source text."""
    if expr is None:
        return "<none>"
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.NullLit):
        return "null"
    if isinstance(expr, ast.This):
        return "this"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Rand):
        return "rand()"
    if isinstance(expr, ast.FieldGet):
        return f"{pretty_expr(expr.target)}.{expr.field_name}"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{pretty_expr(expr.target)}.{expr.method}({args})"
    if isinstance(expr, ast.New):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.Binary):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{pretty_expr(expr.operand)}"
    raise ValueError(f"unknown expression {type(expr).__name__}")
