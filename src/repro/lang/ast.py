"""Abstract syntax tree for MiniJ.

Every statement and expression node carries a ``line`` (source position)
and a ``node_id`` — a unique integer assigned at parse time.  The
``node_id`` is the *static site* identity used throughout the pipeline:
trace events point back to the node that produced them, racy access pairs
are pairs of sites, and detectors report races between sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.types import Type

# ----------------------------------------------------------------------
# Expressions.


@dataclass
class Expr:
    """Base class for expressions."""

    line: int = 0
    node_id: int = -1


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class This(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class FieldGet(Expr):
    """``target.field`` — a field read; always a visible trace event."""

    target: Expr | None = None
    field_name: str = ""


@dataclass
class Call(Expr):
    """``target.method(args)`` — dynamically dispatched method call."""

    target: Expr | None = None
    method: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    """``new Class(args)`` — allocation followed by constructor call."""

    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Rand(Expr):
    """``rand()`` — a value the client cannot control (paper, Fig. 8).

    When the static context expects a class type, ``rand()`` allocates a
    fresh library-private object of that class; in an int context it
    produces a pseudo-random integer from the VM's deterministic stream.
    The resolver fills :attr:`result_type`.
    """

    result_type: Type | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr | None = None


# ----------------------------------------------------------------------
# Statements.


@dataclass
class Stmt:
    """Base class for statements."""

    line: int = 0
    node_id: int = -1


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """``Type x = init;`` — declares a local variable."""

    decl_type: Type | None = None
    name: str = ""
    init: Expr | None = None


@dataclass
class AssignVar(Stmt):
    """``x = expr;`` — assignment to a local (or test) variable."""

    name: str = ""
    value: Expr | None = None


@dataclass
class AssignField(Stmt):
    """``target.field = expr;`` — a field write; a visible trace event."""

    target: Expr | None = None
    field_name: str = ""
    value: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then_body: Block | None = None
    else_body: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Block | None = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Sync(Stmt):
    """``synchronized (expr) { ... }`` — monitor enter/exit around body."""

    lock: Expr | None = None
    body: Block | None = None


@dataclass
class Assert(Stmt):
    """``assert expr;`` — faults the thread when the condition is false."""

    cond: Expr | None = None


@dataclass
class Fork(Stmt):
    """``fork { ... }`` — spawn a thread running the body concurrently.

    Only valid at the client (test) level; the spawned thread captures a
    snapshot of the client environment, like a Java anonymous Runnable
    capturing effectively-final locals.  This is how synthesized tests
    are expressed as standalone MiniJ programs (paper Fig. 3's
    ``new Thread() { ... }.start()``).
    """

    body: Block | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


# ----------------------------------------------------------------------
# Declarations.


@dataclass
class Param:
    name: str
    param_type: Type
    line: int = 0


@dataclass
class FieldDecl:
    name: str
    field_type: Type
    init: Expr | None = None
    line: int = 0


@dataclass
class MethodDecl:
    """A method or constructor.

    A constructor is represented as a method whose name equals the class
    name with ``is_constructor`` set; it has no return type.

    ``synchronized`` methods are desugared by the interpreter into a
    monitor enter on ``this`` around the body, exactly like Java.
    """

    name: str
    params: list[Param]
    return_type: Type
    body: Block
    synchronized: bool = False
    is_constructor: bool = False
    line: int = 0


@dataclass
class MethodSig:
    """An interface method signature."""

    name: str
    param_types: list[Type]
    return_type: Type
    line: int = 0


@dataclass
class InterfaceDecl:
    name: str
    signatures: list[MethodSig] = field(default_factory=list)
    line: int = 0


@dataclass
class ClassDecl:
    name: str
    implements: list[str] = field(default_factory=list)
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[MethodDecl] = field(default_factory=list)
    line: int = 0

    def method(self, name: str) -> MethodDecl | None:
        """Return the method with the given name, or None."""
        for method in self.methods:
            if method.name == name:
                return method
        return None


@dataclass
class TestDecl:
    """A sequential client test: ``test Name { ... }``.

    Statements in a test body execute at the *client* level — method
    invocations made directly from a test body are the client invocations
    that bootstrap controllability in the trace analysis (the ``invoke``
    rule of Fig. 7).
    """

    name: str
    body: Block
    line: int = 0


@dataclass
class Program:
    """A parsed MiniJ compilation unit."""

    classes: list[ClassDecl] = field(default_factory=list)
    interfaces: list[InterfaceDecl] = field(default_factory=list)
    tests: list[TestDecl] = field(default_factory=list)

    def class_decl(self, name: str) -> ClassDecl | None:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None

    def test_decl(self, name: str) -> TestDecl | None:
        for test in self.tests:
            if test.name == name:
                return test
        return None
