"""Programmatic AST construction helpers for MiniJ.

The parser is the normal way MiniJ programs come to exist; this module
is the other way: building :mod:`repro.lang.ast` nodes directly, for
code that *manufactures* programs (the procedural subject corpus,
``repro.corpus``).  The helpers deliberately mirror source syntax —
``set_this("count", lit(0))`` reads like ``this.count = 0;`` — and leave
``line``/``node_id`` at their defaults: a built program is canonicalized
by pretty-printing (:func:`repro.lang.pretty.pretty_program`) and
re-parsing, which assigns real site ids.  That round trip, not the raw
built tree, is the artifact every downstream stage consumes, so built
nodes never need ids of their own.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.types import Type, class_type

# ----------------------------------------------------------------------
# Expressions.


def lit(value: int) -> ast.IntLit:
    """``value`` — a non-negative integer literal (MiniJ has no ``-n``)."""
    if value < 0:
        raise ValueError("MiniJ has no negative literals; build `0 - n`")
    return ast.IntLit(value=value)


def boolean(value: bool) -> ast.BoolLit:
    return ast.BoolLit(value=value)


def null() -> ast.NullLit:
    return ast.NullLit()


def this() -> ast.This:
    return ast.This()


def var(name: str) -> ast.VarRef:
    return ast.VarRef(name=name)


def get(target: ast.Expr, field_name: str) -> ast.FieldGet:
    """``target.field`` — a field read."""
    return ast.FieldGet(target=target, field_name=field_name)


def this_get(field_name: str) -> ast.FieldGet:
    """``this.field``."""
    return get(this(), field_name)


def call(target: ast.Expr, method: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(target=target, method=method, args=list(args))


def new(class_name: str, *args: ast.Expr) -> ast.New:
    return ast.New(class_name=class_name, args=list(args))


def binop(op: str, left: ast.Expr, right: ast.Expr) -> ast.Binary:
    return ast.Binary(op=op, left=left, right=right)


def eq(left: ast.Expr, right: ast.Expr) -> ast.Binary:
    return binop("==", left, right)


# ----------------------------------------------------------------------
# Statements.


def block(*stmts: ast.Stmt) -> ast.Block:
    return ast.Block(stmts=list(stmts))


def vdecl(decl_type: Type | str, name: str, init: ast.Expr | None = None) -> ast.VarDecl:
    if isinstance(decl_type, str):
        decl_type = class_type(decl_type)
    return ast.VarDecl(decl_type=decl_type, name=name, init=init)


def assign(name: str, value: ast.Expr) -> ast.AssignVar:
    return ast.AssignVar(name=name, value=value)


def set_field(target: ast.Expr, field_name: str, value: ast.Expr) -> ast.AssignField:
    return ast.AssignField(target=target, field_name=field_name, value=value)


def set_this(field_name: str, value: ast.Expr) -> ast.AssignField:
    """``this.field = value;``"""
    return set_field(this(), field_name, value)


def iff(cond: ast.Expr, then: list[ast.Stmt], els: list[ast.Stmt] | None = None) -> ast.If:
    return ast.If(
        cond=cond,
        then_body=block(*then),
        else_body=block(*els) if els is not None else None,
    )


def ret(value: ast.Expr | None = None) -> ast.Return:
    return ast.Return(value=value)


def sync(lock: ast.Expr, *stmts: ast.Stmt) -> ast.Sync:
    """``synchronized (lock) { ... }``"""
    return ast.Sync(lock=lock, body=block(*stmts))


def expr_stmt(expr: ast.Expr) -> ast.ExprStmt:
    return ast.ExprStmt(expr=expr)


# ----------------------------------------------------------------------
# Declarations.


def param(name: str, param_type: Type | str) -> ast.Param:
    if isinstance(param_type, str):
        param_type = class_type(param_type)
    return ast.Param(name=name, param_type=param_type)


def field_decl(name: str, field_type: Type | str) -> ast.FieldDecl:
    if isinstance(field_type, str):
        field_type = class_type(field_type)
    return ast.FieldDecl(name=name, field_type=field_type)


def method(
    name: str,
    params: list[ast.Param],
    return_type: Type | str,
    body: list[ast.Stmt],
    synchronized: bool = False,
) -> ast.MethodDecl:
    if isinstance(return_type, str):
        return_type = class_type(return_type)
    return ast.MethodDecl(
        name=name,
        params=params,
        return_type=return_type,
        body=block(*body),
        synchronized=synchronized,
    )


def constructor(class_name: str, params: list[ast.Param], body: list[ast.Stmt]) -> ast.MethodDecl:
    from repro.lang.types import VOID

    return ast.MethodDecl(
        name=class_name,
        params=params,
        return_type=VOID,
        body=block(*body),
        is_constructor=True,
    )


def class_decl(
    name: str,
    fields: list[ast.FieldDecl],
    methods: list[ast.MethodDecl],
    implements: list[str] | None = None,
) -> ast.ClassDecl:
    return ast.ClassDecl(
        name=name,
        implements=list(implements or []),
        fields=fields,
        methods=methods,
    )


def test_decl(name: str, stmts: list[ast.Stmt]) -> ast.TestDecl:
    return ast.TestDecl(name=name, body=block(*stmts))


def program(
    classes: list[ast.ClassDecl],
    tests: list[ast.TestDecl],
    interfaces: list[ast.InterfaceDecl] | None = None,
) -> ast.Program:
    return ast.Program(
        classes=classes, interfaces=list(interfaces or []), tests=tests
    )
