"""Hand-written lexer for MiniJ source text.

The lexer is a straightforward single-pass scanner.  It supports ``//``
line comments and ``/* ... */`` block comments, decimal integer literals,
and the operator/punctuation set listed in :mod:`repro.lang.tokens`.
"""

from __future__ import annotations

import sys

from repro._util.errors import LexError
from repro.lang.tokens import KEYWORDS, Token, TokenKind

#: Two-character operators, checked before single-character ones.
_TWO_CHAR_OPS: dict[str, TokenKind] = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS: dict[str, TokenKind] = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Converts MiniJ source text into a list of tokens."""

    def __init__(self, source: str) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return its tokens, ending with EOF."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(Token(TokenKind.EOF, "", self._line, self._column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Scanning helpers.

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        ch = self._source[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return ch

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while not self._at_end():
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        line, column = self._line, self._column
        self._advance()  # '/'
        self._advance()  # '*'
        while not self._at_end():
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise LexError("unterminated block comment", line, column)

    def _next_token(self) -> Token:
        line, column = self._line, self._column
        ch = self._peek()

        if ch.isdigit():
            return self._lex_int(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)

        pair = ch + self._peek(1)
        if pair in _TWO_CHAR_OPS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPS[pair], pair, line, column)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, line, column)

        raise LexError(f"unexpected character {ch!r}", line, column)

    def _lex_int(self, line: int, column: int) -> Token:
        start = self._pos
        while not self._at_end() and self._peek().isdigit():
            self._advance()
        text = self._source[start : self._pos]
        return Token(TokenKind.INT, text, line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        # Intern identifiers: every field/method/class name string in the
        # AST (and hence every hot dict key on the interpreter's field
        # and method lookups) shares one object per spelling, making
        # those lookups pointer comparisons in the common case.
        text = sys.intern(self._source[start : self._pos])
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)


def tokenize(source: str) -> list[Token]:
    """Tokenize MiniJ source text.

    Args:
        source: MiniJ program text.

    Returns:
        The token list, terminated by an EOF token.

    Raises:
        LexError: on malformed input.
    """
    return Lexer(source).tokenize()
