"""Class table: the resolved view of a MiniJ program.

The class table answers the static questions the rest of the pipeline
asks:

* method and field lookup by class name (including the native builtin
  classes ``IntArray``, ``RefArray`` and ``Opaque``),
* declared field types — needed by the *concat* context-derivation rule
  ("type(o) = type(f)", paper Fig. 10),
* reference-type compatibility — MiniJ has no class inheritance, so two
  reference types are compatible iff they are the same class, one is an
  interface the other implements, or one is the universal ``Object``
  interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import TypeError_
from repro.lang import ast
from repro.lang.types import INT, VOID, Type, class_type

#: The universal reference type; every class is compatible with it.
OBJECT = class_type("Object")


@dataclass(frozen=True)
class NativeMethodSig:
    """Signature of a method on a native builtin class."""

    name: str
    param_types: tuple[Type, ...]
    return_type: Type


#: Native builtin classes: name -> {method name -> signature}.
#: Array element accesses surface in traces as reads/writes of the
#: pseudo-field ``elem`` on the array object.
BUILTIN_METHODS: dict[str, dict[str, NativeMethodSig]] = {
    "IntArray": {
        "get": NativeMethodSig("get", (INT,), INT),
        "set": NativeMethodSig("set", (INT, INT), VOID),
        "length": NativeMethodSig("length", (), INT),
    },
    "RefArray": {
        "get": NativeMethodSig("get", (INT,), OBJECT),
        "set": NativeMethodSig("set", (INT, OBJECT), VOID),
        "length": NativeMethodSig("length", (), INT),
    },
    "Opaque": {},
}

#: Declared types of fields on builtin classes (for the analysis).
BUILTIN_FIELDS: dict[str, dict[str, Type]] = {
    "IntArray": {"elem": INT, "length": INT},
    "RefArray": {"elem": OBJECT, "length": INT},
    "Opaque": {},
}


class ClassTable:
    """Resolved class/interface registry for one MiniJ program."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self._classes: dict[str, ast.ClassDecl] = {}
        self._interfaces: dict[str, ast.InterfaceDecl] = {}
        self._implements: dict[str, frozenset[str]] = {}
        self._field_types: dict[str, dict[str, Type]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction.

    def _build(self) -> None:
        for iface in self.program.interfaces:
            if iface.name in self._interfaces:
                raise TypeError_(f"duplicate interface {iface.name}", iface.line)
            self._interfaces[iface.name] = iface

        for cls in self.program.classes:
            if cls.name in self._classes or cls.name in BUILTIN_METHODS:
                raise TypeError_(f"duplicate class {cls.name}", cls.line)
            if cls.name in self._interfaces:
                raise TypeError_(
                    f"{cls.name} declared as both class and interface", cls.line
                )
            self._classes[cls.name] = cls
            for iface_name in cls.implements:
                if iface_name not in self._interfaces:
                    raise TypeError_(
                        f"class {cls.name} implements unknown interface "
                        f"{iface_name}",
                        cls.line,
                    )
            self._implements[cls.name] = frozenset(cls.implements)
            fields: dict[str, Type] = {}
            for field_decl in cls.fields:
                if field_decl.name in fields:
                    raise TypeError_(
                        f"duplicate field {cls.name}.{field_decl.name}",
                        field_decl.line,
                    )
                fields[field_decl.name] = field_decl.field_type
            self._field_types[cls.name] = fields
            seen_methods: set[str] = set()
            for method in cls.methods:
                key = method.name
                if key in seen_methods:
                    raise TypeError_(
                        f"duplicate method {cls.name}.{method.name}", method.line
                    )
                seen_methods.add(key)

        for name, fields in BUILTIN_FIELDS.items():
            self._field_types[name] = dict(fields)
            self._implements[name] = frozenset()

    # ------------------------------------------------------------------
    # Lookup.

    def has_class(self, name: str) -> bool:
        return name in self._classes or name in BUILTIN_METHODS

    def is_builtin(self, name: str) -> bool:
        return name in BUILTIN_METHODS

    def is_interface(self, name: str) -> bool:
        return name in self._interfaces or name == OBJECT.name

    def class_decl(self, name: str) -> ast.ClassDecl:
        try:
            return self._classes[name]
        except KeyError:
            raise TypeError_(f"unknown class {name}") from None

    def class_names(self) -> list[str]:
        """Names of user-defined classes, in declaration order."""
        return list(self._classes)

    def method(self, class_name: str, method_name: str) -> ast.MethodDecl | None:
        """Look up a user-defined method; None for builtins or misses."""
        cls = self._classes.get(class_name)
        if cls is None:
            return None
        return cls.method(method_name)

    def native_method(self, class_name: str, method_name: str) -> NativeMethodSig | None:
        return BUILTIN_METHODS.get(class_name, {}).get(method_name)

    def constructor(self, class_name: str) -> ast.MethodDecl | None:
        """The class's constructor, or None when it has only the default."""
        cls = self._classes.get(class_name)
        if cls is None:
            return None
        for method in cls.methods:
            if method.is_constructor:
                return method
        return None

    def field_type(self, class_name: str, field_name: str) -> Type | None:
        """Declared type of ``class_name.field_name``, or None."""
        return self._field_types.get(class_name, {}).get(field_name)

    def field_names(self, class_name: str) -> list[str]:
        return list(self._field_types.get(class_name, {}))

    def implements(self, class_name: str) -> frozenset[str]:
        return self._implements.get(class_name, frozenset())

    # ------------------------------------------------------------------
    # Type compatibility.

    def value_matches(self, value_class: str, declared: Type) -> bool:
        """Whether an object of ``value_class`` fits a declared type."""
        if not declared.is_reference():
            return False
        if declared.name == OBJECT.name:
            return True
        if declared.name == value_class:
            return True
        return declared.name in self.implements(value_class)

    def types_compatible(self, left: Type, right: Type) -> bool:
        """Symmetric reference-type compatibility (paper: type equality).

        Used by the *set*/*concat*/*deep-set* rules to match the receiver
        type of a setter method against the owner type of the path being
        assigned, and a parameter type against a field type.
        """
        if not (left.is_reference() and right.is_reference()):
            return left == right
        if left.kind == "null" or right.kind == "null":
            return True
        if OBJECT.name in (left.name, right.name):
            return True
        if left.name == right.name:
            return True
        if left.name in self.implements(right.name):
            return True
        return right.name in self.implements(left.name)

    def concrete_classes_for(self, declared: Type) -> list[str]:
        """User classes whose instances fit the declared reference type."""
        if not declared.is_reference():
            return []
        return [
            name for name in self._classes if self.value_matches(name, declared)
        ]
