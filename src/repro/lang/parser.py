"""Recursive-descent parser for MiniJ.

The grammar (expressions in increasing precedence)::

    program    := (classdecl | interfacedecl | testdecl)*
    classdecl  := "class" IDENT ("implements" IDENT ("," IDENT)*)? "{" member* "}"
    member     := fielddecl | methoddecl | ctordecl
    fielddecl  := type IDENT ("=" expr)? ";"
    methoddecl := "synchronized"? (type | "void") IDENT "(" params? ")" block
    ctordecl   := IDENT "(" params? ")" block          -- IDENT == class name
    interfacedecl := "interface" IDENT "{" (sig ";")* "}"
    testdecl   := "test" IDENT block
    stmt       := vardecl | assign | if | while | return | sync | assert | exprstmt
    expr       := or-expr; or > and > equality > relational > additive
                  > multiplicative > unary > postfix > primary

Every AST node receives a unique ``node_id`` used as its static site
identity by the tracer, the pair generator, and the race detectors.
"""

from __future__ import annotations

from repro._util.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind
from repro.lang.types import BOOL, INT, VOID, Type, class_type


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._next_node_id = 0

    # ------------------------------------------------------------------
    # Token stream helpers.

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self._peek(offset).kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            wanted = what or kind.value
            raise ParseError(
                f"expected {wanted}, found {token.text!r}", token.line, token.column
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _stamp(self, node, token: Token):
        """Assign position and identity to a freshly built node."""
        node.line = token.line
        node.node_id = self._node_id()
        return node

    # ------------------------------------------------------------------
    # Declarations.

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.KW_CLASS):
                program.classes.append(self._parse_class())
            elif self._at(TokenKind.KW_INTERFACE):
                program.interfaces.append(self._parse_interface())
            elif self._at(TokenKind.KW_TEST):
                program.tests.append(self._parse_test())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected class, interface or test, found {token.text!r}",
                    token.line,
                    token.column,
                )
        return program

    def _parse_class(self) -> ast.ClassDecl:
        start = self._expect(TokenKind.KW_CLASS)
        name = self._expect(TokenKind.IDENT, "class name").text
        implements: list[str] = []
        if self._accept(TokenKind.KW_IMPLEMENTS):
            implements.append(self._expect(TokenKind.IDENT).text)
            while self._accept(TokenKind.COMMA):
                implements.append(self._expect(TokenKind.IDENT).text)
        self._expect(TokenKind.LBRACE)
        decl = ast.ClassDecl(name=name, implements=implements, line=start.line)
        while not self._at(TokenKind.RBRACE):
            self._parse_member(decl)
        self._expect(TokenKind.RBRACE)
        return decl

    def _parse_member(self, decl: ast.ClassDecl) -> None:
        token = self._peek()
        synchronized = self._accept(TokenKind.KW_SYNCHRONIZED) is not None

        # Constructor: IDENT equal to the class name followed by "(".
        if (
            not synchronized
            and self._at(TokenKind.IDENT)
            and self._peek().text == decl.name
            and self._at(TokenKind.LPAREN, 1)
        ):
            ctor_token = self._advance()
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name=decl.name,
                    params=params,
                    return_type=VOID,
                    body=body,
                    synchronized=False,
                    is_constructor=True,
                    line=ctor_token.line,
                )
            )
            return

        member_type = self._parse_type(allow_void=True)
        name_token = self._expect(TokenKind.IDENT, "member name")
        if self._at(TokenKind.LPAREN):
            params = self._parse_params()
            body = self._parse_block()
            decl.methods.append(
                ast.MethodDecl(
                    name=name_token.text,
                    params=params,
                    return_type=member_type,
                    body=body,
                    synchronized=synchronized,
                    line=name_token.line,
                )
            )
            return

        if synchronized:
            raise ParseError(
                "fields cannot be synchronized", token.line, token.column
            )
        if member_type == VOID:
            raise ParseError(
                "fields cannot have type void", token.line, token.column
            )
        init: ast.Expr | None = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMI)
        decl.fields.append(
            ast.FieldDecl(
                name=name_token.text,
                field_type=member_type,
                init=init,
                line=name_token.line,
            )
        )

    def _parse_interface(self) -> ast.InterfaceDecl:
        start = self._expect(TokenKind.KW_INTERFACE)
        name = self._expect(TokenKind.IDENT, "interface name").text
        self._expect(TokenKind.LBRACE)
        decl = ast.InterfaceDecl(name=name, line=start.line)
        while not self._at(TokenKind.RBRACE):
            sig_type = self._parse_type(allow_void=True)
            sig_name = self._expect(TokenKind.IDENT, "method name")
            params = self._parse_params()
            self._expect(TokenKind.SEMI)
            decl.signatures.append(
                ast.MethodSig(
                    name=sig_name.text,
                    param_types=[p.param_type for p in params],
                    return_type=sig_type,
                    line=sig_name.line,
                )
            )
        self._expect(TokenKind.RBRACE)
        return decl

    def _parse_test(self) -> ast.TestDecl:
        start = self._expect(TokenKind.KW_TEST)
        name = self._expect(TokenKind.IDENT, "test name").text
        body = self._parse_block()
        return ast.TestDecl(name=name, body=body, line=start.line)

    def _parse_params(self) -> list[ast.Param]:
        self._expect(TokenKind.LPAREN)
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._accept(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        return params

    def _parse_param(self) -> ast.Param:
        param_type = self._parse_type()
        name = self._expect(TokenKind.IDENT, "parameter name")
        return ast.Param(name=name.text, param_type=param_type, line=name.line)

    def _parse_type(self, allow_void: bool = False) -> Type:
        token = self._peek()
        if self._accept(TokenKind.KW_INT):
            return INT
        if self._accept(TokenKind.KW_BOOL):
            return BOOL
        if allow_void and self._accept(TokenKind.KW_VOID):
            return VOID
        if self._at(TokenKind.IDENT):
            return class_type(self._advance().text)
        raise ParseError(
            f"expected a type, found {token.text!r}", token.line, token.column
        )

    # ------------------------------------------------------------------
    # Statements.

    def _parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE)
        block = ast.Block()
        self._stamp(block, start)
        while not self._at(TokenKind.RBRACE):
            block.stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE)
        return block

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.LBRACE:
            return self._parse_block()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if token.kind is TokenKind.KW_SYNCHRONIZED:
            return self._parse_sync()
        if token.kind is TokenKind.KW_ASSERT:
            return self._parse_assert()
        if token.kind is TokenKind.KW_FORK:
            return self._parse_fork()
        if self._looks_like_var_decl():
            return self._parse_var_decl()
        return self._parse_assign_or_expr()

    def _looks_like_var_decl(self) -> bool:
        kind = self._peek().kind
        if kind in (TokenKind.KW_INT, TokenKind.KW_BOOL):
            return True
        # "Ident Ident" introduces a class-typed local.
        return kind is TokenKind.IDENT and self._at(TokenKind.IDENT, 1)

    def _parse_var_decl(self) -> ast.VarDecl:
        decl_type = self._parse_type()
        name = self._expect(TokenKind.IDENT, "variable name")
        init: ast.Expr | None = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenKind.SEMI)
        node = ast.VarDecl(decl_type=decl_type, name=name.text, init=init)
        return self._stamp(node, name)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self._parse_block()
        else_body: ast.Stmt | None = None
        if self._accept(TokenKind.KW_ELSE):
            if self._at(TokenKind.KW_IF):
                else_body = self._parse_if()
            else:
                else_body = self._parse_block()
        node = ast.If(cond=cond, then_body=then_body, else_body=else_body)
        return self._stamp(node, start)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        node = ast.While(cond=cond, body=body)
        return self._stamp(node, start)

    def _parse_return(self) -> ast.Return:
        start = self._expect(TokenKind.KW_RETURN)
        value: ast.Expr | None = None
        if not self._at(TokenKind.SEMI):
            value = self._parse_expr()
        self._expect(TokenKind.SEMI)
        node = ast.Return(value=value)
        return self._stamp(node, start)

    def _parse_sync(self) -> ast.Sync:
        start = self._expect(TokenKind.KW_SYNCHRONIZED)
        self._expect(TokenKind.LPAREN)
        lock = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        node = ast.Sync(lock=lock, body=body)
        return self._stamp(node, start)

    def _parse_assert(self) -> ast.Assert:
        start = self._expect(TokenKind.KW_ASSERT)
        cond = self._parse_expr()
        self._expect(TokenKind.SEMI)
        node = ast.Assert(cond=cond)
        return self._stamp(node, start)

    def _parse_fork(self) -> ast.Fork:
        start = self._expect(TokenKind.KW_FORK)
        body = self._parse_block()
        node = ast.Fork(body=body)
        return self._stamp(node, start)

    def _parse_assign_or_expr(self) -> ast.Stmt:
        start = self._peek()
        expr = self._parse_expr()
        if self._accept(TokenKind.ASSIGN):
            value = self._parse_expr()
            self._expect(TokenKind.SEMI)
            if isinstance(expr, ast.VarRef):
                node: ast.Stmt = ast.AssignVar(name=expr.name, value=value)
            elif isinstance(expr, ast.FieldGet):
                node = ast.AssignField(
                    target=expr.target, field_name=expr.field_name, value=value
                )
            else:
                raise ParseError(
                    "left-hand side of assignment must be a variable or field",
                    start.line,
                    start.column,
                )
            return self._stamp(node, start)
        self._expect(TokenKind.SEMI)
        node = ast.ExprStmt(expr=expr)
        return self._stamp(node, start)

    # ------------------------------------------------------------------
    # Expressions.

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_binary_level(self, sub_parser, ops: dict[TokenKind, str]) -> ast.Expr:
        left = sub_parser()
        while self._peek().kind in ops:
            op_token = self._advance()
            right = sub_parser()
            node = ast.Binary(op=ops[op_token.kind], left=left, right=right)
            left = self._stamp(node, op_token)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_and, {TokenKind.OR: "||"})

    def _parse_and(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_equality, {TokenKind.AND: "&&"})

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_relational, {TokenKind.EQ: "==", TokenKind.NE: "!="}
        )

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_additive,
            {
                TokenKind.LT: "<",
                TokenKind.LE: "<=",
                TokenKind.GT: ">",
                TokenKind.GE: ">=",
            },
        )

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_multiplicative, {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
        )

    def _parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_unary,
            {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"},
        )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.NOT:
            self._advance()
            node = ast.Unary(op="!", operand=self._parse_unary())
            return self._stamp(node, token)
        if token.kind is TokenKind.MINUS:
            self._advance()
            node = ast.Unary(op="-", operand=self._parse_unary())
            return self._stamp(node, token)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at(TokenKind.DOT):
            self._advance()
            name = self._expect(TokenKind.IDENT, "member name")
            if self._at(TokenKind.LPAREN):
                args = self._parse_args()
                node: ast.Expr = ast.Call(target=expr, method=name.text, args=args)
            else:
                node = ast.FieldGet(target=expr, field_name=name.text)
            expr = self._stamp(node, name)
        return expr

    def _parse_args(self) -> list[ast.Expr]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._accept(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN)
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return self._stamp(ast.IntLit(value=int(token.text)), token)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return self._stamp(ast.BoolLit(value=True), token)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return self._stamp(ast.BoolLit(value=False), token)
        if token.kind is TokenKind.KW_NULL:
            self._advance()
            return self._stamp(ast.NullLit(), token)
        if token.kind is TokenKind.KW_THIS:
            self._advance()
            return self._stamp(ast.This(), token)
        if token.kind is TokenKind.KW_RAND:
            self._advance()
            self._expect(TokenKind.LPAREN)
            self._expect(TokenKind.RPAREN)
            return self._stamp(ast.Rand(), token)
        if token.kind is TokenKind.KW_NEW:
            self._advance()
            name = self._expect(TokenKind.IDENT, "class name")
            args = self._parse_args()
            return self._stamp(ast.New(class_name=name.text, args=args), token)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return self._stamp(ast.VarRef(name=token.text), token)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(
            f"expected an expression, found {token.text!r}", token.line, token.column
        )


def parse(source: str) -> ast.Program:
    """Parse MiniJ source text into a Program.

    Args:
        source: MiniJ program text (classes, interfaces, tests).

    Returns:
        The parsed program; every node has a unique ``node_id``.

    Raises:
        LexError: on malformed tokens.
        ParseError: on syntax errors.
    """
    return Parser(tokenize(source)).parse_program()
