"""Best-effort static resolution for MiniJ programs.

MiniJ method calls are dynamically dispatched, so the resolver does not
attempt full static typing.  It performs the checks that catch real
authoring mistakes in subject libraries and seed tests, and it fills in
the one piece of static information the runtime needs: the result type
of each ``rand()`` expression (class context => fresh opaque object,
int context => pseudo-random integer).

Checks performed:

* every ``new C(...)`` names a known class and matches the constructor
  arity,
* field reads/writes whose target type is statically known reference a
  declared field,
* method calls whose target type is statically known reference a
  declared (or interface / native) method with the right arity,
* locals are declared before use.
"""

from __future__ import annotations

from repro._util.errors import TypeError_
from repro.lang import ast
from repro.lang.classtable import OBJECT, ClassTable
from repro.lang.types import BOOL, INT, NULL, VOID, Type, class_type


class Resolver:
    """Walks a program, validating references and annotating ``rand()``."""

    def __init__(self, table: ClassTable) -> None:
        self._table = table

    def resolve_program(self) -> None:
        for cls in self._table.program.classes:
            for method in cls.methods:
                self._resolve_method(cls, method)
        for test in self._table.program.tests:
            env: dict[str, Type] = {}
            self._resolve_block(test.body, env)

    # ------------------------------------------------------------------

    def _resolve_method(self, cls: ast.ClassDecl, method: ast.MethodDecl) -> None:
        env: dict[str, Type] = {"this": class_type(cls.name)}
        for param in method.params:
            self._check_type(param.param_type, param.line)
            env[param.name] = param.param_type
        self._resolve_block(method.body, env)

    def _check_type(self, type_: Type, line: int) -> None:
        if type_.kind != "class":
            return
        name = type_.name
        if (
            not self._table.has_class(name)
            and not self._table.is_interface(name)
            and name != OBJECT.name
        ):
            raise TypeError_(f"unknown type {name}", line)

    def _resolve_block(self, block: ast.Block, env: dict[str, Type]) -> None:
        scope = dict(env)
        for stmt in block.stmts:
            self._resolve_stmt(stmt, scope)

    def _resolve_stmt(self, stmt: ast.Stmt, env: dict[str, Type]) -> None:
        if isinstance(stmt, ast.Block):
            self._resolve_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            self._check_type(stmt.decl_type, stmt.line)
            if stmt.init is not None:
                self._resolve_expr(stmt.init, env, expected=stmt.decl_type)
            env[stmt.name] = stmt.decl_type
        elif isinstance(stmt, ast.AssignVar):
            if stmt.name not in env:
                raise TypeError_(f"assignment to undeclared {stmt.name}", stmt.line)
            self._resolve_expr(stmt.value, env, expected=env[stmt.name])
        elif isinstance(stmt, ast.AssignField):
            target_type = self._resolve_expr(stmt.target, env)
            field_type = self._field_type_of(target_type, stmt.field_name, stmt.line)
            self._resolve_expr(stmt.value, env, expected=field_type)
        elif isinstance(stmt, ast.If):
            self._resolve_expr(stmt.cond, env)
            self._resolve_block(stmt.then_body, env)
            if stmt.else_body is not None:
                self._resolve_stmt(stmt.else_body, env)
        elif isinstance(stmt, ast.While):
            self._resolve_expr(stmt.cond, env)
            self._resolve_block(stmt.body, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._resolve_expr(stmt.value, env)
        elif isinstance(stmt, ast.Sync):
            self._resolve_expr(stmt.lock, env)
            self._resolve_block(stmt.body, env)
        elif isinstance(stmt, ast.Assert):
            self._resolve_expr(stmt.cond, env)
        elif isinstance(stmt, ast.Fork):
            self._resolve_block(stmt.body, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._resolve_expr(stmt.expr, env)
        else:  # pragma: no cover - exhaustive over the AST
            raise TypeError_(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _field_type_of(
        self, target_type: Type | None, field_name: str, line: int
    ) -> Type | None:
        """Declared field type when the owner's class is known statically."""
        if target_type is None or target_type.kind != "class":
            return None
        if self._table.is_interface(target_type.name):
            return None
        field_type = self._table.field_type(target_type.name, field_name)
        if field_type is None:
            raise TypeError_(
                f"class {target_type.name} has no field {field_name}", line
            )
        return field_type

    # ------------------------------------------------------------------
    # Expressions.  Returns the static type when determinable, else None.

    def _resolve_expr(
        self, expr: ast.Expr | None, env: dict[str, Type], expected: Type | None = None
    ) -> Type | None:
        if expr is None:
            return None
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.This):
            return env.get("this")
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise TypeError_(f"use of undeclared variable {expr.name}", expr.line)
            return env[expr.name]
        if isinstance(expr, ast.Rand):
            expr.result_type = expected if expected is not None else INT
            return expr.result_type
        if isinstance(expr, ast.FieldGet):
            target_type = self._resolve_expr(expr.target, env)
            return self._field_type_of(target_type, expr.field_name, expr.line)
        if isinstance(expr, ast.New):
            return self._resolve_new(expr, env)
        if isinstance(expr, ast.Call):
            return self._resolve_call(expr, env)
        if isinstance(expr, ast.Binary):
            self._resolve_expr(expr.left, env)
            self._resolve_expr(expr.right, env)
            if expr.op in ("+", "-", "*", "/", "%"):
                return INT
            return BOOL
        if isinstance(expr, ast.Unary):
            self._resolve_expr(expr.operand, env)
            return INT if expr.op == "-" else BOOL
        raise TypeError_(f"unknown expression {type(expr).__name__}", expr.line)

    def _resolve_new(self, expr: ast.New, env: dict[str, Type]) -> Type:
        name = expr.class_name
        if not self._table.has_class(name):
            raise TypeError_(f"new of unknown class {name}", expr.line)
        for arg in expr.args:
            self._resolve_expr(arg, env)
        if self._table.is_builtin(name):
            expected_arity = 1 if name in ("IntArray", "RefArray") else 0
            if len(expr.args) != expected_arity:
                raise TypeError_(
                    f"new {name} expects {expected_arity} argument(s)", expr.line
                )
            return class_type(name)
        ctor = self._table.constructor(name)
        arity = len(ctor.params) if ctor is not None else 0
        if len(expr.args) != arity:
            raise TypeError_(
                f"constructor {name} expects {arity} argument(s), "
                f"got {len(expr.args)}",
                expr.line,
            )
        if ctor is not None:
            for arg, param in zip(expr.args, ctor.params):
                self._resolve_expr(arg, env, expected=param.param_type)
        return class_type(name)

    def _resolve_call(self, expr: ast.Call, env: dict[str, Type]) -> Type | None:
        target_type = self._resolve_expr(expr.target, env)
        if expr.method in ("wait", "notify", "notifyAll") and not expr.args:
            # java.lang.Object condition methods exist on every object
            # (unless the class shadows them with its own declaration).
            if (
                target_type is None
                or target_type.kind != "class"
                or self._table.is_interface(target_type.name)
                or self._table.method(target_type.name, expr.method) is None
            ):
                return VOID
        method_decl = None
        if (
            target_type is not None
            and target_type.kind == "class"
            and not self._table.is_interface(target_type.name)
            and target_type.name != OBJECT.name
        ):
            class_name = target_type.name
            native = self._table.native_method(class_name, expr.method)
            if native is not None:
                if len(expr.args) != len(native.param_types):
                    raise TypeError_(
                        f"{class_name}.{expr.method} expects "
                        f"{len(native.param_types)} argument(s)",
                        expr.line,
                    )
                for arg in expr.args:
                    self._resolve_expr(arg, env)
                return native.return_type
            method_decl = self._table.method(class_name, expr.method)
            if method_decl is None:
                raise TypeError_(
                    f"class {class_name} has no method {expr.method}", expr.line
                )
            if len(expr.args) != len(method_decl.params):
                raise TypeError_(
                    f"{class_name}.{expr.method} expects "
                    f"{len(method_decl.params)} argument(s), got {len(expr.args)}",
                    expr.line,
                )
        if method_decl is not None:
            for arg, param in zip(expr.args, method_decl.params):
                self._resolve_expr(arg, env, expected=param.param_type)
            return method_decl.return_type if method_decl.return_type != VOID else VOID
        for arg in expr.args:
            self._resolve_expr(arg, env)
        return None


def resolve(table: ClassTable) -> None:
    """Validate a program against its class table and annotate ``rand()``.

    Raises:
        TypeError_: on the static errors documented in the module docstring.
    """
    Resolver(table).resolve_program()
