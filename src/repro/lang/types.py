"""Static types for MiniJ.

MiniJ has three primitive types (``int``, ``bool``, ``void``), named
class/interface types, and the special ``null`` type that is assignable
to any reference type.  There is no class inheritance; subtyping comes
only from ``implements`` declarations, which keeps the *set*/*concat*/
*deep-set* context-derivation rules (paper, Fig. 10) easy to state: two
reference types are compatible when one names an interface the other
implements, or they are the same class.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """A MiniJ static type.

    Attributes:
        kind: one of ``"int"``, ``"bool"``, ``"void"``, ``"class"``,
            ``"null"``.
        name: the class or interface name when ``kind == "class"``.
    """

    kind: str
    name: str = ""

    def is_reference(self) -> bool:
        """Whether values of this type are object references (or null)."""
        return self.kind in ("class", "null")

    def __str__(self) -> str:
        if self.kind == "class":
            return self.name
        return self.kind


INT = Type("int")
BOOL = Type("bool")
VOID = Type("void")
NULL = Type("null")


def class_type(name: str) -> Type:
    """Build a class/interface reference type."""
    return Type("class", name)


#: Built-in native classes provided by the runtime.  ``IntArray`` and
#: ``RefArray`` are fixed-size arrays whose element accesses surface as
#: reads/writes of the pseudo-field ``"elem"`` in traces; ``Opaque`` is
#: the class of objects produced by ``rand()`` in a reference context.
BUILTIN_CLASS_NAMES = ("IntArray", "RefArray", "Opaque")

INT_ARRAY = class_type("IntArray")
REF_ARRAY = class_type("RefArray")
OPAQUE = class_type("Opaque")
