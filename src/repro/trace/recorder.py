"""Trace recording and formatting."""

from __future__ import annotations

from repro.runtime.values import show_value
from repro.trace.events import (
    AllocEvent,
    BlockedEvent,
    Event,
    FaultEvent,
    ForkEvent,
    InvokeEvent,
    JoinEvent,
    LockEvent,
    NotifyEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    UnlockEvent,
    WaitEvent,
    WriteEvent,
)


class Recorder:
    """A listener that appends every event to a :class:`Trace`."""

    #: A recorder wants the complete stream; an explicit None keeps the
    #: Execution's event-elision fast path off while one is attached.
    interests = None

    def __init__(self, test_name: str = "") -> None:
        self.trace = Trace(test_name=test_name)

    def on_event(self, event: Event) -> None:
        self.trace.events.append(event)


def format_event(event: Event) -> str:
    """One-line human-readable rendering of an event (for debugging and
    the examples' trace dumps)."""
    prefix = f"[{event.label:>5}] t{event.thread_id}"
    if isinstance(event, InvokeEvent):
        args = ", ".join(show_value(a) for a in event.args)
        origin = "client " if event.from_client else ""
        kind = "new " if event.is_constructor else ""
        return (
            f"{prefix} {origin}invoke {kind}"
            f"{event.class_name}#{event.receiver}.{event.method}({args})"
        )
    if isinstance(event, ReturnEvent):
        return (
            f"{prefix} return {show_value(event.value)} from "
            f"{event.class_name}.{event.method}"
        )
    if isinstance(event, AllocEvent):
        where = "lib" if event.in_library else "client"
        return f"{prefix} alloc {event.class_name}#{event.ref} ({where})"
    if isinstance(event, ReadEvent):
        index = f"[{event.elem_index}]" if event.elem_index is not None else ""
        locks = ",".join(str(o) for o in sorted(event.locks_held)) or "-"
        return (
            f"{prefix} read  {event.class_name}#{event.obj}.{event.field_name}"
            f"{index} -> {show_value(event.value)} locks={{{locks}}}"
        )
    if isinstance(event, WriteEvent):
        index = f"[{event.elem_index}]" if event.elem_index is not None else ""
        locks = ",".join(str(o) for o in sorted(event.locks_held)) or "-"
        return (
            f"{prefix} write {event.class_name}#{event.obj}.{event.field_name}"
            f"{index} := {show_value(event.value)} locks={{{locks}}}"
        )
    if isinstance(event, LockEvent):
        return f"{prefix} lock object #{event.obj} (depth {event.reentrancy})"
    if isinstance(event, UnlockEvent):
        return f"{prefix} unlock object #{event.obj} (depth {event.reentrancy})"
    if isinstance(event, BlockedEvent):
        return f"{prefix} blocked on #{event.obj} held by t{event.owner_thread}"
    if isinstance(event, WaitEvent):
        return f"{prefix} wait on #{event.obj}"
    if isinstance(event, NotifyEvent):
        kind = "notifyAll" if event.notify_all else "notify"
        woken = ",".join(f"t{t}" for t in event.woken) or "nobody"
        return f"{prefix} {kind} on #{event.obj} wakes {woken}"
    if isinstance(event, ForkEvent):
        return f"{prefix} fork t{event.child_thread}"
    if isinstance(event, JoinEvent):
        return f"{prefix} join t{event.child_thread}"
    if isinstance(event, FaultEvent):
        return f"{prefix} FAULT {event.kind}: {event.message}"
    return f"{prefix} {type(event).__name__}"


def format_trace(trace: Trace) -> str:
    """Render a whole trace, one event per line."""
    return "\n".join(format_event(e) for e in trace.events)
