"""Trace events, recording, and formatting."""

from repro.trace.events import (
    AccessEvent,
    AllocEvent,
    BlockedEvent,
    Event,
    FaultEvent,
    ForkEvent,
    InvokeEvent,
    JoinEvent,
    LockEvent,
    NotifyEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    UnlockEvent,
    WaitEvent,
    WriteEvent,
)
from repro.trace.columnar import ColumnarRecorder, PackedTrace
from repro.trace.recorder import Recorder, format_event, format_trace

__all__ = [
    "AccessEvent",
    "ColumnarRecorder",
    "PackedTrace",
    "AllocEvent",
    "BlockedEvent",
    "Event",
    "FaultEvent",
    "ForkEvent",
    "InvokeEvent",
    "JoinEvent",
    "LockEvent",
    "NotifyEvent",
    "ReadEvent",
    "Recorder",
    "ReturnEvent",
    "Trace",
    "UnlockEvent",
    "WaitEvent",
    "WriteEvent",
    "format_event",
    "format_trace",
]
