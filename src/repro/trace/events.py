"""Trace event model.

The VM emits one event per *visible action*: method invocation, object
allocation, field read, field write, monitor lock/unlock, method return,
thread fork/join/block, and thread fault.  Everything downstream — the
sequential trace analysis (Fig. 7/9 of the paper), the race detectors
(Eraser, Djit+, FastTrack), and the RaceFuzzer-style scheduler — consumes
this one event stream.

Design notes:

* ``label`` is the dynamic execution index of the event (paper §3.1:
  "each element in a trace has a unique label").  Labels are assigned
  globally in execution order.
* ``node_id`` is the static site (the AST node) that produced the event;
  races are reported between static sites.
* ``call_index`` uniquely identifies the dynamic method invocation whose
  body the event belongs to (paper §4: "we scope the variable names by
  assigning unique index for each method invocation").  Client-level
  events carry ``call_index == 0``.
* ``locks_held`` is the multiset-free snapshot of object ids whose
  monitors the executing thread holds at the instant of the access; both
  the unprotectedness analysis and the lockset detector read it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.values import Value


@dataclass(frozen=True)
class Event:
    """Base class for all trace events."""

    label: int
    thread_id: int
    node_id: int
    call_index: int


@dataclass(frozen=True)
class InvokeEvent(Event):
    """A method (or constructor) invocation.

    ``from_client`` marks invocations made directly from a test body —
    the client invocations that bootstrap controllability (Fig. 7,
    *invoke* rule).  ``new_call_index`` is the callee's scope index.
    """

    receiver: int = -1
    class_name: str = ""
    method: str = ""
    args: tuple[Value, ...] = ()
    from_client: bool = False
    is_constructor: bool = False
    new_call_index: int = -1
    depth: int = 0


@dataclass(frozen=True)
class ReturnEvent(Event):
    """Return from a method invocation back to its caller."""

    value: Value = None
    to_client: bool = False
    returning_call_index: int = -1
    method: str = ""
    class_name: str = ""


@dataclass(frozen=True)
class AllocEvent(Event):
    """An object allocation (``new`` or ``rand()`` in a class context)."""

    ref: int = -1
    class_name: str = ""
    in_library: bool = False


@dataclass(frozen=True)
class AccessEvent(Event):
    """Common shape of field reads and writes.

    ``elem_index`` is the concrete array index for accesses to the
    ``elem`` pseudo-field of builtin arrays, and None otherwise; the
    detectors use it to give each array slot its own address.
    """

    obj: int = -1
    class_name: str = ""
    field_name: str = ""
    value: Value = None
    locks_held: frozenset[int] = frozenset()
    elem_index: int | None = None
    in_constructor: bool = False

    def address(self) -> tuple[int, str, int | None]:
        """The dynamic memory address of this access."""
        return (self.obj, self.field_name, self.elem_index)

    def site(self) -> int:
        """The static site of this access."""
        return self.node_id


@dataclass(frozen=True)
class ReadEvent(AccessEvent):
    """A field read (``x := y.f`` in the paper's trace language)."""


@dataclass(frozen=True)
class WriteEvent(AccessEvent):
    """A field write (``x.f := y``)."""

    old_value: Value = None


@dataclass(frozen=True)
class LockEvent(Event):
    """Monitor acquired (``lock(x)``); reentrant depth after acquire."""

    obj: int = -1
    reentrancy: int = 1


@dataclass(frozen=True)
class UnlockEvent(Event):
    """Monitor released (``unlock(x)``); reentrant depth after release."""

    obj: int = -1
    reentrancy: int = 0


@dataclass(frozen=True)
class BlockedEvent(Event):
    """Thread failed to acquire a monitor held by another thread."""

    obj: int = -1
    owner_thread: int = -1


@dataclass(frozen=True)
class WaitEvent(Event):
    """Thread entered the wait set of a monitor (released it fully)."""

    obj: int = -1


@dataclass(frozen=True)
class NotifyEvent(Event):
    """``notify``/``notifyAll`` on a monitor; lists the woken threads."""

    obj: int = -1
    woken: tuple[int, ...] = ()
    notify_all: bool = False


@dataclass(frozen=True)
class ForkEvent(Event):
    """Parent thread spawned ``child_thread`` (happens-before edge)."""

    child_thread: int = -1


@dataclass(frozen=True)
class JoinEvent(Event):
    """Parent observed termination of ``child_thread`` (HB edge)."""

    child_thread: int = -1


@dataclass(frozen=True)
class FaultEvent(Event):
    """A thread died with a MiniJ runtime fault."""

    kind: str = ""
    message: str = ""


#: Events that touch shared memory.
MEMORY_EVENTS = (ReadEvent, WriteEvent)

#: Events that affect the happens-before relation.
SYNC_EVENTS = (LockEvent, UnlockEvent, ForkEvent, JoinEvent)


@dataclass
class Trace:
    """A recorded event sequence plus bookkeeping for analysis.

    Attributes:
        events: the events in execution order (labels are indices into
            the global label space, which equals the list position when a
            single execution is recorded from label 0).
        test_name: the test that produced this trace, when known.
    """

    events: list[Event] = field(default_factory=list)
    test_name: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def memory_events(self) -> list[AccessEvent]:
        """All field reads and writes, in order."""
        return [e for e in self.events if isinstance(e, AccessEvent)]

    def client_invocations(self) -> list[InvokeEvent]:
        """Invocations made directly from the client (test body)."""
        return [
            e
            for e in self.events
            if isinstance(e, InvokeEvent) and e.from_client
        ]
