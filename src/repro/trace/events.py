"""Trace event model.

The VM emits one event per *visible action*: method invocation, object
allocation, field read, field write, monitor lock/unlock, method return,
thread fork/join/block, and thread fault.  Everything downstream — the
sequential trace analysis (Fig. 7/9 of the paper), the race detectors
(Eraser, Djit+, FastTrack), and the RaceFuzzer-style scheduler — consumes
this one event stream.

Design notes:

* ``label`` is the dynamic execution index of the event (paper §3.1:
  "each element in a trace has a unique label").  Labels are assigned
  globally in execution order.
* ``node_id`` is the static site (the AST node) that produced the event;
  races are reported between static sites.
* ``call_index`` uniquely identifies the dynamic method invocation whose
  body the event belongs to (paper §4: "we scope the variable names by
  assigning unique index for each method invocation").  Client-level
  events carry ``call_index == 0``.
* ``locks_held`` is the multiset-free snapshot of object ids whose
  monitors the executing thread holds at the instant of the access; both
  the unprotectedness analysis and the lockset detector read it.

Events are immutable by convention and are on the VM's hottest path:
each class is a ``__slots__`` class with a generated positional
``__init__`` (see :func:`_slots_event`), which constructs roughly 3x
faster than a frozen dataclass while keeping the same keyword API,
equality, and hashing behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.values import Value

_MISSING = object()


def _slots_event(cls):
    """Rewrite an annotated event class into a fast ``__slots__`` class.

    Field order and defaults follow declaration order, parents first —
    exactly the layout ``@dataclass`` would produce — but ``__init__``
    assigns into slots directly instead of going through
    ``object.__setattr__`` per field the way frozen dataclasses do.
    """
    base = cls.__bases__[0]
    parent_spec: tuple = getattr(base, "_fields_spec", ())
    parent_names = {name for name, _ in parent_spec}
    own: list[tuple[str, object]] = []
    for name in cls.__dict__.get("__annotations__", ()):
        if name.startswith("_") or name in parent_names:
            continue
        own.append((name, cls.__dict__.get(name, _MISSING)))
    spec = parent_spec + tuple(own)

    namespace = dict(cls.__dict__)
    namespace.pop("__dict__", None)
    namespace.pop("__weakref__", None)
    for name, _ in own:
        namespace.pop(name, None)  # defaults would shadow the slots
    slots = tuple(name for name, _ in own)
    if base is object:
        # Root of the hierarchy: reserve a slot for the cached hash.
        # Left unassigned by __init__, so it costs nothing until the
        # first hash() call fills it (see Event.__hash__).
        slots = ("_hash",) + slots
    namespace["__slots__"] = slots
    namespace["_fields_spec"] = spec
    namespace["_fields"] = tuple(name for name, _ in spec)

    params, body, globalns = [], [], {}
    for index, (name, default) in enumerate(spec):
        if default is _MISSING:
            params.append(name)
        else:
            globalns[f"_default{index}"] = default
            params.append(f"{name}=_default{index}")
        body.append(f"    self.{name} = {name}")
    source = f"def __init__(self, {', '.join(params)}):\n" + "\n".join(body)
    exec(source, globalns)  # noqa: S102 - same technique as dataclasses
    namespace["__init__"] = globalns["__init__"]

    rebuilt = type(cls.__name__, cls.__bases__, namespace)
    rebuilt.__qualname__ = cls.__qualname__
    return rebuilt


@_slots_event
class Event:
    """Base class for all trace events."""

    label: int
    thread_id: int
    node_id: int
    call_index: int

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self._fields
        )

    def __hash__(self) -> int:
        # Events are immutable by convention, so the field tuple is
        # hashed once and cached in the reserved ``_hash`` slot; the
        # unset-slot AttributeError doubles as the "not yet computed"
        # sentinel, keeping construction cost at zero.
        try:
            return self._hash
        except AttributeError:
            value = hash(
                (self.__class__,)
                + tuple(getattr(self, name) for name in self._fields)
            )
            self._hash = value
            return value

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._fields
        )
        return f"{self.__class__.__name__}({inner})"


@_slots_event
class InvokeEvent(Event):
    """A method (or constructor) invocation.

    ``from_client`` marks invocations made directly from a test body —
    the client invocations that bootstrap controllability (Fig. 7,
    *invoke* rule).  ``new_call_index`` is the callee's scope index.
    """

    receiver: int = -1
    class_name: str = ""
    method: str = ""
    args: tuple[Value, ...] = ()
    from_client: bool = False
    is_constructor: bool = False
    new_call_index: int = -1
    depth: int = 0


@_slots_event
class ReturnEvent(Event):
    """Return from a method invocation back to its caller."""

    value: Value = None
    to_client: bool = False
    returning_call_index: int = -1
    method: str = ""
    class_name: str = ""


@_slots_event
class AllocEvent(Event):
    """An object allocation (``new`` or ``rand()`` in a class context)."""

    ref: int = -1
    class_name: str = ""
    in_library: bool = False


@_slots_event
class AccessEvent(Event):
    """Common shape of field reads and writes.

    ``elem_index`` is the concrete array index for accesses to the
    ``elem`` pseudo-field of builtin arrays, and None otherwise; the
    detectors use it to give each array slot its own address.
    """

    obj: int = -1
    class_name: str = ""
    field_name: str = ""
    value: Value = None
    locks_held: frozenset[int] = frozenset()
    elem_index: int | None = None
    in_constructor: bool = False

    def address(self) -> tuple[int, str, int | None]:
        """The dynamic memory address of this access."""
        return (self.obj, self.field_name, self.elem_index)

    def site(self) -> int:
        """The static site of this access."""
        return self.node_id


@_slots_event
class ReadEvent(AccessEvent):
    """A field read (``x := y.f`` in the paper's trace language)."""


@_slots_event
class WriteEvent(AccessEvent):
    """A field write (``x.f := y``)."""

    old_value: Value = None


@_slots_event
class LockEvent(Event):
    """Monitor acquired (``lock(x)``); reentrant depth after acquire."""

    obj: int = -1
    reentrancy: int = 1


@_slots_event
class UnlockEvent(Event):
    """Monitor released (``unlock(x)``); reentrant depth after release."""

    obj: int = -1
    reentrancy: int = 0


@_slots_event
class BlockedEvent(Event):
    """Thread failed to acquire a monitor held by another thread."""

    obj: int = -1
    owner_thread: int = -1


@_slots_event
class WaitEvent(Event):
    """Thread entered the wait set of a monitor (released it fully)."""

    obj: int = -1


@_slots_event
class NotifyEvent(Event):
    """``notify``/``notifyAll`` on a monitor; lists the woken threads."""

    obj: int = -1
    woken: tuple[int, ...] = ()
    notify_all: bool = False


@_slots_event
class ForkEvent(Event):
    """Parent thread spawned ``child_thread`` (happens-before edge)."""

    child_thread: int = -1


@_slots_event
class JoinEvent(Event):
    """Parent observed termination of ``child_thread`` (HB edge)."""

    child_thread: int = -1


@_slots_event
class FaultEvent(Event):
    """A thread died with a MiniJ runtime fault."""

    kind: str = ""
    message: str = ""


#: Events that touch shared memory.
MEMORY_EVENTS = (ReadEvent, WriteEvent)

#: Events that affect the happens-before relation.
SYNC_EVENTS = (LockEvent, UnlockEvent, ForkEvent, JoinEvent)


class _SkippedEvent:
    """Placeholder yielded in place of an event nobody subscribed to.

    The interpreter still burns the event's label and yields a
    scheduling point, so executions interleave identically whether or
    not the event object itself was materialized (see DESIGN.md,
    "Performance architecture").
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<skipped event>"


#: The singleton stand-in for an unconstructed event.
SKIPPED_EVENT = _SkippedEvent()


@dataclass
class Trace:
    """A recorded event sequence plus bookkeeping for analysis.

    Attributes:
        events: the events in execution order (labels are indices into
            the global label space, which equals the list position when a
            single execution is recorded from label 0).
        test_name: the test that produced this trace, when known.
    """

    events: list[Event] = field(default_factory=list)
    test_name: str = ""

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def memory_events(self) -> list[AccessEvent]:
        """All field reads and writes, in order."""
        return [e for e in self.events if isinstance(e, AccessEvent)]

    def client_invocations(self) -> list[InvokeEvent]:
        """Invocations made directly from the client (test body)."""
        return [
            e
            for e in self.events
            if isinstance(e, InvokeEvent) and e.from_client
        ]
