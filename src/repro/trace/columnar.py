"""Packed columnar trace representation + streaming feed protocol.

A recorded execution is, overwhelmingly, a long homogeneous stream of
small integer tuples.  Storing it as a ``list`` of heap-allocated
``Event`` objects (56-120 bytes each, pointer-chased per field) makes
every downstream pass — the access analyzer, the race detectors, the
fuzz loop — pay per-event allocation, attribute lookup, and dispatch
costs, and makes the trace itself the dominant share of pipeline RSS.

:class:`PackedTrace` stores the same stream as parallel ``array``
columns: one opcode byte per event plus fixed integer operand columns,
with strings, lock sets, access addresses, and rare payloads interned
into side tables.  Three access protocols sit on top:

* **streaming feed** — consumers iterate the raw columns directly
  (``packed.op``, ``packed.tid``, ...).  Detectors and probes declare
  per-opcode kernel fragments and the fused sweep engine
  (``analysis/sweep.py``) runs the whole pass stack in one traversal
  over these columns — no per-event object, no ``on_event`` dispatch,
  opcode decode and address lookup shared across passes; the interned
  address id (``packed.adr``) replaces the per-access
  ``(obj, field, elem)`` tuple key.  ``feed_packed(packed)`` remains on
  each pass as a one-pass sweep shim.
* **lazy object view** — ``packed.event(i)`` / iteration reconstruct
  ordinary :class:`~repro.trace.events.Event` objects on demand for
  code that wants rich events (the analyzer, formatters, tests).  A
  reconstructed event is equal to the one originally recorded.
* **content digest** — :meth:`PackedTrace.digest` hashes the columns
  and side tables, giving a cheap identity for a whole interleaving;
  the fuzz loop memoizes detector results per digest (see
  ``fuzz/racefuzzer.py`` and DESIGN.md §8).

:class:`ColumnarRecorder` is the listener that packs events as they are
emitted, so no intermediate ``Trace`` list ever exists.  Its
``interests`` default to None (record everything — the seed-suite
path); analysis consumers pass the ``interest_union`` of their pass
stack (see ``analysis/sweep.py``) so elision and scheduling stay
bit-identical to attaching the passes directly.
"""

from __future__ import annotations

import hashlib
import sys
from array import array

from repro.runtime.values import ObjRef, Value
from repro.trace.events import (
    AllocEvent,
    BlockedEvent,
    Event,
    FaultEvent,
    ForkEvent,
    InvokeEvent,
    JoinEvent,
    LockEvent,
    NotifyEvent,
    ReadEvent,
    ReturnEvent,
    Trace,
    UnlockEvent,
    WaitEvent,
    WriteEvent,
    AccessEvent,
)

# Opcodes, one per event kind.
OP_INVOKE = 0
OP_RETURN = 1
OP_ALLOC = 2
OP_READ = 3
OP_WRITE = 4
OP_LOCK = 5
OP_UNLOCK = 6
OP_BLOCKED = 7
OP_WAIT = 8
OP_NOTIFY = 9
OP_FORK = 10
OP_JOIN = 11
OP_FAULT = 12

OP_NAMES = (
    "invoke", "return", "alloc", "read", "write", "lock", "unlock",
    "blocked", "wait", "notify", "fork", "join", "fault",
)

# NB: consumers no longer hard-code an interest union here; each
# recording site derives it from its pass stack with
# ``repro.analysis.sweep.interest_union`` so elision and scheduling
# points always match the passes actually swept.

# Value packing: a MiniJ value is None | bool | int | ObjRef.  Values
# are packed into (kind, int, class-id) triples; ints outside 64 bits
# overflow into the cell table.
_VK_NONE = 0
_VK_INT = 1
_VK_BOOL = 2
_VK_REF = 3
_VK_CELL = 4

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class PackedTrace:
    """An event sequence stored as parallel integer columns.

    The feed protocol: ``op[i]`` selects the kind of row ``i``; the
    generic operand columns carry the kind-specific payload:

    ========  ==========================================================
    opcode    x / y / z / side-table columns
    ========  ==========================================================
    invoke    x=receiver, y=new_call_index, z=depth, cls, fld=method,
              aux=args cell, flags bit0=from_client bit1=is_constructor
    return    x=returning_call_index, cls, fld=method, value cols,
              flags bit0=to_client
    alloc     x=ref, cls, flags bit0=in_library
    read      x=obj, y=elem_index (-1 = None), cls, fld, lck, adr,
              value cols, flags bit0=in_constructor
    write     read layout + old-value cols
    lock      x=obj, y=reentrancy
    unlock    x=obj, y=reentrancy
    blocked   x=obj, y=owner_thread
    wait      x=obj
    notify    x=obj, aux=woken cell, flags bit0=notify_all
    fork      x=child_thread
    join      x=child_thread
    fault     fld=kind, aux=message cell
    ========  ==========================================================

    ``label``/``tid``/``node``/``call`` are populated for every row.
    ``adr`` interns the access address ``(obj, field, elem)`` into a
    dense id so detectors key per-variable state on a single int.
    """

    __slots__ = (
        "test_name",
        "op", "label", "tid", "node", "call",
        "x", "y", "z", "cls", "fld", "lck", "adr", "aux", "flags",
        "vkind", "vint", "vcls", "okind", "oint", "ocls",
        "strtab", "locktab", "addrtab", "cells",
        "_strid", "_lockid", "_addrid", "_packers", "_unpackers",
    )

    #: Column names in declaration order (the serialization schema).
    COLUMNS = (
        "op", "label", "tid", "node", "call",
        "x", "y", "z", "cls", "fld", "lck", "adr", "aux", "flags",
        "vkind", "vint", "vcls", "okind", "oint", "ocls",
    )

    _TYPECODES = {
        "op": "B", "label": "q", "tid": "i", "node": "i", "call": "i",
        "x": "q", "y": "q", "z": "q", "cls": "i", "fld": "i",
        "lck": "i", "adr": "i", "aux": "i", "flags": "B",
        "vkind": "b", "vint": "q", "vcls": "i",
        "okind": "b", "oint": "q", "ocls": "i",
    }

    def __init__(self, test_name: str = "") -> None:
        self.test_name = test_name
        for name in self.COLUMNS:
            setattr(self, name, array(self._TYPECODES[name]))
        self.strtab: list[str] = []
        self.locktab: list[frozenset[int]] = []
        self.addrtab: list[tuple[int, int, int]] = []
        self.cells: list = []
        self._strid: dict[str, int] = {}
        self._lockid: dict[frozenset, int] = {}
        self._addrid: dict[tuple[int, int, int], int] = {}
        self._packers = {
            InvokeEvent: self._pack_invoke,
            ReturnEvent: self._pack_return,
            AllocEvent: self._pack_alloc,
            ReadEvent: self._pack_read,
            WriteEvent: self._pack_write,
            LockEvent: self._pack_lock,
            UnlockEvent: self._pack_unlock,
            BlockedEvent: self._pack_blocked,
            WaitEvent: self._pack_wait,
            NotifyEvent: self._pack_notify,
            ForkEvent: self._pack_fork,
            JoinEvent: self._pack_join,
            FaultEvent: self._pack_fault,
        }
        self._unpackers = (
            self._event_invoke, self._event_return, self._event_alloc,
            self._event_read, self._event_write, self._event_lock,
            self._event_unlock, self._event_blocked, self._event_wait,
            self._event_notify, self._event_fork, self._event_join,
            self._event_fault,
        )

    # -- interning -----------------------------------------------------

    def _str(self, s: str) -> int:
        index = self._strid.get(s)
        if index is None:
            index = self._strid[s] = len(self.strtab)
            self.strtab.append(s)
        return index

    def _locks(self, locks: frozenset[int]) -> int:
        index = self._lockid.get(locks)
        if index is None:
            index = self._lockid[locks] = len(self.locktab)
            self.locktab.append(locks)
        return index

    def _addr(self, obj: int, fld_id: int, elem: int) -> int:
        key = (obj, fld_id, elem)
        index = self._addrid.get(key)
        if index is None:
            index = self._addrid[key] = len(self.addrtab)
            self.addrtab.append(key)
        return index

    def _cell(self, payload) -> int:
        self.cells.append(payload)
        return len(self.cells) - 1

    def _value(self, v: Value) -> tuple[int, int, int]:
        if v is None:
            return _VK_NONE, 0, -1
        if v is True:
            return _VK_BOOL, 1, -1
        if v is False:
            return _VK_BOOL, 0, -1
        if type(v) is int:
            if _I64_MIN <= v <= _I64_MAX:
                return _VK_INT, v, -1
            return _VK_CELL, self._cell(v), -1
        return _VK_REF, v.ref, self._str(v.class_name)

    def _unvalue(self, kind: int, vint: int, vcls: int) -> Value:
        if kind == _VK_INT:
            return vint
        if kind == _VK_NONE:
            return None
        if kind == _VK_REF:
            return ObjRef(vint, self.strtab[vcls])
        if kind == _VK_BOOL:
            return vint == 1
        return self.cells[vint]

    # -- packing -------------------------------------------------------

    def append(self, event: Event) -> None:
        """Pack one event onto the columns (the recorder hot path)."""
        self._packers[event.__class__](event)

    def _row(
        self, op, e, x=0, y=0, z=0, cls=-1, fld=-1, lck=-1, adr=-1,
        aux=-1, flags=0, vkind=_VK_NONE, vint=0, vcls=-1,
        okind=_VK_NONE, oint=0, ocls=-1,
    ) -> None:
        self.op.append(op)
        self.label.append(e.label)
        self.tid.append(e.thread_id)
        self.node.append(e.node_id)
        self.call.append(e.call_index)
        self.x.append(x)
        self.y.append(y)
        self.z.append(z)
        self.cls.append(cls)
        self.fld.append(fld)
        self.lck.append(lck)
        self.adr.append(adr)
        self.aux.append(aux)
        self.flags.append(flags)
        self.vkind.append(vkind)
        self.vint.append(vint)
        self.vcls.append(vcls)
        self.okind.append(okind)
        self.oint.append(oint)
        self.ocls.append(ocls)

    def _pack_invoke(self, e: InvokeEvent) -> None:
        self._row(
            OP_INVOKE, e, x=e.receiver, y=e.new_call_index, z=e.depth,
            cls=self._str(e.class_name), fld=self._str(e.method),
            aux=self._cell(e.args) if e.args else -1,
            flags=(1 if e.from_client else 0) | (2 if e.is_constructor else 0),
        )

    def _pack_return(self, e: ReturnEvent) -> None:
        vk, vi, vc = self._value(e.value)
        self._row(
            OP_RETURN, e, x=e.returning_call_index,
            cls=self._str(e.class_name), fld=self._str(e.method),
            flags=1 if e.to_client else 0, vkind=vk, vint=vi, vcls=vc,
        )

    def _pack_alloc(self, e: AllocEvent) -> None:
        self._row(
            OP_ALLOC, e, x=e.ref, cls=self._str(e.class_name),
            flags=1 if e.in_library else 0,
        )

    def _pack_read(self, e: ReadEvent) -> None:
        fld = self._str(e.field_name)
        elem = -1 if e.elem_index is None else e.elem_index
        vk, vi, vc = self._value(e.value)
        self._row(
            OP_READ, e, x=e.obj, y=elem, cls=self._str(e.class_name),
            fld=fld, lck=self._locks(e.locks_held),
            adr=self._addr(e.obj, fld, elem),
            flags=1 if e.in_constructor else 0, vkind=vk, vint=vi, vcls=vc,
        )

    def _pack_write(self, e: WriteEvent) -> None:
        fld = self._str(e.field_name)
        elem = -1 if e.elem_index is None else e.elem_index
        vk, vi, vc = self._value(e.value)
        ok, oi, oc = self._value(e.old_value)
        self._row(
            OP_WRITE, e, x=e.obj, y=elem, cls=self._str(e.class_name),
            fld=fld, lck=self._locks(e.locks_held),
            adr=self._addr(e.obj, fld, elem),
            flags=1 if e.in_constructor else 0, vkind=vk, vint=vi, vcls=vc,
            okind=ok, oint=oi, ocls=oc,
        )

    def _pack_lock(self, e: LockEvent) -> None:
        self._row(OP_LOCK, e, x=e.obj, y=e.reentrancy)

    def _pack_unlock(self, e: UnlockEvent) -> None:
        self._row(OP_UNLOCK, e, x=e.obj, y=e.reentrancy)

    def _pack_blocked(self, e: BlockedEvent) -> None:
        self._row(OP_BLOCKED, e, x=e.obj, y=e.owner_thread)

    def _pack_wait(self, e: WaitEvent) -> None:
        self._row(OP_WAIT, e, x=e.obj)

    def _pack_notify(self, e: NotifyEvent) -> None:
        self._row(
            OP_NOTIFY, e, x=e.obj,
            aux=self._cell(e.woken) if e.woken else -1,
            flags=1 if e.notify_all else 0,
        )

    def _pack_fork(self, e: ForkEvent) -> None:
        self._row(OP_FORK, e, x=e.child_thread)

    def _pack_join(self, e: JoinEvent) -> None:
        self._row(OP_JOIN, e, x=e.child_thread)

    def _pack_fault(self, e: FaultEvent) -> None:
        self._row(
            OP_FAULT, e, fld=self._str(e.kind),
            aux=self._cell(e.message) if e.message else -1,
        )

    # -- lazy object view ----------------------------------------------

    def __len__(self) -> int:
        return len(self.op)

    def __iter__(self):
        event = self.event
        for i in range(len(self.op)):
            yield event(i)

    def event(self, i: int) -> Event:
        """Reconstruct the rich event object for row ``i``."""
        return self._unpackers[self.op[i]](i)

    def _base(self, i: int) -> tuple[int, int, int, int]:
        return (self.label[i], self.tid[i], self.node[i], self.call[i])

    def _event_invoke(self, i: int) -> InvokeEvent:
        aux = self.aux[i]
        return InvokeEvent(
            *self._base(i), receiver=self.x[i],
            class_name=self.strtab[self.cls[i]],
            method=self.strtab[self.fld[i]],
            args=() if aux < 0 else self.cells[aux],
            from_client=bool(self.flags[i] & 1),
            is_constructor=bool(self.flags[i] & 2),
            new_call_index=self.y[i], depth=self.z[i],
        )

    def _event_return(self, i: int) -> ReturnEvent:
        return ReturnEvent(
            *self._base(i),
            value=self._unvalue(self.vkind[i], self.vint[i], self.vcls[i]),
            to_client=bool(self.flags[i] & 1),
            returning_call_index=self.x[i],
            method=self.strtab[self.fld[i]],
            class_name=self.strtab[self.cls[i]],
        )

    def _event_alloc(self, i: int) -> AllocEvent:
        return AllocEvent(
            *self._base(i), ref=self.x[i],
            class_name=self.strtab[self.cls[i]],
            in_library=bool(self.flags[i] & 1),
        )

    def _access_fields(self, i: int) -> dict:
        return dict(
            obj=self.x[i],
            class_name=self.strtab[self.cls[i]],
            field_name=self.strtab[self.fld[i]],
            value=self._unvalue(self.vkind[i], self.vint[i], self.vcls[i]),
            locks_held=self.locktab[self.lck[i]],
            elem_index=None if self.y[i] < 0 else self.y[i],
            in_constructor=bool(self.flags[i] & 1),
        )

    def _event_read(self, i: int) -> ReadEvent:
        return ReadEvent(*self._base(i), **self._access_fields(i))

    def _event_write(self, i: int) -> WriteEvent:
        return WriteEvent(
            *self._base(i), **self._access_fields(i),
            old_value=self._unvalue(self.okind[i], self.oint[i], self.ocls[i]),
        )

    def _event_lock(self, i: int) -> LockEvent:
        return LockEvent(*self._base(i), obj=self.x[i], reentrancy=self.y[i])

    def _event_unlock(self, i: int) -> UnlockEvent:
        return UnlockEvent(*self._base(i), obj=self.x[i], reentrancy=self.y[i])

    def _event_blocked(self, i: int) -> BlockedEvent:
        return BlockedEvent(
            *self._base(i), obj=self.x[i], owner_thread=self.y[i]
        )

    def _event_wait(self, i: int) -> WaitEvent:
        return WaitEvent(*self._base(i), obj=self.x[i])

    def _event_notify(self, i: int) -> NotifyEvent:
        aux = self.aux[i]
        return NotifyEvent(
            *self._base(i), obj=self.x[i],
            woken=() if aux < 0 else self.cells[aux],
            notify_all=bool(self.flags[i] & 1),
        )

    def _event_fork(self, i: int) -> ForkEvent:
        return ForkEvent(*self._base(i), child_thread=self.x[i])

    def _event_join(self, i: int) -> JoinEvent:
        return JoinEvent(*self._base(i), child_thread=self.x[i])

    def _event_fault(self, i: int) -> FaultEvent:
        aux = self.aux[i]
        return FaultEvent(
            *self._base(i), kind=self.strtab[self.fld[i]],
            message="" if aux < 0 else self.cells[aux],
        )

    # -- report-side accessors (used by feed_packed reporting) ---------

    def address_at(self, i: int) -> tuple[int, str, int | None]:
        """The event-model address tuple of access row ``i``."""
        obj, fld, elem = self.addrtab[self.adr[i]]
        return (obj, self.strtab[fld], None if elem < 0 else elem)

    def value_at(self, i: int) -> Value:
        return self._unvalue(self.vkind[i], self.vint[i], self.vcls[i])

    def old_value_at(self, i: int) -> Value:
        return self._unvalue(self.okind[i], self.oint[i], self.ocls[i])

    # -- Trace-compatible helpers --------------------------------------

    def memory_events(self) -> list[AccessEvent]:
        """All field reads and writes, in order (materialized)."""
        op = self.op
        return [
            self.event(i)
            for i in range(len(op))
            if op[i] == OP_READ or op[i] == OP_WRITE
        ]

    def client_invocations(self) -> list[InvokeEvent]:
        """Invocations made directly from the client (test body)."""
        op, flags = self.op, self.flags
        return [
            self.event(i)
            for i in range(len(op))
            if op[i] == OP_INVOKE and flags[i] & 1
        ]

    def to_trace(self) -> Trace:
        """Materialize the classic object representation."""
        return Trace(events=list(self), test_name=self.test_name)

    # -- identity & accounting -----------------------------------------

    def digest(self) -> str:
        """Content digest of the whole packed interleaving.

        Two traces digest equal iff their packed representations are
        identical — same events, same order, same labels, same values —
        which is exactly the memoization key the fuzz loop needs: a
        digest match implies the detectors would see a bit-identical
        input stream (see DESIGN.md §8 on collision safety).
        """
        h = hashlib.sha256()
        for name in self.COLUMNS:
            h.update(getattr(self, name).tobytes())
        h.update("\x1f".join(self.strtab).encode())
        for locks in self.locktab:
            h.update(b"L")
            h.update(",".join(map(str, sorted(locks))).encode())
        for cell in self.cells:
            h.update(b"C")
            h.update(repr(cell).encode())
        return h.hexdigest()

    def nbytes(self) -> int:
        """Resident size of the packed columns plus side tables.

        Column bytes are exact (``len * itemsize``); side tables are
        measured with ``sys.getsizeof`` per interned object plus the
        holding lists, so the reported footprint reflects what the
        tables actually cost — the old estimate (string lengths and
        flat per-entry constants) undercounted CPython object headers
        several-fold, which skewed before/after memory comparisons.
        """
        return self.column_nbytes() + self.side_nbytes()

    def column_nbytes(self) -> int:
        """Exact byte size of the packed columns alone."""
        total = 0
        for name in self.COLUMNS:
            col = getattr(self, name)
            total += len(col) * col.itemsize
        return total

    def side_nbytes(self) -> int:
        """Measured size of the interned side tables (see ``nbytes``)."""
        getsizeof = sys.getsizeof
        total = (
            getsizeof(self.strtab)
            + getsizeof(self.locktab)
            + getsizeof(self.addrtab)
            + getsizeof(self.cells)
        )
        for s in self.strtab:
            total += getsizeof(s)
        for locks in self.locktab:
            # The frozenset object plus its int members (ints are tiny
            # and frequently shared, but counting them is closer to
            # the truth than ignoring them).
            total += getsizeof(locks) + sum(getsizeof(o) for o in locks)
        for addr in self.addrtab:
            total += getsizeof(addr) + sum(getsizeof(part) for part in addr)
        for cell in self.cells:
            total += getsizeof(cell)
        return total

    def counts(self) -> dict[str, int]:
        """Event count per kind (e.g. for ``--trace-stats``)."""
        totals = [0] * len(OP_NAMES)
        for op in self.op:
            totals[op] += 1
        return {
            name: count for name, count in zip(OP_NAMES, totals) if count
        }


class ColumnarRecorder:
    """A listener that packs the event stream straight into columns.

    The streaming analogue of :class:`~repro.trace.recorder.Recorder`:
    no intermediate event list is built.  ``interests`` defaults to None
    (record every event — seed-suite recording); pass the
    ``interest_union`` of an analysis-pass stack to record exactly the
    stream those passes consume while keeping event elision, scheduling
    points, and labels identical to attaching the passes directly.
    """

    def __init__(self, test_name: str = "", interests=None) -> None:
        self.interests = interests
        self.packed = PackedTrace(test_name=test_name)
        # Bind the packer directly: event delivery costs one dict hit.
        self.on_event = self.packed.append

    @staticmethod
    def create(test_name: str = "", interests=None,
               spill_rows: int | None = None, spill_dir: str | None = None):
        """Build a recorder, spilling columns to disk when configured.

        ``spill_rows`` (or the ``REPRO_SPILL_ROWS`` environment
        variable when unset) switches to a
        :class:`~repro.trace.spill.SpillingRecorder` with that flush
        threshold; traces shorter than one flush never touch disk.
        Both recorders satisfy the same listener protocol and expose
        ``packed``, and both produce byte-identical column content and
        digests (see ``trace/spill.py``).
        """
        from repro.trace.spill import SpillingRecorder, spill_rows_from_env

        if spill_rows is None:
            spill_rows = spill_rows_from_env()
        if spill_rows is None:
            return ColumnarRecorder(test_name, interests=interests)
        return SpillingRecorder(
            test_name, interests=interests,
            spill_rows=spill_rows, spill_dir=spill_dir,
        )


__all__ = [
    "ColumnarRecorder",
    "OP_ALLOC",
    "OP_BLOCKED",
    "OP_FAULT",
    "OP_FORK",
    "OP_INVOKE",
    "OP_JOIN",
    "OP_LOCK",
    "OP_NAMES",
    "OP_NOTIFY",
    "OP_READ",
    "OP_RETURN",
    "OP_UNLOCK",
    "OP_WAIT",
    "OP_WRITE",
    "PackedTrace",
]
